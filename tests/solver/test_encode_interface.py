"""Tests for the AST-to-logic encoder and the validity interface."""

from fractions import Fraction

import pytest

from repro.lang.parser import parse_expr
from repro.solver.encode import EncodeError, Encoder
from repro.solver.interface import ValidityChecker, find_model, is_valid


def valid(goal, premises=(), bool_vars=None):
    return is_valid(
        parse_expr(goal),
        [parse_expr(p) for p in premises],
        bool_vars=bool_vars,
    )


class TestEncoderCases:
    def test_ternary_case_split(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("x > 0 ? 2 : 0"))
        assert len(cases) == 2

    def test_abs_case_split(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("abs(x)"))
        payloads = {str(lin) for _, lin in cases}
        assert payloads == {"x", "-x"}

    def test_identical_payloads_merge(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("x > 0 ? 1 : 1"))
        assert len(cases) == 1

    def test_constant_index_becomes_scalar(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("q[2]"))
        assert cases[0][1].variables() == ("q[2]",)

    def test_hat_index(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("q^o[0]"))
        assert cases[0][1].variables() == ("q^o[0]",)

    def test_symbolic_index_goes_opaque(self):
        encoder = Encoder()
        encoder.cases(parse_expr("q[i]"))
        assert "<q[i]>" in encoder.opaque

    def test_nonlinear_product_becomes_monomial(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("x * y"))
        assert cases[0][1].variables() == ("mon:x*y",)
        assert "mon:x*y" in encoder.monomials

    def test_proportional_costs_share_a_monomial(self):
        # The key normalisation for SVT: 2*eps/(4*N) and eps/(2*N) must
        # be recognised as the same nonlinear atom.
        encoder = Encoder()
        a = encoder.cases(parse_expr("2 * eps / (4 * N)"))[0][1]
        b = encoder.cases(parse_expr("eps / (2 * N)"))[0][1]
        assert a == b
        assert a.variables() == ("mon:eps/N",)

    def test_products_distribute_over_sums(self):
        encoder = Encoder()
        expanded = encoder.cases(parse_expr("(count + 1) * (eps / (2 * N))"))[0][1]
        explicit = encoder.cases(parse_expr("count * eps / (2 * N) + eps / (2 * N)"))[0][1]
        assert expanded == explicit

    def test_monomial_cancellation(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("N * (eps / N)"))
        assert cases[0][1].variables() == ("eps",)

    def test_division_by_sum_goes_opaque(self):
        encoder = Encoder()
        encoder.cases(parse_expr("x / (y + 1)"))
        assert "<x / (y + 1)>" in encoder.opaque

    def test_constant_product_folds(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("3 * x"))
        assert cases[0][1].coeff("x") == 3
        assert not encoder.opaque

    def test_division_by_constant_folds(self):
        encoder = Encoder()
        cases = encoder.cases(parse_expr("x / 4"))
        assert cases[0][1].coeff("x") == Fraction(1, 4)

    def test_division_by_zero_rejected(self):
        encoder = Encoder()
        with pytest.raises(EncodeError):
            encoder.cases(parse_expr("x / 0"))

    def test_quantifier_rejected(self):
        encoder = Encoder()
        with pytest.raises(EncodeError):
            encoder.boolean(parse_expr("forall i :: q^o[i] <= 1"))

    def test_bool_var_requires_declaration(self):
        encoder = Encoder(bool_vars={"flag"})
        encoder.boolean(parse_expr("flag && x < 1"))
        with pytest.raises(EncodeError):
            Encoder().boolean(parse_expr("flag && x < 1"))


class TestValidity:
    def test_tautology(self):
        assert valid("x <= x")

    def test_non_tautology(self):
        assert not valid("x <= y")

    def test_modus_ponens(self):
        assert valid("y > 0", premises=["x > 0", "x > 0 ? y > 0 : false"])

    def test_transitivity(self):
        assert valid("x < z", premises=["x < y", "y < z"])

    def test_arith_identity(self):
        assert valid("x + y - y == x")

    def test_sensitivity_style_query(self):
        # The T-ODot constraint for identical aligned comparison results.
        assert valid(
            "(x < y) == (x + 0 < y + 0)",
        )

    def test_noisy_max_injectivity(self):
        # The (T-Laplace) injectivity condition for NoisyMax's alignment
        # eta + (Omega ? 2 : 0): equal aligned samples imply equal samples.
        goal = parse_expr(
            "(e1 + ((q + e1 > bq || i == 0) ? 2 : 0))"
            " == (e2 + ((q + e2 > bq || i == 0) ? 2 : 0))"
            " ? e1 == e2 : true"
        )
        assert is_valid(goal)

    def test_ternary_in_goal(self):
        assert valid("(x > 0 ? x : -x) >= 0")

    def test_abs_properties(self):
        assert valid("abs(x) >= x")
        assert valid("abs(x) >= -x")
        assert valid("abs(x) <= 1", premises=["-1 <= x", "x <= 1"])
        assert not valid("abs(x) <= 1", premises=["-2 <= x", "x <= 1"])

    def test_premises_restrict_models(self):
        assert not valid("x <= 1")
        assert valid("x <= 1", premises=["x <= 0"])

    def test_boolean_reasoning(self):
        assert valid("a || !a", bool_vars={"a"})
        assert valid("b", premises=["a", "a == b"], bool_vars={"a", "b"})

    def test_nonlinear_abstraction_is_conservative(self):
        # x*x >= 0 is true over the reals but the opaque abstraction
        # cannot see it: the checker must answer False (sound direction).
        assert not valid("x * x >= 0")
        # But identical opaque terms are still equal to themselves.
        assert valid("x * y == x * y")


class TestFindModel:
    def test_counterexample_for_invalid_goal(self):
        model = find_model(parse_expr("x <= 1"))
        assert model is not None
        arith, _ = model
        assert arith["x"] > 1

    def test_none_for_valid_goal(self):
        assert find_model(parse_expr("x <= x")) is None

    def test_counterexample_respects_premises(self):
        model = find_model(parse_expr("x == 0"), premises=[parse_expr("x >= 5")])
        arith, _ = model
        assert arith["x"] >= 5


class TestCaching:
    def test_repeated_queries_hit_cache(self):
        checker = ValidityChecker()
        goal = parse_expr("x < y")
        premises = [parse_expr("x + 1 <= y")]
        assert checker.is_valid(goal, premises)
        assert checker.is_valid(goal, premises)
        assert checker.queries == 2
        assert checker.cache_hits == 1
