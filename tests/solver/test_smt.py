"""Tests for the DPLL(T) loop over QF_LRA."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import formula as F
from repro.solver.linear import LinExpr
from repro.solver.smt import check_formulas

X = LinExpr.variable("x")
Y = LinExpr.variable("y")
Z = LinExpr.variable("z")


def leq(a, b):
    return F.mk_atom("<=", a, b)


def lt(a, b):
    return F.mk_atom("<", a, b)


def eq(a, b):
    return F.mk_atom("==", a, b)


class TestPropositional:
    def test_pure_boolean_sat(self):
        a, b = F.BVar("a"), F.BVar("b")
        result = check_formulas(F.mk_or(a, b), F.mk_not(a))
        assert result.is_sat
        assert result.bool_model["b"] is True

    def test_pure_boolean_unsat(self):
        a = F.BVar("a")
        result = check_formulas(a, F.mk_not(a))
        assert result.is_unsat

    def test_iff(self):
        a, b = F.BVar("a"), F.BVar("b")
        result = check_formulas(F.mk_iff(a, b), a, F.mk_not(b))
        assert result.is_unsat


class TestTheory:
    def test_transitive_chain_unsat(self):
        result = check_formulas(leq(X, Y), leq(Y, Z), lt(Z, X))
        assert result.is_unsat

    def test_transitive_chain_sat_when_weak(self):
        result = check_formulas(leq(X, Y), leq(Y, Z), leq(Z, X))
        assert result.is_sat
        m = result.arith_model
        assert m["x"] == m["y"] == m["z"]

    def test_strictness_matters(self):
        # x < y ∧ y < x is unsat, x <= y ∧ y <= x is sat.
        assert check_formulas(lt(X, Y), lt(Y, X)).is_unsat
        assert check_formulas(leq(X, Y), leq(Y, X)).is_sat

    def test_equality_propagation(self):
        result = check_formulas(eq(X, Y), eq(Y, Z), lt(X + Z, X + X))
        # x = y = z makes x + z = 2x, so the strict inequality fails.
        assert result.is_unsat

    def test_negated_equality_splits(self):
        result = check_formulas(F.mk_not(eq(X, Y)), leq(X, Y))
        assert result.is_sat
        m = result.arith_model
        assert m["x"] < m["y"]

    def test_negated_equality_with_tight_bounds_unsat(self):
        result = check_formulas(F.mk_not(eq(X, Y)), leq(X, Y), leq(Y, X))
        assert result.is_unsat

    def test_rational_coefficients(self):
        # 2x + 3y <= 6 ∧ x >= 3 ∧ y >= 1/3 is unsat (6 + 1 > 6).
        result = check_formulas(
            leq(X * 2 + Y * 3, LinExpr.constant(6)),
            leq(LinExpr.constant(3), X),
            leq(LinExpr.constant(Fraction(1, 3)), Y),
        )
        assert result.is_unsat

    def test_model_is_exact(self):
        result = check_formulas(eq(X * 3, LinExpr.constant(1)))
        assert result.is_sat
        assert result.arith_model["x"] == Fraction(1, 3)

    def test_boolean_theory_interaction(self):
        # (a -> x <= 0) ∧ (¬a -> x >= 10) ∧ 0 < x < 10 is unsat.
        a = F.BVar("a")
        result = check_formulas(
            F.mk_implies(a, leq(X, LinExpr.constant(0))),
            F.mk_implies(F.mk_not(a), leq(LinExpr.constant(10), X)),
            lt(LinExpr.constant(0), X),
            lt(X, LinExpr.constant(10)),
        )
        assert result.is_unsat

    def test_disjunction_picks_feasible_branch(self):
        result = check_formulas(
            F.mk_or(leq(X, LinExpr.constant(-1)), leq(LinExpr.constant(1), X)),
            leq(LinExpr.constant(0), X),
        )
        assert result.is_sat
        assert result.arith_model["x"] >= 1

    def test_many_theory_conflicts_needed(self):
        # Diamond structure forcing several rounds of lemma learning.
        parts = []
        for i in range(6):
            xi = LinExpr.variable(f"v{i}")
            xj = LinExpr.variable(f"v{i+1}")
            b = F.BVar(f"b{i}")
            parts.append(F.mk_or(F.mk_and(b, leq(xi + 1, xj)), F.mk_and(F.mk_not(b), leq(xi + 2, xj))))
        v0, v6 = LinExpr.variable("v0"), LinExpr.variable("v6")
        parts.append(leq(v6, v0 + 5))  # needs total increment <= 5, min is 6
        result = check_formulas(*parts)
        assert result.is_unsat

    def test_unconstrained_vars_get_values(self):
        result = check_formulas(leq(X, Y))
        assert result.is_sat
        assert result.arith_model["x"] <= result.arith_model["y"]


class TestModelSoundness:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["<=", "<", "=="]),
                st.lists(st.integers(min_value=-3, max_value=3), min_size=3, max_size=3),
                st.integers(min_value=-4, max_value=4),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_sat_models_satisfy_constraints(self, rows):
        names = ["x", "y", "z"]
        assertions = []
        for op, coeffs, const in rows:
            lin = LinExpr({n: Fraction(c) for n, c in zip(names, coeffs)}, -const)
            assertions.append(F.mk_atom(op, lin))
        result = check_formulas(*assertions)
        if result.is_sat:
            model = {n: result.arith_model.get(n, Fraction(0)) for n in names}
            for node in assertions:
                assert F.evaluate(node, model), f"{node} violated by {model}"
