"""Unit and property tests for the CDCL SAT core."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.sat import CDCLSolver


def brute_force_sat(num_vars, clauses):
    """Reference oracle: try all assignments."""
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any((bits[abs(l) - 1]) == (l > 0) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


def check_model(solver, clauses):
    model = solver.model()
    for clause in clauses:
        assert any(model[abs(l)] == (l > 0) for l in clause), f"clause {clause} falsified"


class TestBasics:
    def test_empty_instance_is_sat(self):
        assert CDCLSolver().solve()

    def test_unit_clause(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        assert solver.solve()
        assert solver.model()[1] is True

    def test_contradictory_units(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve()

    def test_empty_clause_is_unsat(self):
        solver = CDCLSolver()
        solver.add_clause([])
        assert not solver.solve()

    def test_tautological_clause_ignored(self):
        solver = CDCLSolver()
        solver.add_clause([1, -1])
        assert solver.solve()

    def test_simple_implication_chain(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        assert solver.solve()
        model = solver.model()
        assert model[1] and model[2] and model[3]

    def test_pigeonhole_2_into_1(self):
        # Two pigeons, one hole: p1 and p2 both in hole, but not together.
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([2])
        solver.add_clause([-1, -2])
        assert not solver.solve()

    def test_xor_chain(self):
        # x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        solver = CDCLSolver()
        for a, b in [(1, 2), (2, 3), (1, 3)]:
            solver.add_clause([a, b])
            solver.add_clause([-a, -b])
        assert not solver.solve()


class TestIncremental:
    def test_clauses_added_after_solve(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve()
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve()

    def test_solve_twice_is_stable(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve()
        assert solver.solve()
        assert solver.model()[2] is True

    def test_unsat_is_sticky(self):
        solver = CDCLSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve()
        solver.add_clause([2])
        assert not solver.solve()


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1])
        assert solver.model()[2] is True

    def test_conflicting_assumptions(self):
        solver = CDCLSolver()
        solver.add_clause([-1, 2])
        assert not solver.solve(assumptions=[1, -2])

    def test_assumptions_do_not_persist(self):
        solver = CDCLSolver()
        solver.add_clause([1, 2])
        assert not solver.solve(assumptions=[-1, -2])
        assert solver.solve()


class TestPigeonhole:
    def test_php_4_into_3_unsat(self):
        # Pigeon i in hole j: var 3*i + j + 1, i in 0..3, j in 0..2.
        solver = CDCLSolver()

        def var(i, j):
            return 3 * i + j + 1

        for i in range(4):
            solver.add_clause([var(i, j) for j in range(3)])
        for j in range(3):
            for i1 in range(4):
                for i2 in range(i1 + 1, 4):
                    solver.add_clause([-var(i1, j), -var(i2, j)])
        assert not solver.solve()


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=24))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=4))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars)) * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @given(random_cnf())
    @settings(max_examples=200, deadline=None)
    def test_matches_oracle(self, instance):
        num_vars, clauses = instance
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        expected = brute_force_sat(num_vars, clauses)
        got = solver.solve()
        assert got == expected
        if got:
            check_model(solver, clauses)

    def test_large_random_satisfiable_instances(self):
        rng = random.Random(7)
        for _ in range(10):
            num_vars = 60
            # Plant a solution, generate clauses consistent with it.
            planted = [rng.choice([True, False]) for _ in range(num_vars)]
            solver = CDCLSolver(num_vars)
            clauses = []
            for _ in range(250):
                vars_ = rng.sample(range(1, num_vars + 1), 3)
                clause = [v if rng.random() < 0.7 else -v for v in vars_]
                # Force at least one literal to agree with the planted model.
                pick = rng.choice(range(3))
                v = abs(clause[pick])
                clause[pick] = v if planted[v - 1] else -v
                clauses.append(clause)
                solver.add_clause(clause)
            assert solver.solve()
            check_model(solver, clauses)
