"""Tests for term-layer hash-consing and the cached traversal results."""

from fractions import Fraction

import pytest

from repro.solver import intern
from repro.solver import formula as F
from repro.solver.linear import LinExpr

X = LinExpr.variable("x")
Y = LinExpr.variable("y")


class TestLinExprInterning:
    def test_structurally_equal_is_identical(self):
        a = LinExpr({"x": Fraction(2), "y": Fraction(-1)}, 3)
        b = LinExpr({"y": Fraction(-1), "x": Fraction(2)}, 3)
        assert a is b

    def test_arithmetic_routes_through_the_table(self):
        assert (X + Y) - X is Y
        assert (X * 4) / 2 is X * 2
        assert X + 0 is X

    def test_zero_coefficients_normalize_to_same_node(self):
        assert LinExpr({"x": Fraction(0), "y": Fraction(1)}) is LinExpr({"y": Fraction(1)})

    def test_normalized_is_cached(self):
        expr = X * 4 + Y * 2
        assert expr.normalized() is expr.normalized()

    def test_variables_tuple_is_cached(self):
        expr = X + Y
        assert expr.variables() is expr.variables()


class TestFormulaInterning:
    def test_atoms_are_identical(self):
        a = F.mk_atom("<=", X, Y)
        b = F.mk_atom("<=", X, Y)
        assert a is b

    def test_equivalent_comparisons_coincide(self):
        assert F.mk_atom(">", Y, X) is F.mk_atom("<", X, Y)
        assert F.mk_atom("==", X, Y) is F.mk_atom("==", Y, X)

    def test_connectives_are_identical(self):
        a, b = F.BVar("a"), F.BVar("b")
        assert F.mk_and(a, b) is F.mk_and(a, b)
        assert F.mk_or(a, b) is F.mk_or(a, b)
        assert F.mk_not(a) is F.mk_not(a)

    def test_singletons(self):
        assert F.FTrue() is F.TRUE_F
        assert F.FFalse() is F.FALSE_F

    def test_hash_is_stable_and_precomputed(self):
        node = F.mk_and(F.BVar("a"), F.mk_atom("<", X, Y))
        assert hash(node) == hash(node)
        assert node._hash == hash(node)

    def test_interning_counters_advance(self):
        before_hits, _ = intern.counters()
        F.mk_atom("<=", X, Y)  # already built by earlier tests
        F.mk_atom("<=", X, Y)
        after_hits, _ = intern.counters()
        assert after_hits > before_hits

    def test_bad_atom_op_still_rejected(self):
        with pytest.raises(ValueError):
            F.FAtom("<<", X)


class TestCachedTraversals:
    """Regression tests: repeated calls return the *same object*."""

    def _formula(self):
        a = F.mk_atom("<=", X, Y)
        b = F.mk_atom("<", Y, LinExpr.constant(1))
        return F.mk_and(F.mk_or(a, F.BVar("p")), F.mk_not(b), F.BVar("q"))

    def test_atoms_of_returns_same_object(self):
        node = self._formula()
        assert F.atoms_of(node) is F.atoms_of(node)

    def test_bool_vars_of_returns_same_object(self):
        node = self._formula()
        assert F.bool_vars_of(node) is F.bool_vars_of(node)

    def test_arith_vars_of_returns_same_object(self):
        node = self._formula()
        assert F.arith_vars_of(node) is F.arith_vars_of(node)

    def test_traversal_contents(self):
        node = self._formula()
        atoms = F.atoms_of(node)
        assert F.mk_atom("<=", X, Y) in atoms
        assert len(atoms) == 2
        assert {v.name for v in F.bool_vars_of(node)} == {"p", "q"}
        assert F.arith_vars_of(node) == frozenset({"x", "y"})

    def test_shared_subterms_share_caches(self):
        a = F.mk_atom("<=", X, Y)
        left = F.mk_and(a, F.BVar("p"))
        right = F.mk_or(a, F.BVar("q"))
        assert F.atoms_of(left) & F.atoms_of(right) == frozenset({a})
        # The leaf atom's own cache is the same object in both parents.
        assert F.atoms_of(a) is frozenset((a,)) or F.atoms_of(a) == frozenset((a,))

    def test_evaluate_still_works(self):
        node = F.mk_and(F.mk_atom("<=", X, Y), F.BVar("p"))
        assert F.evaluate(
            node, {"x": Fraction(0), "y": Fraction(1)}, {"p": True}
        )
        assert not F.evaluate(
            node, {"x": Fraction(2), "y": Fraction(1)}, {"p": True}
        )
