"""Theory-layer backtracking tests.

Two families, mirroring the two halves of the fast inner loop:

* the simplex bound trail — ``push_state``/``pop_state`` must restore
  the exact pre-push bound state (and leave the tableau equivalent), so
  the DPLL(T) loop can bracket each candidate model without
  ``reset_bounds`` + full re-assertion;
* the CDCL core — Luby restarts and LBD clause-database reduction are
  pure heuristics and must never change SAT/UNSAT answers, checked
  against brute force on a seeded random 3-SAT corpus with the
  restart/reduction knobs turned aggressively low.
"""

import itertools
import random
from fractions import Fraction

import pytest

from repro.solver.delta import DeltaRat
from repro.solver.linear import LinExpr
from repro.solver.sat import CDCLSolver, luby
from repro.solver.simplex import Infeasible, Simplex

X = LinExpr.variable("x")
Y = LinExpr.variable("y")
Z = LinExpr.variable("z")


def d(real, delta=0):
    return DeltaRat(Fraction(real), Fraction(delta))


class TestSimplexTrail:
    def test_pop_restores_exact_bounds(self):
        s = Simplex()
        s.define("s", X + Y)
        s.assert_lower("x", d(0), "xl")
        s.assert_upper("s", d(10), "su")
        before = s.bounds()

        s.push_state()
        s.assert_lower("x", d(2), "xl2")       # tightens
        s.assert_upper("x", d(5), "xu2")       # fresh
        s.assert_upper("s", d(7), "su2")       # tightens
        s.assert_upper("s", d(8), "noop")      # no-op (weaker)
        s.check()
        assert s.bounds() != before
        s.pop_state()

        assert s.bounds() == before

    def test_nested_push_pop(self):
        s = Simplex()
        s.add_variable("x")
        s.assert_lower("x", d(0), "l0")
        level0 = s.bounds()
        s.push_state()
        s.assert_lower("x", d(1), "l1")
        level1 = s.bounds()
        s.push_state()
        s.assert_lower("x", d(2), "l2")
        s.assert_upper("x", d(9), "u2")
        s.pop_state()
        assert s.bounds() == level1
        s.pop_state()
        assert s.bounds() == level0

    def test_pop_after_infeasible_assert(self):
        s = Simplex()
        s.add_variable("x")
        s.assert_lower("x", d(3), "l")
        before = s.bounds()
        s.push_state()
        with pytest.raises(Infeasible):
            s.assert_upper("x", d(1), "u")
        s.pop_state()
        assert s.bounds() == before
        # Still usable afterwards.
        s.assert_upper("x", d(4), "u2")
        s.check()
        assert d(3) <= s.model()["x"] <= d(4)

    def test_pop_after_pivoting_check_keeps_system_equivalent(self):
        # Pivots change the tableau representation but not the solution
        # set; after pop the same queries must give the same verdicts a
        # fresh solver gives.
        s = Simplex()
        s.define("p", X + Y)
        s.define("q", X - Y)
        base = s.bounds()

        s.push_state()
        s.assert_upper("p", d(4), "a")
        s.assert_upper("q", d(2), "b")
        s.assert_lower("x", d(1), "c")
        s.assert_lower("y", d(0), "d")
        s.check()
        m = s.concrete_model()
        assert m["x"] + m["y"] <= 4 and m["x"] - m["y"] <= 2
        s.pop_state()
        assert s.bounds() == base

        # Re-running a *different* scenario on the pivoted tableau
        # agrees with a fresh instance.
        for instance in (s, self._fresh_pq()):
            instance.push_state() if instance is s else None
            instance.assert_upper("p", d(1), "su")
            instance.assert_lower("x", d(1), "xl")
            with pytest.raises(Infeasible) as err:
                instance.assert_lower("y", d(1), "yl")
                instance.check()
            assert "su" in err.value.conflict

    @staticmethod
    def _fresh_pq():
        fresh = Simplex()
        fresh.define("p", X + Y)
        fresh.define("q", X - Y)
        return fresh

    def test_row_values_stay_consistent_after_pop(self):
        # Whatever pivoting happened, basic variables must still equal
        # their defining linear forms under the current assignment.
        s = Simplex()
        s.define("p", X + Y)
        s.define("q", X - Y + Z)
        s.push_state()
        s.assert_lower("p", d(3), "a")
        s.assert_upper("q", d(-1), "b")
        s.assert_lower("z", d(0), "c")
        s.check()
        s.pop_state()
        m = s.model()
        assert m["p"] == m["x"] + m["y"]
        assert m["q"] == m["x"] - m["y"] + m["z"]

    def test_trail_pop_without_push_raises(self):
        s = Simplex()
        with pytest.raises(RuntimeError):
            s.pop_state()


# ---------------------------------------------------------------------------
# CDCL restarts / clause deletion on a seeded 3-SAT corpus
# ---------------------------------------------------------------------------


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any(bits[abs(l) - 1] == (l > 0) for l in clause) for clause in clauses):
            return True
    return False


def random_3sat(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        vars_ = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in vars_])
    return clauses


def aggressive_solver(num_vars):
    """Restart every few conflicts, reduce the clause DB constantly."""
    return CDCLSolver(
        num_vars,
        restart_base=2,
        reduce_base=5,
        reduce_inc=5,
    )


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


class TestRandomCorpus:
    def test_answers_match_brute_force(self):
        rng = random.Random(20260730)
        for trial in range(60):
            num_vars = rng.randint(4, 10)
            # Around the 3-SAT phase transition so both answers occur.
            num_clauses = rng.randint(num_vars, int(num_vars * 4.8))
            clauses = random_3sat(rng, num_vars, num_clauses)
            expected = brute_force_sat(num_vars, clauses)
            solver = aggressive_solver(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            assert solver.solve() == expected, f"trial {trial}: {clauses}"
            if expected:
                model = solver.model()
                for clause in clauses:
                    assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_aggressive_equals_default_on_larger_instances(self):
        rng = random.Random(7_2026)
        for trial in range(12):
            num_vars = 40
            clauses = random_3sat(rng, num_vars, 170)
            default = CDCLSolver(num_vars)
            aggressive = aggressive_solver(num_vars)
            for clause in clauses:
                default.add_clause(clause)
                aggressive.add_clause(clause)
            assert default.solve() == aggressive.solve(), f"trial {trial}"

    def test_reduction_actually_fires(self):
        rng = random.Random(99)
        solver = aggressive_solver(30)
        for clause in random_3sat(rng, 30, 128):
            solver.add_clause(clause)
        solver.solve()
        profile = solver.profile
        assert profile.conflicts > 0
        assert profile.restarts > 0

    def test_incremental_answers_survive_reduction(self):
        # Add clauses between solves with tiny reduction thresholds; the
        # answers must track the monotonically shrinking solution set.
        rng = random.Random(5)
        num_vars = 12
        solver = aggressive_solver(num_vars)
        clauses = []
        for _ in range(40):
            clause = random_3sat(rng, num_vars, 1)[0]
            clauses.append(clause)
            solver.add_clause(clause)
            assert solver.solve() == brute_force_sat(num_vars, clauses)
