"""Tests for the incremental solver context and the shared query cache."""


import pytest

from repro.lang.parser import parse_expr
from repro.solver import formula as F
from repro.solver.context import QueryCache, SolverContext, normalize_query
from repro.solver.interface import ValidityChecker
from repro.solver.linear import LinExpr
from repro.solver.smt import SMTSolver


X = LinExpr.variable("x")


def leq(a, b):
    return F.mk_atom("<=", a, b)


class TestSMTPushPop:
    def test_pop_retracts_scoped_assertions(self):
        solver = SMTSolver()
        solver.add(leq(X, LinExpr.constant(5)))
        assert solver.check().is_sat
        solver.push()
        solver.add(leq(LinExpr.constant(10), X))
        assert solver.check().is_unsat
        solver.pop()
        result = solver.check()
        assert result.is_sat
        assert result.arith_model["x"] <= 5

    def test_nested_scopes(self):
        solver = SMTSolver()
        solver.add(leq(X, LinExpr.constant(5)))
        solver.push()
        solver.add(leq(LinExpr.constant(3), X))
        assert solver.check().is_sat
        solver.push()
        solver.add(F.mk_atom("<", X, LinExpr.constant(3)))
        assert solver.check().is_unsat
        solver.pop()
        assert solver.check().is_sat
        solver.pop()
        assert solver.check().is_sat

    def test_base_assertions_after_check_are_permanent(self):
        solver = SMTSolver()
        solver.add(leq(X, LinExpr.constant(5)))
        assert solver.check().is_sat
        solver.add(leq(LinExpr.constant(6), X))  # incremental add after check
        assert solver.check().is_unsat
        assert solver.check().is_unsat  # sticky: base-level contradiction

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            SMTSolver().pop()

    def test_solve_calls_counted(self):
        solver = SMTSolver()
        solver.add(leq(X, LinExpr.constant(5)))
        solver.check()
        solver.check()
        assert solver.solve_calls == 2

    def test_equality_splits_not_duplicated_across_checks(self):
        solver = SMTSolver()
        solver.add(F.mk_atom("==", X, LinExpr.constant(1)))
        solver.check()
        clauses_after_first = len(solver._encoder.cnf.clauses)
        solver.check()
        assert len(solver._encoder.cnf.clauses) == clauses_after_first


class TestSolverContext:
    def test_entailment_under_base_premises(self):
        ctx = SolverContext()
        ctx.assert_expr(parse_expr("x <= 0"))
        valid, model = ctx.check_entailment(parse_expr("x <= 1"))
        assert valid and model is None

    def test_refutation_returns_model_from_same_solve(self):
        ctx = SolverContext()
        ctx.assert_expr(parse_expr("x >= 5"))
        valid, model = ctx.check_entailment(parse_expr("x == 0"))
        assert not valid
        arith, _ = model
        assert arith["x"] >= 5
        assert ctx.stats.solve_calls == 1

    def test_queries_do_not_leak_between_scopes(self):
        ctx = SolverContext()
        ctx.assert_expr(parse_expr("x <= 10"))
        valid, _ = ctx.check_entailment(parse_expr("x <= 0"), [parse_expr("x <= 0")])
        assert valid
        # The previous query's extra premise must not constrain this one.
        valid, model = ctx.check_entailment(parse_expr("x <= 0"))
        assert not valid
        arith, _ = model
        assert 0 < arith["x"] <= 10

    def test_push_pop_balance_in_stats(self):
        ctx = SolverContext()
        ctx.check_entailment(parse_expr("x <= x"))
        ctx.check_entailment(parse_expr("x <= x + 1"))
        assert ctx.stats.pushes == ctx.stats.pops == 2

    def test_shared_cache_across_contexts(self):
        cache = QueryCache()
        first = SolverContext(cache=cache)
        first.assert_expr(parse_expr("x <= 0"))
        second = SolverContext(cache=cache)
        second.assert_expr(parse_expr("x <= 0"))
        assert first.check_entailment(parse_expr("x <= 1"))[0]
        assert second.check_entailment(parse_expr("x <= 1"))[0]
        assert second.stats.cache_hits == 1
        assert second.stats.solve_calls == 0


class TestQueryCacheNormalization:
    def test_premise_order_is_canonical(self):
        a, b = parse_expr("x > 0"), parse_expr("y > 0")
        goal = parse_expr("x + y > 0")
        assert normalize_query(goal, [a, b]) == normalize_query(goal, [b, a])

    def test_duplicate_and_trivial_premises_dropped(self):
        a = parse_expr("x > 0")
        goal = parse_expr("x >= 0")
        assert normalize_query(goal, [a, a, parse_expr("true")]) == normalize_query(goal, [a])

    def test_simplified_variants_share_a_key(self):
        # x + 0 simplifies to x, so the two queries must collide.
        assert normalize_query(parse_expr("x + 0 <= 1"), []) == normalize_query(
            parse_expr("x <= 1"), []
        )

    def test_distinct_queries_do_not_collide(self):
        assert normalize_query(parse_expr("x <= 1"), []) != normalize_query(
            parse_expr("x <= 2"), []
        )

    def test_hit_and_miss_accounting(self):
        cache = QueryCache()
        checker = ValidityChecker(cache=cache)
        goal = parse_expr("x < y")
        premises = [parse_expr("x + 1 <= y")]
        assert checker.is_valid(goal, premises)
        assert checker.is_valid(goal, list(reversed(premises)))
        assert checker.queries == 2
        assert checker.cache_hits == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_find_model_reuses_refuting_solve(self):
        checker = ValidityChecker()
        goal = parse_expr("x <= 1")
        assert not checker.is_valid(goal)
        model = checker.find_model(goal)
        assert model is not None
        arith, _ = model
        assert arith["x"] > 1
        assert checker.solve_calls == 1  # single solve for both questions

    def test_checkers_share_answers_with_contexts(self):
        cache = QueryCache()
        checker = ValidityChecker(cache=cache)
        assert checker.is_valid(parse_expr("x <= 1"), [parse_expr("x <= 0")])
        ctx = SolverContext(cache=cache)
        ctx.assert_expr(parse_expr("x <= 0"))
        valid, _ = ctx.check_entailment(parse_expr("x <= 1"))
        assert valid
        assert ctx.stats.cache_hits == 1


class TestQueryCacheLRU:
    """The cache is a bounded LRU: eviction order, recency refresh, stats."""

    @staticmethod
    def _entry(valid=True):
        from repro.solver.context import CacheEntry

        return CacheEntry(valid=valid, status="unsat" if valid else "sat")

    def test_eviction_at_capacity(self):
        cache = QueryCache(max_entries=3)
        for key in ("a", "b", "c", "d"):
            cache.store(key, self._entry())
        assert len(cache) == 3
        assert cache.lookup("a") is None  # evicted: oldest
        assert cache.lookup("d") is not None
        assert cache.evictions == 1

    def test_lookup_refreshes_recency(self):
        cache = QueryCache(max_entries=2)
        cache.store("a", self._entry())
        cache.store("b", self._entry())
        assert cache.lookup("a") is not None  # refresh a
        cache.store("c", self._entry())       # evicts b, not a
        assert cache.lookup("a") is not None
        assert cache.lookup("b") is None

    def test_store_refreshes_recency(self):
        cache = QueryCache(max_entries=2)
        cache.store("a", self._entry())
        cache.store("b", self._entry())
        cache.store("a", self._entry(valid=False))  # overwrite refreshes
        cache.store("c", self._entry())             # evicts b
        entry = cache.lookup("a")
        assert entry is not None and entry.valid is False
        assert cache.lookup("b") is None

    def test_stats_dict(self):
        cache = QueryCache(max_entries=2)
        cache.store("a", self._entry())
        cache.lookup("a")
        cache.lookup("missing")
        cache.store("b", self._entry())
        cache.store("c", self._entry())
        stats = cache.stats()
        assert stats == {
            "entries": 2,
            "max_entries": 2,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "pending": 0,
        }

    def test_default_capacity(self):
        assert QueryCache().max_entries == 4096

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)

    def test_clear_resets_counters(self):
        cache = QueryCache(max_entries=1)
        cache.store("a", self._entry())
        cache.store("b", self._entry())
        cache.lookup("b")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0
        assert cache.stats()["evictions"] == 0
