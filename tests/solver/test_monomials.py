"""Unit and property tests for monomial normal form."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.monomials import Monomial, Polynomial


class TestMonomial:
    def test_unit(self):
        assert Monomial.unit().is_unit()
        assert Monomial.unit().name() == "%unit"

    def test_single_atom(self):
        m = Monomial.of_atom("eps")
        assert m.is_single_atom() == "eps"
        assert m.name() == "eps"

    def test_factors_sort(self):
        assert Monomial(("b", "a")).name() == Monomial(("a", "b")).name()

    def test_multiplication_merges(self):
        m = Monomial.of_atom("eps") * Monomial.of_atom("count")
        assert m.numerator == ("count", "eps")

    def test_division_cancels(self):
        m = Monomial(("N", "eps")) / Monomial.of_atom("N")
        assert m.is_single_atom() == "eps"

    def test_division_accumulates(self):
        m = Monomial.of_atom("eps") / Monomial.of_atom("N")
        assert m.denominator == ("N",)
        assert m.name() == "mon:eps/N"

    def test_repeated_factors(self):
        m = Monomial.of_atom("x") * Monomial.of_atom("x")
        assert m.numerator == ("x", "x")
        # x²/x cancels one occurrence only.
        assert (m / Monomial.of_atom("x")).is_single_atom() == "x"

    def test_divides_out(self):
        m = Monomial(("count", "eps"), ("N",))
        rest = m.divides_out("count")
        assert rest == Monomial(("eps",), ("N",))
        assert m.divides_out("ghost") is None

    def test_replace_factor_cancels(self):
        m = Monomial(("count", "eps"), ("N",))
        swapped = m.replace_factor("count", "N")
        assert swapped.is_single_atom() == "eps"

    def test_inverse(self):
        m = Monomial(("a",), ("b",))
        assert m * m.inverse() == Monomial.unit()


class TestPolynomial:
    def test_constant_roundtrip(self):
        assert Polynomial.constant(Fraction(3)).as_constant() == 3

    def test_addition_merges_terms(self):
        p = Polynomial.atom("x") + Polynomial.atom("x")
        ((mono, coeff),) = p.monomials()
        assert coeff == 2

    def test_cancellation_drops_terms(self):
        p = Polynomial.atom("x") - Polynomial.atom("x")
        assert p.as_constant() == 0

    def test_product_distributes(self):
        # (x + 1)(y + 2) = xy + 2x + y + 2
        x = Polynomial.atom("x") + Polynomial.constant(Fraction(1))
        y = Polynomial.atom("y") + Polynomial.constant(Fraction(2))
        product = x * y
        terms = {m.name(): c for m, c in product.monomials()}
        assert terms == {"mon:x*y": 1, "x": 2, "y": 1, "%unit": 2}

    def test_divide_by_constant(self):
        p = Polynomial.atom("x").divide(Polynomial.constant(Fraction(2)))
        ((_, coeff),) = p.monomials()
        assert coeff == Fraction(1, 2)

    def test_divide_by_monomial(self):
        p = (Polynomial.atom("eps") * Polynomial.atom("N")).divide(Polynomial.atom("N"))
        ((mono, coeff),) = p.monomials()
        assert mono.is_single_atom() == "eps"

    def test_divide_by_zero_none(self):
        assert Polynomial.atom("x").divide(Polynomial.constant(Fraction(0))) is None

    def test_divide_by_sum_none(self):
        divisor = Polynomial.atom("x") + Polynomial.constant(Fraction(1))
        assert Polynomial.atom("y").divide(divisor) is None


@given(
    st.lists(st.sampled_from("abc"), max_size=3),
    st.lists(st.sampled_from("abc"), max_size=3),
    st.lists(st.sampled_from("abc"), max_size=3),
)
@settings(max_examples=200)
def test_monomial_multiplication_associative(xs, ys, zs):
    a, b, c = Monomial(tuple(xs)), Monomial(tuple(ys)), Monomial(tuple(zs))
    assert (a * b) * c == a * (b * c)


@given(
    st.lists(st.sampled_from("abc"), max_size=3),
    st.lists(st.sampled_from("abc"), max_size=2),
)
@settings(max_examples=200)
def test_division_then_multiplication_roundtrips(num, den):
    m = Monomial(tuple(num))
    d = Monomial(tuple(den))
    assert (m / d) * d == m


@given(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
@settings(max_examples=200)
def test_polynomial_arithmetic_matches_numeric(a, b, c, d):
    """Evaluate polynomials numerically and compare against Fraction math."""
    x_val, y_val = Fraction(3, 2), Fraction(-2, 3)

    def evaluate(p):
        total = Fraction(0)
        for mono, coeff in p.monomials():
            value = coeff
            for factor in mono.numerator:
                value *= x_val if factor == "x" else y_val
            for factor in mono.denominator:
                value /= x_val if factor == "x" else y_val
            total += value
        return total

    p = Polynomial.atom("x").scale(Fraction(a)) + Polynomial.constant(Fraction(b))
    q = Polynomial.atom("y").scale(Fraction(c)) + Polynomial.constant(Fraction(d))
    assert evaluate(p * q) == evaluate(p) * evaluate(q)
    assert evaluate(p + q) == evaluate(p) + evaluate(q)
    assert evaluate(p - q) == evaluate(p) - evaluate(q)
