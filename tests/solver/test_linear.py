"""Unit tests for exact linear expressions."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.solver.linear import LinExpr, lin_sum

X = LinExpr.variable("x")
Y = LinExpr.variable("y")


class TestConstruction:
    def test_zero_coefficients_are_dropped(self):
        expr = LinExpr({"x": Fraction(0), "y": Fraction(2)}, 1)
        assert expr.variables() == ("y",)

    def test_constant(self):
        expr = LinExpr.constant(Fraction(3, 2))
        assert expr.is_constant()
        assert expr.constant_value() == Fraction(3, 2)

    def test_variable(self):
        assert X.coeff("x") == 1
        assert X.coeff("y") == 0
        assert not X.is_constant()

    def test_constant_value_raises_on_nonconstant(self):
        with pytest.raises(ValueError):
            X.constant_value()


class TestArithmetic:
    def test_addition(self):
        expr = X + Y + 1
        assert expr.coeff("x") == 1
        assert expr.coeff("y") == 1
        assert expr.const == 1

    def test_subtraction_cancels(self):
        assert (X + Y) - X == Y

    def test_negation(self):
        expr = -(X + 1)
        assert expr.coeff("x") == -1
        assert expr.const == -1

    def test_scale(self):
        expr = (X + 2).scale(Fraction(1, 2))
        assert expr.coeff("x") == Fraction(1, 2)
        assert expr.const == 1

    def test_scale_by_zero(self):
        assert (X + 2).scale(0) == LinExpr()

    def test_rsub(self):
        expr = 5 - X
        assert expr.coeff("x") == -1
        assert expr.const == 5

    def test_division(self):
        assert (X * 4) / 2 == X * 2

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            X / 0

    def test_lin_sum(self):
        assert lin_sum([X, Y, LinExpr.constant(1)]) == X + Y + 1


class TestEvaluationAndSubstitution:
    def test_evaluate(self):
        expr = X * 2 + Y - 3
        assert expr.evaluate({"x": Fraction(1), "y": Fraction(5)}) == 4

    def test_substitute(self):
        expr = X * 2 + Y
        result = expr.substitute({"x": Y + 1})
        assert result == Y * 3 + 2

    def test_substitute_leaves_unmapped(self):
        expr = X + Y
        assert expr.substitute({"x": LinExpr.constant(0)}) == Y


class TestNormalization:
    def test_normalized_leading_unit(self):
        expr = X * 2 + Y * 4 + 6
        canon, factor = expr.normalized()
        assert factor == 2
        assert canon == X + Y * 2 + 3

    def test_normalized_constant(self):
        expr = LinExpr.constant(5)
        canon, factor = expr.normalized()
        assert canon == expr and factor == 1

    def test_normalized_reconstructs(self):
        expr = X * Fraction(-3, 2) + 1
        canon, factor = expr.normalized()
        assert canon.scale(factor) == expr
        assert factor > 0


class TestHashing:
    def test_equal_expressions_share_hash(self):
        a = X + Y + 1
        b = LinExpr({"y": Fraction(1), "x": Fraction(1)}, 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_as_dict_key(self):
        table = {X + 1: "a"}
        assert table[LinExpr.variable("x") + 1] == "a"


@given(
    st.dictionaries(st.sampled_from("abc"), st.fractions(), max_size=3),
    st.dictionaries(st.sampled_from("abc"), st.fractions(), max_size=3),
    st.fractions(),
)
def test_addition_commutes(t1, t2, c):
    a = LinExpr(t1, c)
    b = LinExpr(t2, 0)
    assert a + b == b + a


@given(st.dictionaries(st.sampled_from("abc"), st.fractions(), max_size=3), st.fractions(), st.fractions())
def test_scaling_distributes_over_evaluation(terms, c, k):
    expr = LinExpr(terms, c)
    env = {name: Fraction(i + 1, 7) for i, name in enumerate(sorted(terms))}
    assert expr.scale(k).evaluate(env) == k * expr.evaluate(env)
