"""Unit tests for delta-rational arithmetic."""

from fractions import Fraction

import pytest

from repro.solver.delta import DeltaRat, concretize


class TestOrdering:
    def test_delta_is_positive(self):
        assert DeltaRat(0, 1) > DeltaRat(0)

    def test_delta_smaller_than_any_positive_rational(self):
        assert DeltaRat(0, 1000) < DeltaRat(Fraction(1, 10**9))

    def test_lexicographic(self):
        assert DeltaRat(1, -5) > DeltaRat(0, 100)

    def test_comparison_with_plain_numbers(self):
        assert DeltaRat(2, -1) < 2
        assert DeltaRat(2, 1) > 2
        assert DeltaRat(2) <= 2
        assert DeltaRat(2) >= 2


class TestArithmetic:
    def test_add(self):
        assert DeltaRat(1, 2) + DeltaRat(3, -1) == DeltaRat(4, 1)

    def test_add_number(self):
        assert DeltaRat(1, 2) + 3 == DeltaRat(4, 2)

    def test_sub(self):
        assert DeltaRat(1, 2) - DeltaRat(3, -1) == DeltaRat(-2, 3)

    def test_rsub(self):
        assert 5 - DeltaRat(1, 2) == DeltaRat(4, -2)

    def test_scale(self):
        assert DeltaRat(1, 2).scale(Fraction(-1, 2)) == DeltaRat(Fraction(-1, 2), -1)

    def test_division(self):
        assert DeltaRat(4, 2) / 2 == DeltaRat(2, 1)

    def test_neg(self):
        assert -DeltaRat(1, -2) == DeltaRat(-1, 2)

    def test_at_substitutes_delta(self):
        assert DeltaRat(1, 3).at(Fraction(1, 6)) == Fraction(3, 2)


class TestConcretize:
    def test_simple_gap(self):
        # x = 0 + δ must stay strictly above 0 and strictly below 1.
        values = {"x": DeltaRat(0, 1)}
        gaps = [(DeltaRat(0), DeltaRat(0, 1)), (DeltaRat(0, 1), DeltaRat(1))]
        delta, model = concretize(values, gaps)
        assert 0 < model["x"] < 1

    def test_tight_gap_shrinks_delta(self):
        lo = DeltaRat(0, 5)
        hi = DeltaRat(Fraction(1, 1000))
        delta, _ = concretize({}, [(lo, hi)])
        assert lo.at(delta) < hi.at(delta)

    def test_unordered_gap_rejected(self):
        with pytest.raises(ValueError):
            concretize({}, [(DeltaRat(1), DeltaRat(0))])
