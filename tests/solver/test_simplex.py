"""Unit tests for the Dutertre–de Moura simplex."""

from fractions import Fraction

import pytest

from repro.solver.delta import DeltaRat
from repro.solver.linear import LinExpr
from repro.solver.simplex import Infeasible, Simplex

X = LinExpr.variable("x")
Y = LinExpr.variable("y")
Z = LinExpr.variable("z")


def d(real, delta=0):
    return DeltaRat(Fraction(real), Fraction(delta))


class TestBoundsOnly:
    def test_consistent_box(self):
        s = Simplex()
        s.add_variable("x")
        s.assert_lower("x", d(0), "l")
        s.assert_upper("x", d(1), "u")
        s.check()
        assert d(0) <= s.model()["x"] <= d(1)

    def test_crossing_bounds_conflict(self):
        s = Simplex()
        s.add_variable("x")
        s.assert_lower("x", d(2), "l")
        with pytest.raises(Infeasible) as err:
            s.assert_upper("x", d(1), "u")
        assert err.value.conflict == {"l", "u"}

    def test_strict_bounds_leave_room(self):
        s = Simplex()
        s.add_variable("x")
        s.assert_lower("x", d(0, 1), "l")  # x > 0
        s.assert_upper("x", d(1, -1), "u")  # x < 1
        s.check()
        model = s.concrete_model()
        assert 0 < model["x"] < 1

    def test_strict_empty_interval(self):
        s = Simplex()
        s.add_variable("x")
        s.assert_lower("x", d(1, 1), "l")  # x > 1
        with pytest.raises(Infeasible):
            s.assert_upper("x", d(1, -1), "u")  # x < 1


class TestTableau:
    def test_sum_constraint(self):
        # s = x + y, s <= 1, x >= 1, y >= 1 is infeasible.
        s = Simplex()
        s.define("s", X + Y)
        s.assert_upper("s", d(1), "su")
        s.assert_lower("x", d(1), "xl")
        with pytest.raises(Infeasible) as err:
            s.assert_lower("y", d(1), "yl")
            s.check()
        assert "su" in err.value.conflict

    def test_feasible_system(self):
        # x + y <= 4, x - y <= 2, x >= 1, y >= 0.
        s = Simplex()
        s.define("p", X + Y)
        s.define("q", X - Y)
        s.assert_upper("p", d(4), "a")
        s.assert_upper("q", d(2), "b")
        s.assert_lower("x", d(1), "c")
        s.assert_lower("y", d(0), "d")
        s.check()
        m = s.concrete_model()
        assert m["x"] + m["y"] <= 4
        assert m["x"] - m["y"] <= 2
        assert m["x"] >= 1 and m["y"] >= 0

    def test_equalities_via_double_bound(self):
        # x + y = 3 and x - y = 1 has the unique solution x=2, y=1.
        s = Simplex()
        s.define("p", X + Y)
        s.define("q", X - Y)
        for var, value in [("p", 3), ("q", 1)]:
            s.assert_upper(var, d(value), f"{var}u")
            s.assert_lower(var, d(value), f"{var}l")
        s.check()
        m = s.concrete_model()
        assert m["x"] == 2 and m["y"] == 1

    def test_constants_fold_through_one(self):
        # s = x + 5; s <= 4 forces x <= -1.
        s = Simplex()
        s.define("s", X + 5)
        s.assert_upper("s", d(4), "su")
        s.assert_lower("x", d(-1), "xl")
        s.check()
        assert s.concrete_model()["x"] == -1

    def test_define_substitutes_basic_vars(self):
        # t = s + z where s = x + y: t must expand to x + y + z.
        s = Simplex()
        s.define("s", X + Y)
        s.define("t", LinExpr.variable("s") + Z)
        s.assert_lower("x", d(1), "a")
        s.assert_lower("y", d(2), "b")
        s.assert_lower("z", d(3), "c")
        s.assert_upper("t", d(5), "d")
        with pytest.raises(Infeasible):
            s.check()

    def test_chain_of_inequalities(self):
        # x <= y <= z <= x forces x = y = z.
        s = Simplex()
        s.define("a", X - Y)
        s.define("b", Y - Z)
        s.define("c", Z - X)
        for var in ("a", "b", "c"):
            s.assert_upper(var, d(0), f"{var}u")
        s.assert_lower("x", d(7), "xl")
        s.assert_upper("x", d(7), "xu")
        s.check()
        m = s.concrete_model()
        assert m["x"] == m["y"] == m["z"] == 7

    def test_conflict_set_is_relevant(self):
        # y's bounds are irrelevant to the x-driven conflict.
        s = Simplex()
        s.define("s", X + Z)
        s.assert_lower("y", d(0), "y-lower")
        s.assert_upper("y", d(9), "y-upper")
        s.assert_lower("x", d(5), "x-lower")
        s.assert_lower("z", d(5), "z-lower")
        with pytest.raises(Infeasible) as err:
            s.assert_upper("s", d(1), "s-upper")
            s.check()
        assert "y-lower" not in err.value.conflict
        assert "y-upper" not in err.value.conflict


class TestResetBounds:
    def test_reuse_after_reset(self):
        s = Simplex()
        s.define("s", X + Y)
        s.assert_upper("s", d(1), "a")
        s.assert_lower("x", d(1), "b")
        with pytest.raises(Infeasible):
            s.assert_lower("y", d(1), "c")
            s.check()
        s.reset_bounds()
        s.assert_upper("s", d(10), "a2")
        s.assert_lower("x", d(1), "b2")
        s.assert_lower("y", d(1), "c2")
        s.check()
        m = s.concrete_model()
        assert m["x"] + m["y"] <= 10
