"""Unit and property tests for the expression simplifier."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.core.simplify import is_zero, simplify, simplify_under


def s(text):
    return simplify(parse_expr(text))


class TestConstantFolding:
    def test_arith(self):
        assert s("1 + 2 * 3") == ast.Real(7)

    def test_division_exact(self):
        assert s("1 / 3 + 1 / 6") == ast.Real(Fraction(1, 2))

    def test_comparisons(self):
        assert s("2 < 3") == ast.TRUE
        assert s("2 >= 3") == ast.FALSE

    def test_booleans(self):
        assert s("true && false") == ast.FALSE
        assert s("true || false") == ast.TRUE
        assert s("!true") == ast.FALSE

    def test_abs(self):
        assert s("abs(-5)") == ast.Real(5)


class TestIdentities:
    def test_add_zero(self):
        assert s("x + 0") == ast.Var("x")
        assert s("0 + x") == ast.Var("x")

    def test_sub_zero_and_self(self):
        assert s("x - 0") == ast.Var("x")
        assert s("x - x") == ast.ZERO

    def test_mul_identities(self):
        assert s("1 * x") == ast.Var("x")
        assert s("x * 0") == ast.ZERO

    def test_div_one(self):
        assert s("x / 1") == ast.Var("x")

    def test_double_negation(self):
        assert s("--x") == ast.Var("x")
        assert s("!!(x < 1)") == s("x < 1")

    def test_and_or_absorption(self):
        assert s("a < 1 && true") == s("a < 1")
        assert s("a < 1 || false") == s("a < 1")
        assert s("a < 1 || true") == ast.TRUE


class TestAdditiveCancellation:
    def test_direct_cancel(self):
        assert s("x + y - y") == ast.Var("x")

    def test_cancel_through_neg(self):
        assert s("x + -x") == ast.ZERO

    def test_chain_cancel(self):
        # The SmartSum head distance: sum^o + q^o[i] + (-sum^o - q^o[i]).
        assert is_zero(parse_expr("sum^o + q^o[i] + (-sum^o - q^o[i])"))

    def test_prefix_sum_distance(self):
        assert is_zero(parse_expr("next - next + q^o[i] + -q^o[i]"))

    def test_no_cancel_keeps_shape(self):
        # Without a cancellation the original association is preserved
        # (keeps transformed programs close to the paper's figures).
        expr = parse_expr("bq + bq^s - (q[i] + eta)")
        assert simplify(expr) == expr


class TestTernaryRules:
    def test_constant_guard(self):
        assert s("true ? 1 : 2") == ast.Real(1)
        assert s("false ? 1 : 2") == ast.Real(2)

    def test_equal_arms(self):
        assert s("x > 0 ? 1 : 1") == ast.Real(1)

    def test_negated_guard_swaps(self):
        assert s("!(x > 0) ? a : b") == s("x > 0 ? b : a")

    def test_abs_pushes_into_ternary(self):
        assert s("abs(x > 0 ? 2 : 0)") == s("x > 0 ? 2 : 0")
        assert s("abs(x > 0 ? -2 : 0)") == s("x > 0 ? 2 : 0")

    def test_same_guard_ternaries_merge(self):
        assert s("(c > 0 ? 1 : 2) + (c > 0 ? 10 : 20)") == s("c > 0 ? 11 : 22")

    def test_cost_update_shape(self):
        # The Fig. 1 privacy-cost computation: |Ω?2:0| / (2/eps) added to
        # the selector-reset cost must become Ω ? eps : v_eps.
        cost = "abs(w > 0 ? 2 : 0) / (2 / eps) + (w > 0 ? 0 : v_eps)"
        assert s(cost) == s("w > 0 ? eps : v_eps")

    def test_scale_rewrite(self):
        assert s("2 / (2 / eps)") == ast.Var("eps")
        assert s("abs(1) / (2 / eps)") == s("eps / 2")


class TestSimplifyUnder:
    def test_guard_becomes_true(self):
        omega = parse_expr("q[i] + eta > bq || i == 0")
        expr = parse_expr("eta + ((q[i] + eta > bq || i == 0) ? 2 : 0)")
        assert simplify_under(expr, omega, True) == s("eta + 2")
        assert simplify_under(expr, omega, False) == ast.Var("eta")

    def test_negation_of_assumption(self):
        cond = parse_expr("x > 0")
        expr = parse_expr("!(x > 0) ? 1 : 2")
        assert simplify_under(expr, cond, True) == ast.Real(2)

    def test_unrelated_expression_unchanged(self):
        cond = parse_expr("x > 0")
        expr = s("y + 1")
        assert simplify_under(expr, cond, True) == expr


class TestSemanticPreservation:
    """Random differential testing: simplify must preserve meaning."""

    @given(
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
    )
    @settings(max_examples=100)
    def test_simplify_preserves_value(self, x, y, z):
        from repro.semantics.interpreter import Interpreter

        cases = [
            "x + y - y * 1",
            "(x > 0 ? y : z) + abs(x)",
            "abs(x - y) / 2 + (x < y ? z : -z)",
            "x + y + -x - y + z",
            "(x > y ? 1 : 0) * (z + 2)",
        ]
        interp = Interpreter()
        memory = {"x": float(x), "y": float(y), "z": float(z)}
        for text in cases:
            expr = parse_expr(text)
            before = interp.eval(expr, memory)
            after = interp.eval(simplify(expr), memory)
            assert before == pytest.approx(after), text
