"""Unit tests for expression typing (Fig. 4, top half)."""

import pytest

from repro.core.environment import BOOL, NUM, TypeEnv, VarEntry
from repro.core.errors import ShadowDPTypeError
from repro.core.expr_rules import ExprTyper
from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.solver.interface import ValidityChecker


def make_typer(entries, psi="true"):
    env = TypeEnv()
    for name, entry in entries.items():
        env = env.set(name, entry)
    return ExprTyper(env, parse_expr(psi), ValidityChecker())


BASE = {
    "x": VarEntry(NUM, parse_expr("1"), ast.ZERO),
    "pub": VarEntry(NUM),
    "star": VarEntry(NUM, ast.STAR, ast.STAR),
    "flag": VarEntry(BOOL),
    "q": VarEntry(NUM, ast.STAR, ast.STAR, is_list=True),
    "i": VarEntry(NUM),
}


class TestDistances:
    def test_literal(self):
        typer = make_typer(BASE)
        assert typer.distances(parse_expr("3")) == (ast.ZERO, ast.ZERO)

    def test_var_with_constant_distance(self):
        typer = make_typer(BASE)
        assert typer.distances(parse_expr("x")) == (ast.ONE, ast.ZERO)

    def test_star_var_resolves_to_hats(self):
        typer = make_typer(BASE)
        aligned, shadow = typer.distances(parse_expr("star"))
        assert aligned == ast.Hat("star", ast.ALIGNED)
        assert shadow == ast.Hat("star", ast.SHADOW)

    def test_hat_var_is_zero_distance(self):
        typer = make_typer(BASE)
        assert typer.distances(parse_expr("star^o")) == (ast.ZERO, ast.ZERO)

    def test_oplus_adds_componentwise(self):
        typer = make_typer(BASE)
        aligned, shadow = typer.distances(parse_expr("x + x"))
        assert aligned == ast.Real(2)
        assert shadow == ast.ZERO

    def test_neg_negates(self):
        typer = make_typer(BASE)
        aligned, _ = typer.distances(parse_expr("-x"))
        assert aligned == ast.Real(-1)

    def test_star_list_index(self):
        typer = make_typer(BASE)
        aligned, shadow = typer.distances(parse_expr("q[i]"))
        assert aligned == ast.Index(ast.Hat("q", ast.ALIGNED), ast.Var("i"))

    def test_index_by_private_rejected(self):
        typer = make_typer(BASE)
        with pytest.raises(ShadowDPTypeError) as err:
            typer.distances(parse_expr("q[x]"))
        assert err.value.reason == "indexed-by-private"

    def test_otimes_requires_zero_distances(self):
        typer = make_typer(BASE)
        assert typer.distances(parse_expr("pub * pub")) == (ast.ZERO, ast.ZERO)
        with pytest.raises(ShadowDPTypeError) as err:
            typer.distances(parse_expr("x * pub"))
        assert err.value.reason == "nonlinear-private"

    def test_division_of_private_rejected(self):
        typer = make_typer(BASE)
        with pytest.raises(ShadowDPTypeError):
            typer.distances(parse_expr("x / 2"))

    def test_ternary_arms_must_agree(self):
        typer = make_typer(BASE)
        assert typer.distances(parse_expr("flag ? x : x"))[0] == ast.ONE
        with pytest.raises(ShadowDPTypeError) as err:
            typer.distances(parse_expr("flag ? x : pub"))
        assert err.value.reason == "ternary-mismatch"

    def test_bool_in_numeric_position_rejected(self):
        typer = make_typer(BASE)
        with pytest.raises(ShadowDPTypeError):
            typer.distances(parse_expr("flag"))


class TestBooleanChecking:
    def test_zero_distance_comparison_passes(self):
        typer = make_typer(BASE)
        typer.check_boolean(parse_expr("pub < 3"))

    def test_odot_discharged_by_solver(self):
        # x has distance <1,0>: x < pub flips between executions — reject.
        typer = make_typer(BASE)
        with pytest.raises(ShadowDPTypeError) as err:
            typer.check_boolean(parse_expr("x < pub"))
        assert err.value.reason == "odot"

    def test_odot_equal_shifts_pass(self):
        # Both sides shifted identically: comparison result is stable.
        entries = dict(BASE)
        entries["y"] = VarEntry(NUM, parse_expr("1"), ast.ZERO)
        typer = make_typer(entries)
        typer.check_boolean(parse_expr("x < y"))

    def test_odot_uses_precondition(self):
        # With Ψ pinning the hat to 0, a star variable is comparable.
        typer = make_typer(BASE, psi="star^o == 0 && star^s == 0")
        typer.check_boolean(parse_expr("star < pub"))

    def test_connectives_recurse(self):
        typer = make_typer(BASE)
        typer.check_boolean(parse_expr("pub < 3 && !(pub > 5) || flag"))

    def test_numeric_expr_as_bool_rejected(self):
        typer = make_typer(BASE)
        with pytest.raises(ShadowDPTypeError):
            typer.check_boolean(parse_expr("pub + 1"))


class TestKindPrediction:
    def test_is_boolean(self):
        typer = make_typer(BASE)
        assert typer.is_boolean(parse_expr("flag"))
        assert typer.is_boolean(parse_expr("x < 1"))
        assert typer.is_boolean(parse_expr("true"))
        assert not typer.is_boolean(parse_expr("x + 1"))
        assert not typer.is_boolean(parse_expr("q[i]"))
