"""Unit tests for the command rules of the type checker (Fig. 4)."""

import pytest

from repro.core.checker import TypeChecker, check_function, uses_shadow_selector
from repro.core.errors import ShadowDPTypeError
from repro.lang import ast
from repro.lang.parser import parse_expr, parse_function


def check(src):
    return check_function(parse_function(src))


def commands_of(checked):
    return list(ast.command_iter(checked.body))


class TestAssignment:
    def test_distance_propagates(self):
        checked = check(
            """
            function F(x: num<1,0>) returns y: num<0,0>
            { y := x - x; return y; }
            """
        )
        assert checked.final_env.lookup("y").aligned == ast.ZERO

    def test_nonzero_return_distance_rejected(self):
        with pytest.raises(ShadowDPTypeError) as err:
            check(
                """
                function F(x: num<1,0>) returns y: num<0,0>
                { y := x; return y; }
                """
            )
        assert err.value.reason == "return-distance"

    def test_kind_change_rejected(self):
        with pytest.raises(ShadowDPTypeError):
            check(
                """
                function F(x: num) returns y: num
                { y := 1; y := x < 1; return 0; }
                """
            )

    def test_hat_assignment_in_source_rejected(self):
        fn = parse_function(
            "function F(x: num) returns y: num { y := 0; return y; }"
        )
        body = ast.seq(ast.Assign("x^o", ast.ZERO), fn.body)
        bad = ast.FunctionDef(fn.name, fn.params, fn.ret_name, fn.ret_type, fn.precondition, body)
        with pytest.raises(ShadowDPTypeError) as err:
            check_function(bad)
        assert err.value.reason == "hat-assignment"

    def test_well_formedness_promotion(self):
        # eta's distance (the annotation `x`) mentions x; assigning x must
        # freeze eta^o := x *before* the assignment (Section 4.3.1).
        checked = check(
            """
            function F(eps: num, x: num) returns r: num<0,0>
            {
                eta := Lap(1 / eps), aligned, x;
                x := 2;
                r := 0;
                return r;
            }
            """
        )
        assert ast.is_star(checked.final_env.lookup("eta").aligned)
        flat = checked.body.commands
        freeze_at = next(
            k for k, c in enumerate(flat)
            if isinstance(c, ast.Assign) and c.name == "eta^o"
        )
        assign_at = next(
            k for k, c in enumerate(flat)
            if isinstance(c, ast.Assign) and c.name == "x"
        )
        assert flat[freeze_at].expr == ast.Var("x")
        assert freeze_at < assign_at

    def test_freeze_dependents_emits_hat_store(self):
        checked = check(
            """
            function F(w: num<1,0>) returns r: num<0,0>
            {
                x := 1;
                y := w + x;
                x := 2;
                r := y - y;
                return r;
            }
            """
        )
        # y's aligned distance was 1 (from w) — x-free, so no promotion:
        assert checked.final_env.lookup("y").aligned == ast.ONE

    def test_hat_only_distances_stay_tracked(self):
        # x's distance after the second assignment is q^o[0] + q^o[1]:
        # hat variables are not the program variable x, so no promotion
        # is needed and the distance stays a tracked expression.
        checked = check(
            """
            function F(q: list num<*,*>) returns r: num<0,0>
            precondition forall k :: q^o[k] == 0 && q^s[k] == 0;
            {
                x := q[0];
                x := x + q[1];
                r := 0;
                return r;
            }
            """
        )
        expected = parse_expr("q^o[0] + q^o[1]")
        assert checked.final_env.lookup("x").aligned == expected


class TestListAssignment:
    def test_bool_cons(self):
        check(
            """
            function F(x: num) returns out: list bool
            { out := x < 1 :: out; return out; }
            """
        )

    def test_cons_wrong_distance_rejected(self):
        with pytest.raises(ShadowDPTypeError) as err:
            check(
                """
                function F(x: num<1,0>) returns out: list num<0,->
                { out := x :: out; return out; }
                """
            )
        assert err.value.reason == "cons-distance"

    def test_cons_must_extend_self(self):
        with pytest.raises(ShadowDPTypeError) as err:
            check(
                """
                function F(x: num) returns out: list num<0,->
                { other := 0; out := x :: other; return out; }
                """
            )
        assert err.value.reason in ("list-update-shape", "list-kind-mismatch")


class TestSampling:
    def test_sample_gets_annotation_distance(self):
        checked = check(
            """
            function F(eps: num) returns y: num<0,0>
            {
                eta := Lap(2 / eps), aligned, 1;
                y := eta - eta;
                return y;
            }
            """
        )
        assert checked.final_env.lookup("eta").aligned == ast.ONE
        assert checked.final_env.lookup("eta").random

    def test_private_scale_rejected(self):
        with pytest.raises(ShadowDPTypeError) as err:
            check(
                """
                function F(x: num<1,0>) returns y: num<0,0>
                { eta := Lap(x), aligned, 0; y := 0; return y; }
                """
            )
        assert err.value.reason == "private-scale"

    def test_non_injective_alignment_rejected(self):
        # eta + (eta > 0 ? -2*eta : 0) maps eta and -eta to ... not injective.
        with pytest.raises(ShadowDPTypeError) as err:
            check(
                """
                function F(eps: num) returns y: num<0,0>
                { eta := Lap(1 / eps), aligned, eta > 0 ? -2 * eta : 0;
                  y := 0; return y; }
                """
            )
        assert err.value.reason == "injectivity"

    def test_selector_rewrites_aligned_distances(self):
        checked = check(
            """
            function F(eps: num, x: num<1,2>) returns y: num<0,0>
            {
                eta := Lap(2 / eps), shadow, 0;
                y := x - x + eta - eta;
                return y;
            }
            """
        )
        # After a shadow selector, x's aligned distance is its shadow one.
        assert checked.final_env.lookup("x").aligned == ast.Real(2)

    def test_shadow_selector_under_diverged_branch_rejected(self):
        with pytest.raises(ShadowDPTypeError) as err:
            check(
                """
                function F(eps: num, x: num<1,1>) returns y: num<0,0>
                {
                    eta1 := Lap(2 / eps), shadow, 0;
                    if (x + eta1 > 0) {
                        eta2 := Lap(2 / eps), shadow, 0;
                    }
                    y := 0;
                    return y;
                }
                """
            )
        assert err.value.reason == "sample-under-high-pc"


class TestBranching:
    def test_join_promotes_and_instruments(self):
        checked = check(
            """
            function F(c: num, w: num<1,0>) returns r: num<0,0>
            {
                x := 0;
                if (c > 0) { x := w - w + 1; } else { x := w; }
                r := x - x;
                return r;
            }
            """
        )
        assert ast.is_star(checked.final_env.lookup("x").aligned)
        stores = [
            c for c in commands_of(checked)
            if isinstance(c, ast.Assign) and c.name == "x^o"
        ]
        assert len(stores) >= 2  # one per branch

    def test_branch_asserts_inserted(self):
        checked = check(
            """
            function F(c: num<1,0>, w: num<1,0>) returns r: num<0,0>
            {
                x := 0;
                if (c > w) { x := 1; } else { x := 2; }
                r := 0;
                return r;
            }
            """
        )
        asserts = [c for c in commands_of(checked) if isinstance(c, ast.Assert)]
        assert len(asserts) == 2
        # then-branch assert: c + 1 > w + 1
        assert asserts[0].expr == parse_expr("c + 1 > w + 1")

    def test_trivial_asserts_elided(self):
        checked = check(
            """
            function F(c: num) returns r: num<0,0>
            {
                x := 0;
                if (c > 0) { x := 1; } else { x := 2; }
                r := 0;
                return r;
            }
            """
        )
        asserts = [c for c in commands_of(checked) if isinstance(c, ast.Assert)]
        assert not asserts  # all distances zero → aligned guard == guard


class TestAlignedOnlyMode:
    def test_detection(self):
        fn = parse_function(
            """
            function F(eps: num) returns y: num<0,0>
            { eta := Lap(1 / eps), aligned, 0; y := 0; return y; }
            """
        )
        assert not uses_shadow_selector(fn.body)
        assert check_function(fn).aligned_only

    def test_lightdp_mode_rejects_shadow(self):
        from repro.algorithms import get

        fn = get("noisy_max").function()
        with pytest.raises(ShadowDPTypeError) as err:
            TypeChecker(fn, lightdp_mode=True).check()
        assert err.value.reason == "lightdp-shadow"

    def test_lightdp_mode_accepts_aligned_only(self):
        from repro.algorithms import get

        fn = get("svt").function()
        checked = TypeChecker(fn, lightdp_mode=True).check()
        assert checked.aligned_only


class TestTargetOnlyCommands:
    def test_assert_in_source_rejected(self):
        fn = parse_function("function F(x: num) returns y: num { y := 0; return y; }")
        body = ast.seq(ast.Assert(ast.TRUE), fn.body)
        bad = ast.FunctionDef(fn.name, fn.params, fn.ret_name, fn.ret_type, fn.precondition, body)
        with pytest.raises(ShadowDPTypeError) as err:
            check_function(bad)
        assert err.value.reason == "target-only-command"
