"""Unit tests for typing environments and the distance lattice."""

import pytest

from repro.core.environment import (
    BOOL,
    NUM,
    TypeEnv,
    VarEntry,
    distance_leq,
    env_from_function,
    join_distance,
)
from repro.core.errors import ShadowDPTypeError
from repro.lang import ast
from repro.lang.parser import parse_expr, parse_function


class TestDistanceLattice:
    def test_equal_distances_join_to_themselves(self):
        d = parse_expr("x + 1")
        assert join_distance(d, parse_expr("1 + x")) is not ast.STAR or True
        assert join_distance(d, d) == d

    def test_syntactically_equal_after_simplify(self):
        assert join_distance(parse_expr("x + 0"), parse_expr("x")) == ast.Var("x")

    def test_different_distances_join_to_star(self):
        assert ast.is_star(join_distance(parse_expr("3"), parse_expr("4")))

    def test_star_is_top(self):
        assert ast.is_star(join_distance(ast.STAR, parse_expr("3")))
        assert ast.is_star(join_distance(parse_expr("3"), ast.STAR))

    def test_order(self):
        assert distance_leq(parse_expr("3"), ast.STAR)
        assert not distance_leq(ast.STAR, parse_expr("3"))
        assert distance_leq(parse_expr("3"), parse_expr("3"))
        assert not distance_leq(parse_expr("3"), parse_expr("4"))


class TestTypeEnv:
    def test_set_and_lookup(self):
        env = TypeEnv().set("x", VarEntry(NUM, parse_expr("1"), ast.ZERO))
        assert env.lookup("x").aligned == ast.Real(1)

    def test_lookup_unbound_raises(self):
        with pytest.raises(ShadowDPTypeError):
            TypeEnv().lookup("ghost")

    def test_set_is_persistent(self):
        env1 = TypeEnv()
        env2 = env1.set("x", VarEntry(NUM))
        assert "x" not in env1
        assert "x" in env2

    def test_distances_normalised_on_set(self):
        env = TypeEnv().set("x", VarEntry(NUM, parse_expr("y + 0"), ast.ZERO))
        assert env.lookup("x").aligned == ast.Var("y")

    def test_aligned_expr_resolves_star_to_hat(self):
        env = TypeEnv().set("x", VarEntry(NUM, ast.STAR, ast.STAR))
        assert env.aligned_expr("x") == ast.Hat("x", ast.ALIGNED)
        assert env.shadow_expr("x") == ast.Hat("x", ast.SHADOW)

    def test_element_expr_for_star_list(self):
        env = TypeEnv().set("q", VarEntry(NUM, ast.STAR, ast.STAR, is_list=True))
        idx = ast.Var("i")
        resolved = env.element_expr("q", idx, ast.ALIGNED)
        assert resolved == ast.Index(ast.Hat("q", ast.ALIGNED), idx)

    def test_element_expr_for_constant_list(self):
        env = TypeEnv().set("q", VarEntry(NUM, ast.ONE, ast.ONE, is_list=True))
        assert env.element_expr("q", ast.Var("i"), ast.ALIGNED) == ast.ONE

    def test_join_pointwise(self):
        a = TypeEnv().set("x", VarEntry(NUM, parse_expr("1"), ast.ZERO))
        b = TypeEnv().set("x", VarEntry(NUM, parse_expr("2"), ast.ZERO))
        joined = a.join(b)
        assert ast.is_star(joined.lookup("x").aligned)
        assert joined.lookup("x").shadow == ast.ZERO

    def test_join_keeps_one_sided_vars(self):
        a = TypeEnv().set("x", VarEntry(NUM))
        b = TypeEnv().set("y", VarEntry(BOOL))
        joined = a.join(b)
        assert "x" in joined and "y" in joined

    def test_join_kind_conflict_raises(self):
        a = TypeEnv().set("x", VarEntry(NUM))
        b = TypeEnv().set("x", VarEntry(BOOL))
        with pytest.raises(ShadowDPTypeError):
            a.join(b)

    def test_leq(self):
        low = TypeEnv().set("x", VarEntry(NUM, parse_expr("1"), ast.ZERO))
        high = TypeEnv().set("x", VarEntry(NUM, ast.STAR, ast.ZERO))
        assert low.leq(high)
        assert not high.leq(low)

    def test_join_is_upper_bound(self):
        a = TypeEnv().set("x", VarEntry(NUM, parse_expr("1"), parse_expr("2")))
        b = TypeEnv().set("x", VarEntry(NUM, parse_expr("1"), parse_expr("3")))
        joined = a.join(b)
        assert a.leq(joined) and b.leq(joined)

    def test_bool_vars(self):
        env = TypeEnv().set("f", VarEntry(BOOL)).set("x", VarEntry(NUM))
        assert env.bool_vars() == frozenset({"f"})

    def test_map_distances(self):
        env = TypeEnv().set("x", VarEntry(NUM, parse_expr("c + 0"), ast.STAR))
        mapped = env.map_distances(lambda d: ast.BinOp("+", d, ast.ONE))
        assert mapped.lookup("x").aligned == parse_expr("c + 1")
        assert ast.is_star(mapped.lookup("x").shadow)  # stars untouched


class TestEnvFromFunction:
    def test_parameters_enter_with_declared_distances(self):
        fn = parse_function(
            """
            function F(eps: num<0,0>, q: list num<*,*>) returns y: num<0,0>
            { y := 0; return y; }
            """
        )
        env = env_from_function(fn)
        assert env.lookup("eps").aligned == ast.ZERO
        q = env.lookup("q")
        assert q.is_list and ast.is_star(q.aligned)

    def test_list_return_variable_is_seeded(self):
        fn = parse_function(
            """
            function F(x: num) returns out: list bool
            { out := true :: out; return out; }
            """
        )
        env = env_from_function(fn)
        assert env.lookup("out").is_list
        assert env.lookup("out").kind == BOOL

    def test_scalar_return_variable_not_seeded(self):
        fn = parse_function(
            "function F(x: num) returns y: num { y := 0; return y; }"
        )
        assert "y" not in env_from_function(fn)
