"""The fault-plan grammar, firing semantics and process-wide installation."""

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultPlanError, InjectedFault


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.install(None)
    faults.reset()


class TestGrammar:
    def test_unit_sites_accept_indices_and_star(self):
        plan = FaultPlan("worker-kill@2,solve-fail@*,solve-delay@0:1.5")
        assert [d.site for d in plan.directives] == [
            "worker-kill", "solve-fail", "solve-delay",
        ]
        assert plan.directives[0].key == 2
        assert plan.directives[1].key == "*"
        assert plan.directives[2].arg == "1.5"

    def test_whitespace_and_empty_parts_tolerated(self):
        plan = FaultPlan(" worker-kill@1 , , store-busy@3 ")
        assert len(plan.directives) == 2

    def test_solve_fail_fatal_argument(self):
        plan = FaultPlan("solve-fail@1:fatal")
        assert plan.directives[0].arg == "fatal"
        assert plan.directives[0].spec() == "solve-fail@1:fatal"

    @pytest.mark.parametrize(
        "spec",
        [
            "bogus@1",                 # unknown site
            "worker-kill",             # missing @KEY
            "worker-kill@x",           # non-integer key
            "worker-kill@-1",          # negative key
            "store-poison@0",          # occurrence keys are 1-based
            "store-poison@*",          # occurrence sites reject '*'
            "serve-drop@*",
            "solve-delay@1",           # missing :SECONDS
            "solve-delay@1:-2",        # negative delay
            "solve-delay@1:soon",      # non-numeric delay
            "solve-fail@1:sometimes",  # only 'fatal' is a valid arg
            "worker-kill@1:boom",      # site takes no argument
            "",                        # empty plan
            " , ,",
        ],
    )
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan(spec)


class TestFiring:
    def test_unit_sites_fire_on_every_matching_attempt(self):
        plan = FaultPlan("worker-kill@2")
        assert plan.kill_worker(2) is True
        assert plan.kill_worker(2) is True  # retries die too
        assert plan.kill_worker(1) is False
        assert [f.site for f in plan.trail] == ["worker-kill", "worker-kill"]

    def test_star_matches_every_unit(self):
        plan = FaultPlan("worker-kill@*")
        assert all(plan.kill_worker(i) for i in range(5))

    def test_solve_fail_reports_kind(self):
        assert FaultPlan("solve-fail@1").worker_fail(1) == "fail"
        assert FaultPlan("solve-fail@1:fatal").worker_fail(1) == "fatal"
        assert FaultPlan("solve-fail@1").worker_fail(0) is None

    def test_solve_delay_returns_seconds(self):
        plan = FaultPlan("solve-delay@3:0.25")
        assert plan.worker_delay(3) == 0.25
        assert plan.worker_delay(2) is None

    def test_occurrence_sites_fire_on_the_nth_call_only(self):
        plan = FaultPlan("store-busy@2")
        assert plan.store_busy() is False
        assert plan.store_busy() is True
        assert plan.store_busy() is False
        assert plan.snapshot() == [("store-busy", "2", "")]

    def test_occurrence_counters_are_per_site(self):
        plan = FaultPlan("store-poison@1,store-busy@1")
        assert plan.store_busy() is True
        assert plan.store_poison() is True  # own counter, unaffected

    def test_serve_drop_fires_at_most_once(self):
        plan = FaultPlan("serve-drop@3")
        assert plan.drop_connection(2) is False
        assert plan.drop_connection(3) is True
        # A retried connection reaching frame 3 survives.
        assert plan.drop_connection(3) is False

    def test_trail_records_typed_faults(self):
        plan = FaultPlan("worker-kill@0")
        plan.kill_worker(0)
        fault = plan.trail[0]
        assert isinstance(fault, InjectedFault)
        assert fault.site == "worker-kill" and fault.key == "u0"
        assert "pid" in fault.detail
        assert fault.describe().startswith("worker-kill@u0")


class TestInstallation:
    def test_active_is_none_when_nothing_installed(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV_VAR, raising=False)
        faults.reset()
        assert faults.active() is None
        assert faults.active() is None  # cached, no re-read

    def test_install_and_clear(self):
        plan = faults.install("worker-kill@1")
        assert faults.active() is plan
        faults.install(None)
        assert faults.active() is None

    def test_install_accepts_a_plan_object(self):
        plan = FaultPlan("store-busy@1")
        assert faults.install(plan) is plan
        assert faults.active() is plan

    def test_env_var_is_read_lazily_once(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "serve-drop@5")
        faults.reset()
        plan = faults.active()
        assert plan is not None
        assert plan.directives[0].site == "serve-drop"
        # Later env changes are invisible until the next reset().
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "store-busy@1")
        assert faults.active() is plan

    def test_bad_env_plan_raises(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV_VAR, "nope@1")
        faults.reset()
        with pytest.raises(FaultPlanError):
            faults.active()
