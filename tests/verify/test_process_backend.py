"""Cross-process determinism properties of :class:`ProcessPoolBackend`.

The process backend's contract is exact: verdicts, obligation ids,
failure lists and the *merged* solver counters are byte-identical to
:class:`SerialBackend` for every job count — workers solve
speculatively, but the parent's in-order replay against the shared
query cache (with the workers' answer maps as solve oracles)
reproduces the serial hit/miss/solve sequence.  Only the raw
per-worker totals (``outcome.workers``) are schedule-dependent.
"""

import dataclasses
import os

import pytest

from repro.algorithms import all_specs, get
from repro.pipeline import spec_config
from repro.verify.discharge import (
    BACKEND_ENV_VAR,
    JOBS_ENV_VAR,
    ProcessPoolBackend,
    SerialBackend,
    ThreadedBackend,
    resolve_backend,
)
from repro.verify.verifier import verify_target


def _config(base, **kwargs):
    return dataclasses.replace(base, **kwargs)


def _signature(outcome):
    """Everything the determinism contract pins, in one comparable value."""
    return (
        outcome.verified,
        outcome.obligations_total,
        tuple(outcome.oids or ()),
        tuple(sorted(f.obligation.oid for f in outcome.failures)),
        tuple(
            (f.obligation.oid, f.arith_model, f.bool_model)
            for f in outcome.failures
        ),
        outcome.solver_queries,
        outcome.cache_hits,
        outcome.solve_calls,
        outcome.context_pushes,
        outcome.context_pops,
        outcome.units,
    )


class TestDeterminism:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_registry_identical_to_serial_for_every_job_count(self, spec):
        """The acceptance property: serial vs process jobs ∈ {1, 2, 4}."""
        config = spec_config(spec)
        reference = _signature(
            verify_target(spec.target(), _config(config, backend="serial"))
        )
        for jobs in (1, 2, 4):
            outcome = verify_target(
                spec.target(), _config(config, backend="process", jobs=jobs)
            )
            assert _signature(outcome) == reference, (spec.name, jobs)
            assert outcome.backend == "process"

    def test_verdict_stream_matches_serial(self):
        """Replay order is plan order: the verdict-bearing events
        (unit started/finished, obligation discharged/refuted) are
        identical to the serial backend's.  Only ``PlanProgress``
        interleaves differently — the process backend carves units off
        the stream eagerly to keep workers fed."""
        from repro.verify.discharge import PlanProgress, UnitFinished

        spec = get("svt")
        config = spec_config(spec)

        def run(backend, jobs):
            events = []
            verify_target(
                spec.target(),
                _config(config, backend=backend, jobs=jobs),
                on_event=events.append,
            )
            # UnitFinished carries wall-clock seconds; compare its unit
            # and counters, and every other verdict event verbatim.
            return [
                (e.unit, tuple(sorted(e.stats.items())))
                if isinstance(e, UnitFinished)
                else e
                for e in events
                if not isinstance(e, PlanProgress)
            ]

        assert run("process", 3) == run("serial", 1)


class TestWorkerReport:
    def test_worker_totals_cover_the_plan(self):
        spec = get("svt")
        outcome = verify_target(
            spec.target(),
            _config(spec_config(spec), backend="process", jobs=2),
        )
        assert outcome.workers, "process runs must publish a worker report"
        assert sum(row["units"] for row in outcome.workers.values()) == outcome.units
        for pid, row in outcome.workers.items():
            assert pid.startswith("pid")
            assert set(row) == {"units", "queries", "cache_hits", "solve_calls"}
        assert "workers" in outcome.solver_stats()

    def test_serial_runs_publish_no_worker_report(self):
        spec = get("svt")
        outcome = verify_target(
            spec.target(), _config(spec_config(spec), backend="serial")
        )
        assert outcome.workers is None
        assert "workers" not in outcome.solver_stats()


class TestFailFast:
    def test_fail_fast_stops_at_the_serial_stopping_point(self):
        """Replays run in plan order, so fail-fast stops at exactly the
        unit serial stops at: same failures, countermodels, discharged
        units, solver counters and early exit — whatever the worker
        schedule.  Only the *generation* extent (obligations_total,
        oids) may run ahead: workers solve speculatively, so the stream
        keeps producing while the refuting unit is still in flight."""
        spec = get("bad_svt_leaks_value")
        config = spec_config(spec)
        serial = verify_target(
            spec.target(), _config(config, backend="serial", fail_fast=True)
        )
        assert serial.verified is False and serial.early_exit

        def discharge_signature(outcome):
            verified, total, oids, *rest = _signature(outcome)
            return (verified, *rest)

        for jobs in (1, 2, 4):
            outcome = verify_target(
                spec.target(),
                _config(config, backend="process", jobs=jobs, fail_fast=True),
            )
            assert discharge_signature(outcome) == discharge_signature(serial), jobs
            assert outcome.early_exit
            assert outcome.obligations_total >= serial.obligations_total
            assert tuple(outcome.oids[: len(serial.oids)]) == tuple(serial.oids)


class TestResolution:
    def test_name_resolves_to_process_backend(self):
        backend = resolve_backend(choice="process")
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.name == "process"
        assert resolve_backend(choice="process", jobs=4).jobs == 4

    def test_env_var_overrides_unpinned_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        backend = resolve_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 2

    def test_env_var_never_overrides_pinned_configs(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        # An explicit backend name wins ...
        assert isinstance(resolve_backend(choice="serial"), SerialBackend)
        # ... and so does an explicit job count (legacy pinning).
        assert isinstance(resolve_backend(jobs=3), ThreadedBackend)
        # ... and the non-incremental strategy.
        assert resolve_backend(incremental=False).name == "oneshot"

    def test_unknown_env_backend_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantum")
        with pytest.raises(ValueError, match="quantum"):
            resolve_backend()


class TestSkipDelegation:
    def test_houdini_skip_delegates_to_serial(self):
        """A live ``skip`` closure cannot cross the process boundary;
        the backend must fall back to in-process serial discharge."""
        from repro.verify.discharge import DischargePlan
        from repro.verify.verifier import iter_obligations, prepare_generator

        spec = get("svt")
        config = _config(spec_config(spec), backend="process", jobs=2)
        target = spec.target()
        _, checker = prepare_generator(target, config)
        skipped = []

        def skip(obligation):
            skipped.append(obligation.oid)
            return False

        failures = checker.discharge_stream(
            iter_obligations(target, config), skip=skip
        )
        assert failures == []
        # The skip closure genuinely ran, in-process, for every obligation.
        plan = DischargePlan.from_obligations(iter_obligations(target, config))
        assert len(skipped) == len(plan.obligations)
        # Serial delegation: no worker processes, so no worker report.
        assert checker.worker_report is None


class TestStoreComposition:
    def test_store_hits_plus_solves_is_schedule_invariant(self, tmp_path):
        """Half-warm store × process backend: the *sum* of store hits
        and obligations solved is the plan size for every schedule, and
        verdicts never change."""
        spec = get("gap_svt")
        config = spec_config(spec)
        store_path = os.fspath(tmp_path / "store.sqlite")

        cold = verify_target(
            spec.target(),
            _config(config, backend="process", jobs=2, store=store_path),
        )
        assert cold.verified is True
        assert cold.store is not None
        assert cold.store["hits"] == 0
        assert cold.store["writes"] == cold.obligations_total

        for jobs in (1, 3):
            warm = verify_target(
                spec.target(),
                _config(config, backend="process", jobs=jobs, store=store_path),
            )
            assert warm.verified is True
            assert warm.solve_calls == 0
            assert warm.store["hits"] == cold.obligations_total
            assert warm.store["hits"] + warm.solver_queries >= warm.obligations_total
