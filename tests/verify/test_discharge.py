"""Tests for the first-class obligation & discharge API.

Covers: stable content-derived obligation ids (with snapshots pinned
over registry programs), provenance records, discharge-plan
partitioning, the backend-equivalence property (serial vs threaded for
jobs ∈ {1, 2, 4} and the one-shot strategy produce identical verdicts,
obligation ids and solve counts across the registry), the single-flight
query cache that makes those counters deterministic, the typed event
stream, fail-fast early exit, and the constant-guard folding pass.
"""

import threading

import pytest

from repro.algorithms import all_specs, get
from repro.ir import ast_to_cfg, fold_constant_guards
from repro.lang import ast
from repro.lang.parser import parse_command
from repro.pipeline import spec_config
from repro.solver.context import CacheEntry, QueryCache
from repro.verify.discharge import (
    CachedBackend,
    DischargePlan,
    EarlyExit,
    ObligationDischarged,
    ObligationRefuted,
    OneShotBackend,
    PlanProgress,
    SerialBackend,
    ThreadedBackend,
    UnitFinished,
    UnitStarted,
    effective_jobs,
    event_kind,
    resolve_backend,
)
from repro.verify.vcgen import VCGenerator
from repro.verify.verifier import (
    VerificationConfig,
    iter_obligations,
    verify_target,
)


def _gen(source, **kwargs):
    gen = VCGenerator(**kwargs)
    gen.run(parse_command(source))
    return gen


# ---------------------------------------------------------------------------
# Obligation ids and provenance
# ---------------------------------------------------------------------------


class TestObligationIds:
    def test_id_is_content_derived(self):
        # Two independent walks of the same program produce the same ids.
        source = "havoc x; assert(x > 0); assert(x > 1);"
        first = [ob.oid for ob in _gen(source).obligations]
        second = [ob.oid for ob in _gen(source).obligations]
        assert first == second
        assert len(set(first)) == 2

    def test_id_depends_on_path_and_tag(self):
        gen = _gen("havoc c; if (c > 0) { assert(c > 1); } else { assert(c > 1); }")
        a, b = gen.obligations
        assert a.goal == b.goal
        assert a.oid != b.oid  # different arms → different paths → ids

    def test_provenance_excluded_from_equality(self):
        gen = _gen("havoc x; assert(x > 0);")
        (ob,) = gen.obligations
        clone = type(ob)(ob.goal, ob.path, ob.tag, ob.label, None)
        assert clone == ob
        assert clone.oid == ob.oid

    #: Snapshots over registry programs: these ids are the public,
    #: addressable names of the obligations — they must not drift across
    #: refactors unless the obligation *content* genuinely changes.
    SVT_IDS = [
        "0e731a3fb668", "914a39d3850c", "db8d081c859f", "0cbea8d8401c",
        "5994d24c5325", "3cb2162a17c5", "e75b8cdfb34f", "da8dfd13c52d",
        "cebbef82dadd", "55104f0cae03", "2414fc1a8106", "d0534fc2daf0",
    ]
    NOISY_MAX_ID_PREFIX = ["31de48f803cc", "6c9444e238e1", "629f8f9c1a8b"]

    def test_svt_id_snapshot(self):
        spec = get("svt")
        obs = list(iter_obligations(spec.target(), spec_config(spec)))
        assert [ob.oid for ob in obs] == self.SVT_IDS

    def test_noisy_max_id_snapshot(self):
        spec = get("noisy_max")
        obs = list(iter_obligations(spec.target(), spec_config(spec)))
        assert [ob.oid for ob in obs][:3] == self.NOISY_MAX_ID_PREFIX


class TestProvenance:
    def test_straight_line_provenance(self):
        gen = _gen("havoc x; assert(x > 0);")
        (ob,) = gen.obligations
        assert ob.provenance is not None
        assert ob.provenance.region == "fn"
        assert ob.provenance.statement == "assert(x > 0);"
        assert ob.provenance.path_depth == 0
        assert ob.provenance.iteration is None

    def test_loop_provenance_carries_iteration(self):
        gen = _gen(
            "i := 0; havoc t; while (i < 2) { assert(t > i); i := i + 1; }",
            unroll_limit=4,
        )
        iterations = [ob.provenance.iteration for ob in gen.obligations]
        assert iterations == [1, 2]
        assert all("loop@b" in ob.provenance.region for ob in gen.obligations)

    def test_invariant_provenance_names_loop_head(self):
        gen = _gen(
            "x := 1; while (x < 5) invariant x >= 1; { x := x + 1; }",
            use_invariants=True,
        )
        tags = {(ob.tag, ob.provenance.loop_head is not None) for ob in gen.obligations}
        assert tags == {("invariant-preserved", True)}

    def test_stream_yields_incrementally(self):
        gen = VCGenerator()
        stream = gen.stream(parse_command("havoc x; assert(x > 0); assert(x > 1);"))
        first = next(stream)
        # The first obligation arrives before the walk has finished.
        assert first.tag == "assert"
        assert gen.final_state is None
        rest = list(stream)
        assert len(rest) == 1
        assert gen.final_state is not None


# ---------------------------------------------------------------------------
# The discharge plan
# ---------------------------------------------------------------------------


class TestDischargePlan:
    def test_chain_grouping(self):
        # Obligations whose paths extend the chain's base share a unit;
        # the else-arm (diverging from the then-arm base) and the
        # post-merge assert (shorter path) each reset the chain.
        gen = _gen(
            "havoc d;"
            "if (d > 0) { assert(d > 1); assert(d > 2); } else { assert(d < 1); }"
            "assert(d < 99);"
        )
        plan = DischargePlan.from_obligations(gen.obligations)
        sizes = [len(unit.members) for unit in plan.units]
        assert sum(sizes) == len(gen.obligations)
        assert sizes == [2, 1, 1]
        # Suffixes are relative to the unit base.
        first = plan.units[0]
        assert first.members[0][2] == ()

    def test_units_are_deterministic_and_indexed(self):
        spec = get("svt")
        obs = list(iter_obligations(spec.target(), spec_config(spec)))
        plan_a = DischargePlan.from_obligations(obs)
        plan_b = DischargePlan.from_obligations(obs)
        assert [u.uid for u in plan_a.units] == [u.uid for u in plan_b.units]
        assert [u.index for u in plan_a.units] == list(range(len(plan_a.units)))

    def test_stream_units_is_incremental(self):
        gen = _gen("havoc c; if (c > 0) { assert(c > 1); } else { assert(c < 1); }")
        units = DischargePlan.stream_units(iter(gen.obligations))
        first = next(units)
        assert first.index == 0
        assert len(list(units)) == 1

    def test_plan_to_dict_lists_units_and_provenance(self):
        spec = get("svt")
        plan = DischargePlan.from_obligations(
            iter_obligations(spec.target(), spec_config(spec))
        )
        data = plan.to_dict()
        assert len(data["obligations"]) == sum(
            len(u["obligations"]) for u in data["units"]
        )
        assert all("provenance" in ob for ob in data["obligations"])


# ---------------------------------------------------------------------------
# Backend equivalence: the headline property
# ---------------------------------------------------------------------------


def _signature(outcome):
    return (
        outcome.verified,
        sorted(f.obligation.oid for f in outcome.failures),
        outcome.obligations_total,
        outcome.solver_queries,
        outcome.cache_hits,
        outcome.solve_calls,
        outcome.units,
    )


class TestBackendEquivalence:
    """Serial and threaded (jobs ∈ {1, 2, 4}) discharge produce identical
    verdicts, obligation ids, solve counts and cache hits — the
    deterministic-parallelism requirement, over the full registry."""

    @pytest.mark.parametrize("name", [s.name for s in all_specs(include_buggy=False)])
    def test_invariant_regime_full_registry(self, name):
        spec = get(name)
        config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
        reference = None
        for backend in (SerialBackend(), ThreadedBackend(1), ThreadedBackend(2), ThreadedBackend(4)):
            outcome = verify_target(
                spec.target(),
                VerificationConfig(
                    mode=config.mode,
                    assumptions=config.assumptions,
                    backend=backend,
                ),
            )
            signature = _signature(outcome)
            if reference is None:
                reference = signature
            assert signature == reference, f"{name}: {backend.name} diverged"

    @pytest.mark.parametrize("name", ["svt", "bad_svt_no_budget"])
    def test_unroll_regime(self, name):
        spec = get(name)
        bindings = dict(spec.fixed_bindings)
        bindings["size"] = 3
        reference = None
        for jobs in (1, 2, 4):
            outcome = verify_target(
                spec.target(),
                VerificationConfig(
                    mode="unroll",
                    bindings=bindings,
                    assumptions=spec.assumption_exprs(),
                    unroll_limit=16,
                    jobs=jobs,
                    backend="threaded" if jobs > 1 else "serial",
                ),
            )
            signature = _signature(outcome)
            if reference is None:
                reference = signature
            assert signature == reference, f"{name}: jobs={jobs} diverged"
        assert (name == "svt") == reference[0]

    def test_oneshot_agrees_on_verdicts(self):
        spec = get("bad_svt_no_budget")
        config = spec_config(spec)
        serial = verify_target(spec.target(), config)
        oneshot = verify_target(
            spec.target(),
            VerificationConfig(
                mode=config.mode,
                bindings=config.bindings,
                assumptions=config.assumptions,
                unroll_limit=config.unroll_limit,
                backend=OneShotBackend(),
            ),
        )
        assert oneshot.backend == "oneshot"
        assert serial.verified == oneshot.verified
        assert sorted(f.obligation.oid for f in serial.failures) == sorted(
            f.obligation.oid for f in oneshot.failures
        )

    def test_resolve_backend_from_legacy_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_JOBS", raising=False)
        monkeypatch.delenv("REPRO_VERIFY_BACKEND", raising=False)
        assert resolve_backend(True, 1).name == "serial"
        assert resolve_backend(True, 4).name == "threaded"
        assert resolve_backend(False, 1).name == "oneshot"
        assert resolve_backend(True, 1, "threaded").name == "threaded"
        with pytest.raises(ValueError):
            resolve_backend(True, 1, "quantum")

    def test_jobs_env_var_raises_default_parallelism(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_JOBS", "2")
        monkeypatch.delenv("REPRO_VERIFY_BACKEND", raising=False)
        assert resolve_backend(True, 1).name == "threaded"
        assert effective_jobs(resolve_backend(True, 1)) == 2
        # Explicit choices and explicit job counts are not overridden.
        assert resolve_backend(True, 1, "serial").name == "serial"
        assert resolve_backend(False, 1).name == "oneshot"

    def test_effective_jobs_unwraps_cached_backend(self):
        assert effective_jobs(SerialBackend()) == 1
        assert effective_jobs(ThreadedBackend(4)) == 4
        assert effective_jobs(CachedBackend(ThreadedBackend(4))) == 4
        assert effective_jobs(CachedBackend(OneShotBackend())) == 1

    def test_cached_backend_shares_cache_across_runs(self):
        spec = get("svt")
        base = spec_config(spec)
        config = VerificationConfig(
            mode=base.mode,
            bindings=base.bindings,
            assumptions=base.assumptions,
            unroll_limit=base.unroll_limit,
            backend="serial",  # pinned: REPRO_VERIFY_JOBS must not retarget this
        )
        cache = QueryCache()
        first = verify_target(spec.target(), config, cache=cache)
        second = verify_target(spec.target(), config, cache=cache)
        assert first.backend == "cached+serial" == second.backend
        assert first.verified and second.verified
        assert first.solve_calls > 0
        # Every query of the second run is answered from the first run's
        # cache: same questions, zero new solves.
        assert second.solve_calls == 0
        assert second.cache_hits == second.solver_queries

    def test_outcome_reports_effective_jobs(self):
        spec = get("svt")
        config = spec_config(spec)
        outcome = verify_target(
            spec.target(),
            VerificationConfig(
                mode=config.mode,
                bindings=config.bindings,
                assumptions=config.assumptions,
                unroll_limit=config.unroll_limit,
                backend=ThreadedBackend(3),
            ),
        )
        assert outcome.backend == "threaded"
        assert outcome.jobs == 3


# ---------------------------------------------------------------------------
# Single-flight cache: the determinism lever
# ---------------------------------------------------------------------------


class TestSingleFlightCache:
    def test_acquire_counts_like_lookup_when_uncontended(self):
        cache = QueryCache()
        assert cache.acquire("k") is None
        cache.store("k", CacheEntry(valid=True, status="unsat"))
        assert cache.acquire("k").valid
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_concurrent_identical_queries_solve_once(self):
        cache = QueryCache()
        solves = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            entry = cache.acquire("key")
            if entry is None:
                solves.append(1)  # we own the flight: "solve" slowly
                threading.Event().wait(0.01)
                cache.store("key", CacheEntry(valid=True, status="unsat"))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(solves) == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 3

    def test_cancel_hands_flight_to_waiter(self):
        cache = QueryCache()
        assert cache.acquire("k") is None
        handed_over = []

        def waiter():
            handed_over.append(cache.acquire("k"))

        thread = threading.Thread(target=waiter)
        thread.start()
        cache.cancel("k")
        thread.join()
        # The waiter became the new flight owner (miss, not a hit).
        assert handed_over == [None]
        assert cache.stats()["misses"] == 2
        cache.cancel("k")


# ---------------------------------------------------------------------------
# Events and fail-fast
# ---------------------------------------------------------------------------


class TestEventStream:
    def test_serial_event_stream_is_consistent(self):
        spec = get("svt")
        events = []
        outcome = verify_target(spec.target(), spec_config(spec), on_event=events.append)
        assert outcome.verified
        started = [e for e in events if isinstance(e, UnitStarted)]
        finished = [e for e in events if isinstance(e, UnitFinished)]
        discharged = [e for e in events if isinstance(e, ObligationDischarged)]
        assert len(started) == len(finished) == outcome.units
        assert len(discharged) == outcome.obligations_total
        assert not [e for e in events if isinstance(e, ObligationRefuted)]
        # Per-unit stats sum to the outcome's deterministic totals.
        assert sum(e.stats["solve_calls"] for e in finished) == outcome.solve_calls
        assert sum(e.stats["queries"] for e in finished) == outcome.solver_queries
        plans = [e for e in events if isinstance(e, PlanProgress)]
        assert [e.unit for e in plans] == [e.unit for e in started]

    def test_refutation_events_carry_counterexamples(self):
        spec = get("bad_svt_no_budget")
        events = []
        outcome = verify_target(spec.target(), spec_config(spec), on_event=events.append)
        refuted = [e for e in events if isinstance(e, ObligationRefuted)]
        assert not outcome.verified
        assert {e.oid for e in refuted} == {f.obligation.oid for f in outcome.failures}
        assert all(e.counterexample for e in refuted)

    def test_event_kind_names(self):
        assert event_kind(UnitStarted("u0", 1)) == "unit-started"
        assert event_kind(ObligationRefuted("u0", "x", "assert")) == "obligation-refuted"

    def test_fail_fast_stops_early(self):
        # This variant's first refutation lands in unit 0 of 4, so a
        # fail-fast run must leave later units undischarged.
        spec = get("bad_svt_leaks_value")
        config = spec_config(spec)
        full = verify_target(spec.target(), config)
        events = []
        fast = verify_target(
            spec.target(),
            VerificationConfig(
                mode=config.mode,
                bindings=config.bindings,
                assumptions=config.assumptions,
                unroll_limit=config.unroll_limit,
                fail_fast=True,
            ),
            on_event=events.append,
        )
        assert not fast.verified
        assert fast.early_exit
        assert fast.units < full.units
        assert any(isinstance(e, EarlyExit) for e in events)
        # The refutations it did find agree with the full run's.
        fast_ids = {f.obligation.oid for f in fast.failures}
        full_ids = {f.obligation.oid for f in full.failures}
        assert fast_ids <= full_ids and fast_ids


# ---------------------------------------------------------------------------
# Constant-guard folding
# ---------------------------------------------------------------------------


class TestConstantGuardFolding:
    def test_true_branch_folds_to_then_arm(self):
        cfg = ast_to_cfg(parse_command("if (1 > 0) { x := 1; } else { x := 2; }"))
        folded = fold_constant_guards(cfg)
        from repro.ir.cfg import Branch

        assert not any(
            isinstance(b.term, Branch) for _, b in folded.walk_blocks()
        )

    def test_false_loop_removed_only_when_folding_loops(self):
        cfg = ast_to_cfg(parse_command("while (1 < 0) { x := 1; }"))
        from repro.ir.cfg import LoopHeader

        kept = fold_constant_guards(cfg, fold_loops=False)
        assert any(isinstance(b.term, LoopHeader) for _, b in kept.walk_blocks())
        dropped = fold_constant_guards(cfg, fold_loops=True)
        assert not any(isinstance(b.term, LoopHeader) for _, b in dropped.walk_blocks())

    def test_folding_preserves_obligation_stream(self):
        source = (
            "havoc x; if (1 > 0) { assert(x > 0); } else { assert(x > 9); }"
            "while (1 < 0) { assert(x > 5); } assert(x > 1);"
        )
        plain = _gen(source).obligations
        gen = VCGenerator()
        gen.run(fold_constant_guards(ast_to_cfg(parse_command(source)), fold_loops=True))
        assert [ob.oid for ob in gen.obligations] == [ob.oid for ob in plain]
        assert [ob.oid for ob in plain] == [
            ob.oid for ob in _gen(source).obligations
        ]

    def test_symbolic_guards_untouched(self):
        cfg = ast_to_cfg(parse_command("havoc c; if (c > 0) { x := 1; }"))
        folded = fold_constant_guards(cfg)
        from repro.ir.cfg import Branch

        assert any(isinstance(b.term, Branch) for _, b in folded.walk_blocks())
