"""Cooperative-cancellation regression tests.

A discharge run interrupted mid-plan (per-request timeout, server
drain, Ctrl-C) must unwind *cleanly*: pushed solver scopes popped,
single-flight query-cache acquisitions released (no deadlocked
waiters), queued-but-unstarted work dropped — and the shared caches
must remain fully usable afterwards.
"""

import threading

import pytest

from repro.algorithms import get
from repro.pipeline import Pipeline, spec_config
from repro.solver.context import QueryCache
from repro.verify.discharge import (
    DischargeCancelled,
    DischargeEngine,
    DischargePlan,
    EarlyExit,
    ObligationDischarged,
)
from repro.verify.verifier import iter_obligations, verify_target

import dataclasses


def _svt():
    spec = get("svt")
    return spec.target(), spec_config(spec)


def _config(base, **kwargs):
    return dataclasses.replace(base, **kwargs)


class TestCancelEvent:
    def test_preset_cancel_raises_before_any_work(self):
        target, config = _svt()
        cancel = threading.Event()
        cancel.set()
        cache = QueryCache()
        with pytest.raises(DischargeCancelled):
            verify_target(target, _config(config, cancel_event=cancel), cache=cache)
        stats = cache.stats()
        assert stats["pending"] == 0
        assert stats["misses"] == 0  # nothing was even looked up

    def test_cancel_mid_sweep_releases_single_flight(self):
        """The satellite regression: cancel a ThreadedBackend run midway.

        After the cancellation no single-flight acquisition may remain
        pending (a leaked flight deadlocks every later identical query),
        and the same shared cache must complete a fresh run.
        """
        target, config = _svt()
        plan = DischargePlan.from_obligations(iter_obligations(target, config))
        assert len(plan.units) > 2  # precondition: there is a "midway"

        cache = QueryCache()
        cancel = threading.Event()
        events = []
        lock = threading.Lock()

        def sink(event):
            with lock:
                events.append(event)
                discharged = sum(
                    1 for e in events if isinstance(e, ObligationDischarged)
                )
            if discharged >= 3:
                cancel.set()

        with pytest.raises(DischargeCancelled):
            verify_target(
                target,
                _config(config, cancel_event=cancel, backend="threaded", jobs=2),
                cache=cache,
                on_event=sink,
            )

        # No leaked single-flight acquisitions ...
        assert cache.stats()["pending"] == 0
        # ... exactly one early-exit notification reached the stream ...
        exits = [e for e in events if isinstance(e, EarlyExit)]
        assert len(exits) == 1
        assert exits[0].reason == "cancelled"
        # ... and the run genuinely stopped early: not every obligation
        # received a verdict.
        verdicts = sum(1 for e in events if isinstance(e, ObligationDischarged))
        assert verdicts < len(plan.obligations)

        # The shared cache is still fully serviceable: a fresh run over
        # the same plan completes (a leaked flight would deadlock here).
        outcome = verify_target(target, config, cache=cache)
        assert outcome.verified is True
        assert cache.stats()["pending"] == 0

    def test_interrupt_mid_collection_drops_queued_units(self, monkeypatch):
        """KeyboardInterrupt in a worker must not run the rest of the plan.

        Before the fix, ThreadedBackend's executor shutdown waited for
        every queued unit — an interrupt mid-plan silently verified the
        whole program before propagating.
        """
        target, config = _svt()
        plan = DischargePlan.from_obligations(iter_obligations(target, config))
        assert len(plan.units) > 2

        calls = []
        original = DischargeEngine.discharge_unit

        def exploding(self, unit, *args, **kwargs):
            calls.append(unit.uid)
            raise KeyboardInterrupt

        monkeypatch.setattr(DischargeEngine, "discharge_unit", exploding)
        cache = QueryCache()
        with pytest.raises(KeyboardInterrupt):
            verify_target(
                target,
                _config(config, backend="threaded", jobs=1),
                cache=cache,
            )
        # One worker raised; the queued remainder was cancelled, not run.
        assert len(calls) == 1
        assert cache.stats()["pending"] == 0

        monkeypatch.setattr(DischargeEngine, "discharge_unit", original)
        outcome = verify_target(target, config, cache=cache)
        assert outcome.verified is True


class TestProcessBackendCancellation:
    def test_cancel_mid_replay_drops_pending_workers(self):
        """Cancel a ProcessPoolBackend run midway through its replay.

        The parent's in-order replay re-checks the cancel event at every
        unit; observing it must cancel the not-yet-replayed worker
        futures, emit exactly one early-exit event, and leave the shared
        query cache fully serviceable.
        """
        target, config = _svt()
        plan = DischargePlan.from_obligations(iter_obligations(target, config))
        assert len(plan.units) > 2

        cache = QueryCache()
        cancel = threading.Event()
        events = []

        def sink(event):
            events.append(event)
            discharged = sum(1 for e in events if isinstance(e, ObligationDischarged))
            if discharged >= 3:
                cancel.set()

        with pytest.raises(DischargeCancelled):
            verify_target(
                target,
                _config(config, cancel_event=cancel, backend="process", jobs=2),
                cache=cache,
                on_event=sink,
            )

        assert cache.stats()["pending"] == 0
        exits = [e for e in events if isinstance(e, EarlyExit)]
        assert len(exits) == 1
        assert exits[0].reason == "cancelled"
        verdicts = sum(1 for e in events if isinstance(e, ObligationDischarged))
        assert verdicts < len(plan.obligations)

        outcome = verify_target(target, config, cache=cache)
        assert outcome.verified is True
        assert cache.stats()["pending"] == 0

    def test_worker_interrupt_drops_queued_units(self, monkeypatch, tmp_path):
        """KeyboardInterrupt in a worker process must not run the rest
        of the plan.

        Mirrors the ThreadedBackend regression: without the
        BaseException handler cancelling pending futures, pool shutdown
        would feed every queued unit to the workers before the
        exception could propagate.  Workers are forked after the patch,
        so they inherit the exploding discharge; each records its unit
        in a file the parent can read back.
        """
        spec = get("bad_svt_no_budget")  # 7 units: room for a "remainder"
        target, config = spec.target(), spec_config(spec)
        plan = DischargePlan.from_obligations(iter_obligations(target, config))
        assert len(plan.units) >= 5

        witness = tmp_path / "units-started.log"

        def exploding(self, unit, *args, **kwargs):
            import time

            with open(witness, "a") as fh:
                fh.write(unit.uid + "\n")
            time.sleep(0.05)  # let the parent observe the first failure
            raise KeyboardInterrupt

        monkeypatch.setattr(DischargeEngine, "discharge_unit", exploding)
        cache = QueryCache()
        with pytest.raises(KeyboardInterrupt):
            verify_target(
                target,
                _config(config, backend="process", jobs=1),
                cache=cache,
            )
        # The worker raised on an early unit; the queued remainder was
        # cancelled, not run.
        started = witness.read_text().splitlines()
        assert 1 <= len(started) < len(plan.units)
        assert cache.stats()["pending"] == 0

        monkeypatch.undo()
        outcome = verify_target(target, config, cache=cache)
        assert outcome.verified is False  # the buggy spec's honest verdict


class TestPipelineCancellation:
    def test_cancelled_stage_releases_memo_flight(self):
        """A cancelled verify must not wedge the pipeline's stage memo."""
        spec = get("svt")
        config = spec_config(spec)
        pipe = Pipeline()
        cancel = threading.Event()
        cancel.set()
        with pytest.raises(DischargeCancelled):
            pipe.run(spec.source, config=_config(config, cancel_event=cancel))
        assert pipe.memo_stats()["in_flight"] == 0

        # Same pipeline, same request, no cancellation: runs to completion
        # (a leaked flight would block forever waiting on itself).
        run = pipe.run(spec.source, config=config)
        assert run.verified is True
        # The cancelled attempt memoized nothing for the verify stage.
        assert run.stages["verify"].cached is False

    def test_cancel_event_not_part_of_memo_key(self):
        """Requests differing only in their cancel event share one memo
        entry — cancellation plumbing must not fork the cache."""
        spec = get("svt")
        config = spec_config(spec)
        pipe = Pipeline()
        first = pipe.run(spec.source, config=config)
        again = pipe.run(
            spec.source, config=_config(config, cancel_event=threading.Event())
        )
        assert first.stages["verify"].cached is False
        assert again.stages["verify"].cached is True


class TestOneShotBackendCancellation:
    def test_cancel_between_obligations_stops_the_unit(self):
        """OneShotBackend re-checks the cancel event before every member
        of a unit, not just at unit boundaries — a cancellation arriving
        mid-unit must stop after the in-flight obligation."""
        target, config = _svt()
        config = _config(config, incremental=False, backend="oneshot")
        plan = DischargePlan.from_obligations(iter_obligations(target, config))
        total = len(plan.obligations)
        assert total > 3

        cancel = threading.Event()
        events = []

        def sink(event):
            events.append(event)
            discharged = sum(1 for e in events if isinstance(e, ObligationDischarged))
            if discharged >= 2:
                cancel.set()

        with pytest.raises(DischargeCancelled):
            verify_target(
                target,
                _config(config, cancel_event=cancel),
                on_event=sink,
            )

        exits = [e for e in events if isinstance(e, EarlyExit)]
        assert len(exits) == 1
        assert exits[0].reason == "cancelled"
        verdicts = sum(1 for e in events if isinstance(e, ObligationDischarged))
        # Stopped promptly: at most one obligation past the trigger.
        assert 2 <= verdicts <= 3
        assert verdicts < total
