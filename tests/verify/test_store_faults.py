"""Obligation-store fault tolerance: busy retries, poisoned rows,
degraded in-memory mode."""

import dataclasses
import os

import pytest

from repro import faults
from repro.algorithms import get
from repro.pipeline import spec_config
from repro.verify.store import ObligationStore
from repro.verify.verifier import verify_target


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.install(None)
    faults.reset()


def _config(base, **kwargs):
    return dataclasses.replace(base, **kwargs)


class TestBusyRetry:
    def test_transient_lock_is_retried_and_counted(self, tmp_path):
        spec = get("svt")
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        faults.install("store-busy@1")
        outcome = verify_target(
            spec.target(), _config(spec_config(spec), store=store)
        )
        assert outcome.verified is True
        # The injected 'database is locked' hit one attempt; the retry
        # landed the operation and the run never noticed.
        assert store.counters.busy_retries == 1
        assert store.degraded is False
        assert outcome.store["busy_retries"] == 1
        assert outcome.store["writes"] == outcome.obligations_total
        assert store.stats()["busy_retries"] == 1

    def test_persistent_lock_degrades_instead_of_failing(self, tmp_path):
        """A write whose every attempt stays locked exhausts the retry
        budget and flips the store to memory-only — the run completes."""
        spec = get("svt")
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        # A cold run's store traffic is one lookup per obligation, then
        # the one write batch: lock every attempt of that write (the
        # retry budget's worth of occurrences after the lookups).
        total = verify_target(spec.target(), spec_config(spec)).obligations_total
        plan = ",".join(
            f"store-busy@{n}"
            for n in range(total + 1, total + 1 + ObligationStore.BUSY_ATTEMPTS)
        )
        faults.install(plan)
        outcome = verify_target(
            spec.target(), _config(spec_config(spec), store=store)
        )
        assert outcome.verified is True
        assert store.degraded is True
        assert store.counters.memory_writes > 0
        assert outcome.store["degraded"] is True


class TestPoisonedRows:
    def test_poisoned_row_is_quarantined_and_resolved(self, tmp_path):
        spec = get("svt")
        store_path = os.fspath(tmp_path / "store.sqlite")
        faults.install("store-poison@1")
        cold = verify_target(
            spec.target(), _config(spec_config(spec), store=store_path)
        )
        assert cold.verified is True
        total = cold.obligations_total

        faults.install(None)
        warm = verify_target(
            spec.target(), _config(spec_config(spec), store=store_path)
        )
        assert warm.verified is True
        # Exactly one row was undecodable: counted invalid, deleted,
        # reported as a miss and re-solved; everything else warm-hit.
        assert warm.store["invalid"] == 1
        assert warm.store["hits"] == total - 1
        assert warm.store["misses"] == 1
        assert warm.store["writes"] == 1

        # Third run: the quarantined row was rewritten clean.
        healed = verify_target(
            spec.target(), _config(spec_config(spec), store=store_path)
        )
        assert healed.store["invalid"] == 0
        assert healed.store["hits"] == total
        assert healed.solve_calls == 0


class TestDegradedMode:
    def test_unwritable_store_degrades_to_memory(self, tmp_path):
        """A store whose path cannot exist (nested under a regular
        file) degrades on first write: verdicts stay in memory, the run
        is unaffected, and a second run through the same store object
        answers from memory without solving."""
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        store = ObligationStore(os.fspath(blocker / "store.sqlite"))
        spec = get("svt")

        cold = verify_target(
            spec.target(), _config(spec_config(spec), store=store)
        )
        assert cold.verified is True
        assert store.degraded is True
        assert cold.store["degraded"] is True
        assert cold.store["memory_writes"] == cold.obligations_total
        assert store.entry_count() == cold.obligations_total
        assert store.stats()["degraded"] is True

        warm = verify_target(
            spec.target(), _config(spec_config(spec), store=store)
        )
        assert warm.verified is True
        assert warm.solve_calls == 0
        assert warm.store["hits"] - cold.store["hits"] == cold.obligations_total
