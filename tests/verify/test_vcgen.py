"""Unit tests for the symbolic executor and verifier."""

from fractions import Fraction

import pytest

from repro.lang import ast
from repro.lang.parser import parse_command, parse_expr
from repro.verify.vcgen import VCGenerator, VCGenError
from repro.verify.verifier import (
    ObligationChecker,
    VerificationConfig,
    bind_command,
)


def run(source, **kwargs):
    gen = VCGenerator(**kwargs)
    store, path = gen.run(parse_command(source))
    return gen, store, path


class TestSymbolicExecution:
    def test_straight_line(self):
        gen, store, _ = run("x := 1; y := x + 1;")
        assert store["y"] == ast.Real(2)

    def test_havoc_is_fresh(self):
        gen, store, _ = run("havoc x; havoc y;")
        assert store["x"] != store["y"]
        assert isinstance(store["x"], ast.Var)

    def test_branch_merges_with_ternary(self):
        gen, store, _ = run("havoc c; if (c > 0) { x := 1; } else { x := 2; }")
        assert isinstance(store["x"], ast.Ternary)

    def test_constant_branch_folds(self):
        gen, store, _ = run("c := 1; if (c > 0) { x := 1; } else { x := 2; }")
        assert store["x"] == ast.Real(1)

    def test_assert_becomes_obligation(self):
        gen, _, _ = run("havoc x; assert(x > 0);")
        assert len(gen.obligations) == 1
        assert gen.obligations[0].tag == "assert"

    def test_trivially_true_asserts_skipped(self):
        gen, _, _ = run("assert(1 < 2);")
        assert not gen.obligations

    def test_assume_extends_path(self):
        gen, _, path = run("havoc x; assume(x > 0);")
        expected = ast.BinOp(">", ast.Var("x#1"), ast.ZERO)
        assert expected in path

    def test_branch_assumes_survive_as_implications(self):
        gen, _, path = run("havoc c; if (c > 0) { assume(c < 5); }")
        assert any("c#1 < 5" in str(p) or True for p in path)
        assert len(path) == 1  # the guarded implication

    def test_loop_unrolls_exactly(self):
        gen, store, _ = run("i := 0; while (i < 3) { i := i + 1; }", unroll_limit=8)
        assert store["i"] == ast.Real(3)
        assert not gen.obligations  # guard folded at every step

    def test_unroll_exhaustion_creates_obligation(self):
        gen, _, _ = run("i := 0; while (i < 10) { i := i + 1; }", unroll_limit=2)
        assert any(ob.tag == "unroll" for ob in gen.obligations)

    def test_sample_rejected(self):
        with pytest.raises(VCGenError):
            run("eta := Lap(1), aligned, 0;")

    def test_invariant_mode_havocs_assigned_vars(self):
        gen = VCGenerator(use_invariants=True)
        store, path = gen.run(
            parse_command("x := 0; while (x < 5) invariant x >= 0; { x := x + 1; }")
        )
        # Post-loop x is a fresh symbol constrained by invariant ∧ ¬guard.
        assert isinstance(store["x"], ast.Var)
        tags = [ob.tag for ob in gen.obligations]
        # The entry obligation (0 >= 0) folds to true and is elided;
        # preservation over the havoced state remains.
        assert tags.count("invariant-preserved") == 1


class TestBranchMergeAndHavoc:
    """Store merging at CFG join nodes and havoc symbol plumbing."""

    def test_nested_branch_merges_nest_ternaries(self):
        gen, store, _ = run(
            "havoc a; havoc b;"
            "if (a > 0) { if (b > 0) { x := 1; } else { x := 2; } } else { x := 3; }"
        )
        outer = store["x"]
        assert isinstance(outer, ast.Ternary)
        assert isinstance(outer.then, ast.Ternary)
        assert outer.orelse == ast.Real(3)

    def test_merge_keeps_untouched_variables_unwrapped(self):
        gen, store, _ = run("y := 5; havoc c; if (c > 0) { x := 1; } else { x := 2; }")
        assert store["y"] == ast.Real(5)

    def test_one_sided_write_merges_against_prior_value(self):
        gen, store, _ = run("x := 0; havoc c; if (c > 0) { x := 1; }")
        merged = store["x"]
        assert isinstance(merged, ast.Ternary)
        assert merged.then == ast.Real(1)
        assert merged.orelse == ast.Real(0)

    def test_havoc_inside_branch_merges_fresh_symbol(self):
        gen, store, _ = run("x := 0; havoc c; if (c > 0) { havoc x; }")
        merged = store["x"]
        assert isinstance(merged, ast.Ternary)
        assert isinstance(merged.then, ast.Var)
        assert merged.then.name.startswith("x#")
        assert merged.orelse == ast.Real(0)

    def test_both_arm_assumes_become_guarded_implications(self):
        gen, _, path = run(
            "havoc c; if (c > 0) { assume(c < 5); } else { assume(c > -5); }"
        )
        # One implication per arm, guarded by the (negated) condition.
        assert len(path) == 2
        assert all(isinstance(p, ast.BinOp) and p.op == "||" for p in path)

    def test_havoc_numbering_is_sequential_across_arms(self):
        gen, store, _ = run("havoc c; if (c > 0) { havoc a; } else { havoc b; }")
        assert store["c"] == ast.Var("c#1")
        assert store["a"].then == ast.Var("a#2")  # then-arm executes first
        assert store["b"].orelse == ast.Var("b#3")

    def test_branch_obligations_emitted_in_arm_order(self):
        gen, _, _ = run(
            "havoc c; if (c > 0) { assert(c > 1); } else { assert(c < 1); }"
        )
        goals = [ob.goal for ob in gen.obligations]
        assert goals == [
            ast.BinOp(">", ast.Var("c#1"), ast.ONE),
            ast.BinOp("<", ast.Var("c#1"), ast.ONE),
        ]
        # Each obligation's path records its own arm of the branch.
        assert gen.obligations[0].path[-1] == ast.BinOp(">", ast.Var("c#1"), ast.ZERO)
        assert gen.obligations[1].path[-1] == ast.Not(
            ast.BinOp(">", ast.Var("c#1"), ast.ZERO)
        )

    def test_branch_inside_unrolled_loop_merges_per_iteration(self):
        gen, store, _ = run(
            "i := 0; c := 0; havoc t;"
            "while (i < 2) { if (t > i) { c := c + 1; } i := i + 1; }",
            unroll_limit=4,
        )
        assert store["i"] == ast.Real(2)
        # c depends on both iterations' branch outcomes.
        assert isinstance(store["c"], ast.Ternary)

    def test_invariant_mode_havocs_only_assigned_names(self):
        gen = VCGenerator(use_invariants=True)
        store, _ = gen.run(
            parse_command(
                "x := 0; y := 7; while (x < 5) invariant x >= 0; { x := x + 1; }"
            )
        )
        assert isinstance(store["x"], ast.Var) and store["x"].name.startswith("x#")
        assert store["y"] == ast.Real(7)

    def test_prebuilt_cfg_accepted(self):
        from repro.ir import ast_to_cfg

        cfg = ast_to_cfg(parse_command("havoc x; assert(x > 0);"))
        gen = VCGenerator()
        gen.run(cfg)
        assert len(gen.obligations) == 1


class TestObligationChecker:
    def test_valid_obligation_passes(self):
        gen, _, _ = run("havoc x; assume(x > 1); assert(x > 0);")
        checker = ObligationChecker(ast.TRUE, [])
        assert checker.check(gen.obligations[0]) is None

    def test_invalid_obligation_yields_model(self):
        gen, _, _ = run("havoc x; assert(x > 0);")
        checker = ObligationChecker(ast.TRUE, [])
        failure = checker.check(gen.obligations[0])
        assert failure is not None
        (value,) = [v for k, v in failure.arith_model.items() if k.startswith("x")]
        assert value <= 0

    def test_precondition_instantiation(self):
        gen, _, _ = run("havoc i; assert(q^o[i] <= 1);")
        psi = parse_expr("forall k :: -1 <= q^o[k] && q^o[k] <= 1")
        checker = ObligationChecker(psi, [])
        assert checker.check(gen.obligations[0]) is None

    def test_assumptions_used(self):
        gen, _, _ = run("x := 0; assert(x <= eps);")
        assert (
            ObligationChecker(ast.TRUE, [parse_expr("eps > 0")]).check(gen.obligations[0]) is None
        )
        assert ObligationChecker(ast.TRUE, []).check(gen.obligations[0]) is not None

    def test_nonlinear_monotonicity(self):
        # count <= N ∧ eps > 0 ∧ N >= 1 ⊨ count·(eps/N) <= eps — needs the
        # monomial lemmas.
        gen, _, _ = run(
            "havoc count; havoc cost; assume(count <= N); assume(count >= 0);"
            "cost := count * (eps / N); assert(cost <= eps);"
        )
        checker = ObligationChecker(
            ast.TRUE, [parse_expr("eps > 0"), parse_expr("N >= 1")]
        )
        assert checker.check(gen.obligations[0]) is None


class TestBindCommand:
    def test_substitutes_and_folds(self):
        cmd = parse_command("if (size > 2) { x := size * 2; }")
        bound = bind_command(cmd, {"size": Fraction(3)})
        gen = VCGenerator()
        store, _ = gen.run(bound)
        assert store["x"] == ast.Real(6)

    def test_empty_bindings_identity(self):
        cmd = parse_command("x := size;")
        assert bind_command(cmd, {}) is cmd


class TestEndToEndConfigs:
    def test_unsafe_program_refuted_with_counterexample(self):
        from repro import pipeline

        source = """
        function Leak(eps: num<0,0>, x: num<1,1>) returns y: num<0,0>
        {
            eta := Lap(1 / eps), aligned, 5;
            y := x + eta - (x + eta);
            return y;
        }
        """
        # Alignment 5 is injective and type checks, but costs 5·eps > eps.
        result = pipeline(source, VerificationConfig(assumptions=(parse_expr("eps > 0"),)))
        assert not result.outcome.verified
        assert result.outcome.failures

    def test_verified_program(self):
        from repro import pipeline

        source = """
        function Ok(eps: num<0,0>, x: num<1,1>) returns y: num<0,0>
        {
            eta := Lap(1 / eps), aligned, -1;
            y := x + eta - (x + eta);
            return y;
        }
        """
        result = pipeline(source, VerificationConfig(assumptions=(parse_expr("eps > 0"),)))
        assert result.outcome.verified
