"""Unit tests for the symbolic executor and verifier."""

from fractions import Fraction

import pytest

from repro.lang import ast
from repro.lang.parser import parse_command, parse_expr
from repro.verify.vcgen import VCGenerator, VCGenError
from repro.verify.verifier import (
    ObligationChecker,
    VerificationConfig,
    bind_command,
    verify_target,
)


def run(source, **kwargs):
    gen = VCGenerator(**kwargs)
    store, path = gen.run(parse_command(source))
    return gen, store, path


class TestSymbolicExecution:
    def test_straight_line(self):
        gen, store, _ = run("x := 1; y := x + 1;")
        assert store["y"] == ast.Real(2)

    def test_havoc_is_fresh(self):
        gen, store, _ = run("havoc x; havoc y;")
        assert store["x"] != store["y"]
        assert isinstance(store["x"], ast.Var)

    def test_branch_merges_with_ternary(self):
        gen, store, _ = run("havoc c; if (c > 0) { x := 1; } else { x := 2; }")
        assert isinstance(store["x"], ast.Ternary)

    def test_constant_branch_folds(self):
        gen, store, _ = run("c := 1; if (c > 0) { x := 1; } else { x := 2; }")
        assert store["x"] == ast.Real(1)

    def test_assert_becomes_obligation(self):
        gen, _, _ = run("havoc x; assert(x > 0);")
        assert len(gen.obligations) == 1
        assert gen.obligations[0].tag == "assert"

    def test_trivially_true_asserts_skipped(self):
        gen, _, _ = run("assert(1 < 2);")
        assert not gen.obligations

    def test_assume_extends_path(self):
        gen, _, path = run("havoc x; assume(x > 0);")
        expected = ast.BinOp(">", ast.Var("x#1"), ast.ZERO)
        assert expected in path

    def test_branch_assumes_survive_as_implications(self):
        gen, _, path = run("havoc c; if (c > 0) { assume(c < 5); }")
        assert any("c#1 < 5" in str(p) or True for p in path)
        assert len(path) == 1  # the guarded implication

    def test_loop_unrolls_exactly(self):
        gen, store, _ = run("i := 0; while (i < 3) { i := i + 1; }", unroll_limit=8)
        assert store["i"] == ast.Real(3)
        assert not gen.obligations  # guard folded at every step

    def test_unroll_exhaustion_creates_obligation(self):
        gen, _, _ = run("i := 0; while (i < 10) { i := i + 1; }", unroll_limit=2)
        assert any(ob.tag == "unroll" for ob in gen.obligations)

    def test_sample_rejected(self):
        with pytest.raises(VCGenError):
            run("eta := Lap(1), aligned, 0;")

    def test_invariant_mode_havocs_assigned_vars(self):
        gen = VCGenerator(use_invariants=True)
        store, path = gen.run(
            parse_command("x := 0; while (x < 5) invariant x >= 0; { x := x + 1; }")
        )
        # Post-loop x is a fresh symbol constrained by invariant ∧ ¬guard.
        assert isinstance(store["x"], ast.Var)
        tags = [ob.tag for ob in gen.obligations]
        # The entry obligation (0 >= 0) folds to true and is elided;
        # preservation over the havoced state remains.
        assert tags.count("invariant-preserved") == 1


class TestObligationChecker:
    def test_valid_obligation_passes(self):
        gen, _, _ = run("havoc x; assume(x > 1); assert(x > 0);")
        checker = ObligationChecker(ast.TRUE, [])
        assert checker.check(gen.obligations[0]) is None

    def test_invalid_obligation_yields_model(self):
        gen, _, _ = run("havoc x; assert(x > 0);")
        checker = ObligationChecker(ast.TRUE, [])
        failure = checker.check(gen.obligations[0])
        assert failure is not None
        (value,) = [v for k, v in failure.arith_model.items() if k.startswith("x")]
        assert value <= 0

    def test_precondition_instantiation(self):
        gen, _, _ = run("havoc i; assert(q^o[i] <= 1);")
        psi = parse_expr("forall k :: -1 <= q^o[k] && q^o[k] <= 1")
        checker = ObligationChecker(psi, [])
        assert checker.check(gen.obligations[0]) is None

    def test_assumptions_used(self):
        gen, _, _ = run("x := 0; assert(x <= eps);")
        assert (
            ObligationChecker(ast.TRUE, [parse_expr("eps > 0")]).check(gen.obligations[0]) is None
        )
        assert ObligationChecker(ast.TRUE, []).check(gen.obligations[0]) is not None

    def test_nonlinear_monotonicity(self):
        # count <= N ∧ eps > 0 ∧ N >= 1 ⊨ count·(eps/N) <= eps — needs the
        # monomial lemmas.
        gen, _, _ = run(
            "havoc count; havoc cost; assume(count <= N); assume(count >= 0);"
            "cost := count * (eps / N); assert(cost <= eps);"
        )
        checker = ObligationChecker(
            ast.TRUE, [parse_expr("eps > 0"), parse_expr("N >= 1")]
        )
        assert checker.check(gen.obligations[0]) is None


class TestBindCommand:
    def test_substitutes_and_folds(self):
        cmd = parse_command("if (size > 2) { x := size * 2; }")
        bound = bind_command(cmd, {"size": Fraction(3)})
        gen = VCGenerator()
        store, _ = gen.run(bound)
        assert store["x"] == ast.Real(6)

    def test_empty_bindings_identity(self):
        cmd = parse_command("x := size;")
        assert bind_command(cmd, {}) is cmd


class TestEndToEndConfigs:
    def test_unsafe_program_refuted_with_counterexample(self):
        from repro import pipeline

        source = """
        function Leak(eps: num<0,0>, x: num<1,1>) returns y: num<0,0>
        {
            eta := Lap(1 / eps), aligned, 5;
            y := x + eta - (x + eta);
            return y;
        }
        """
        # Alignment 5 is injective and type checks, but costs 5·eps > eps.
        result = pipeline(source, VerificationConfig(assumptions=(parse_expr("eps > 0"),)))
        assert not result.outcome.verified
        assert result.outcome.failures

    def test_verified_program(self):
        from repro import pipeline

        source = """
        function Ok(eps: num<0,0>, x: num<1,1>) returns y: num<0,0>
        {
            eta := Lap(1 / eps), aligned, -1;
            y := x + eta - (x + eta);
            return y;
        }
        """
        result = pipeline(source, VerificationConfig(assumptions=(parse_expr("eps > 0"),)))
        assert result.outcome.verified
