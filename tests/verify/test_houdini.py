"""Unit tests for Houdini: loop peeling, round convergence, and the
equivalence of the discharge strategies (serial / incremental / parallel)."""

import pytest

from repro.algorithms import get
from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.target.transform import COST_VAR, TargetProgram
from repro.verify.houdini import default_candidates, infer_invariants, peel_loops
from repro.verify.verifier import VerificationConfig, verify_target


def _loop(cond="i < 3", body="x"):
    return ast.While(parse_expr(cond), ast.Assign(body, parse_expr(f"{body} + 1")), ())


class TestPeelLoops:
    def test_zero_peels_is_identity(self):
        loop = _loop()
        assert peel_loops(loop, 0) is loop

    def test_one_peel_guards_first_iteration(self):
        loop = _loop()
        peeled = peel_loops(loop, 1)
        assert isinstance(peeled, ast.If)
        assert peeled.cond == loop.cond
        # The guarded body runs the loop body once, then the loop.
        assert isinstance(peeled.then, ast.Seq)
        assert peeled.then.commands[0] == loop.body
        assert peeled.then.commands[-1] is loop

    def test_two_peels_nest(self):
        peeled = peel_loops(_loop(), 2)
        assert isinstance(peeled, ast.If)
        inner = peeled.then.commands[-1]
        assert isinstance(inner, ast.If)
        assert isinstance(inner.then.commands[-1], ast.While)

    def test_peeling_recurses_into_seq_and_if(self):
        prog = ast.seq(
            ast.Assign("x", parse_expr("0")),
            ast.If(parse_expr("x < 1"), _loop(), ast.Skip()),
        )
        peeled = peel_loops(prog, 1)
        assert isinstance(peeled.commands[1].then, ast.If)

    def test_non_loop_commands_unchanged(self):
        cmd = ast.Assign("x", parse_expr("1"))
        assert peel_loops(cmd, 3) is cmd


def _bare_noisy_max() -> TargetProgram:
    target = get("noisy_max").target()

    def strip(cmd):
        if isinstance(cmd, ast.Seq):
            return ast.seq(*[strip(c) for c in cmd.commands])
        if isinstance(cmd, ast.If):
            return ast.If(cmd.cond, strip(cmd.then), strip(cmd.orelse))
        if isinstance(cmd, ast.While):
            return ast.While(cmd.cond, strip(cmd.body), ())
        return cmd

    return TargetProgram(
        target.function, strip(target.body), target.cost_bound, target.aligned_only
    )


class TestHoudiniRounds:
    def test_false_candidates_pruned_and_rounds_converge(self):
        # "i <= 0" holds on entry but is destroyed by the first
        # iteration; Houdini must drop it and keep the true facts.
        bare = _bare_noisy_max()
        config = VerificationConfig(
            mode="invariant", assumptions=get("noisy_max").assumption_exprs()
        )
        veps = ast.Var(COST_VAR)
        candidates = [
            ast.BinOp(">=", veps, ast.ZERO),
            ast.BinOp(">=", ast.Var("i"), ast.ZERO),
            ast.BinOp("<=", ast.Var("i"), ast.ZERO),
        ]
        result = infer_invariants(bare, config, candidates=candidates, peel=1)
        assert result.candidates_tried == 3
        assert 1 <= result.rounds < 64
        assert ast.BinOp("<=", ast.Var("i"), ast.ZERO) not in result.invariants
        assert ast.BinOp(">=", ast.Var("i"), ast.ZERO) in result.invariants

    def test_default_pool_verifies_noisy_max(self):
        bare = _bare_noisy_max()
        config = VerificationConfig(
            mode="invariant", assumptions=get("noisy_max").assumption_exprs()
        )
        result = infer_invariants(bare, config, peel=1)
        assert result.outcome.verified, result.outcome.describe()
        assert result.invariants
        # The whole run's accounting is exposed, not just the final pass.
        assert result.solver_stats["queries"] >= result.outcome.solver_queries

    def test_candidate_pool_is_deduplicated(self):
        pool = default_candidates(_bare_noisy_max())
        assert len(pool) == len(set(pool))


class TestDischargeStrategyEquivalence:
    """Serial one-shot, incremental grouped, and parallel discharge must
    return identical verdicts and identical failing obligations."""

    @pytest.mark.parametrize("name", ["bad_svt_no_budget", "bad_svt_no_threshold_noise"])
    def test_buggy_refutations_agree(self, name):
        spec = get(name)
        outcomes = {}
        for label, kwargs in {
            "serial": dict(incremental=False),
            "incremental": dict(incremental=True),
            "parallel": dict(incremental=True, jobs=4),
        }.items():
            config = VerificationConfig(
                mode="unroll",
                bindings=dict(spec.fixed_bindings),
                assumptions=spec.assumption_exprs(),
                unroll_limit=16,
                **kwargs,
            )
            outcomes[label] = verify_target(spec.target(), config)
        failed = {
            label: sorted(f.obligation.describe() for f in outcome.failures)
            for label, outcome in outcomes.items()
        }
        assert failed["serial"] == failed["incremental"] == failed["parallel"]
        assert all(not outcome.verified for outcome in outcomes.values())
        for outcome in outcomes.values():
            assert all(f.arith_model is not None for f in outcome.failures)

    def test_correct_algorithm_agrees(self):
        spec = get("svt")
        for kwargs in (dict(incremental=False), dict(incremental=True, jobs=2)):
            config = VerificationConfig(
                mode="unroll",
                bindings=dict(spec.fixed_bindings),
                assumptions=spec.assumption_exprs(),
                unroll_limit=16,
                **kwargs,
            )
            outcome = verify_target(spec.target(), config)
            assert outcome.verified, outcome.describe()

    def test_refuted_check_is_single_solve(self):
        spec = get("bad_svt_no_budget")
        config = VerificationConfig(
            mode="unroll",
            bindings=dict(spec.fixed_bindings),
            assumptions=spec.assumption_exprs(),
            unroll_limit=16,
        )
        outcome = verify_target(spec.target(), config)
        assert not outcome.verified
        # Every failure got its model from the refuting solve: solve
        # calls never exceed queries (the pre-PR code solved twice).
        assert outcome.solve_calls <= outcome.solver_queries
