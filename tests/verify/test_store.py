"""The persistent obligation store: round trips, isolation, resilience.

The store's contract (see ``docs/cache.md``): a warm rerun of an
unchanged program performs **zero** solves; every failure mode —
corrupt file, foreign schema version, undecodable row — degrades to a
counted miss, never a crash or a wrong verdict.
"""

import dataclasses
import json
import os
import re
import sqlite3

import pytest

from repro.algorithms import get
from repro.pipeline import spec_config
from repro.verify.store import (
    SCHEMA_VERSION,
    STORE_ENV_VAR,
    ObligationStore,
    StoredVerdict,
    default_store_path,
    premise_fingerprint,
    resolve_store,
)
from repro.verify.verifier import verify_target


def _config(base, **kwargs):
    return dataclasses.replace(base, **kwargs)


def _run(spec_name, store, **overrides):
    spec = get(spec_name)
    return verify_target(
        spec.target(), _config(spec_config(spec), store=store, **overrides)
    )


class TestRoundTrip:
    def test_warm_rerun_solves_nothing(self, tmp_path):
        path = os.fspath(tmp_path / "store.sqlite")
        cold = _run("svt", path)
        assert cold.verified is True
        assert cold.store["misses"] == cold.obligations_total
        assert cold.store["writes"] == cold.obligations_total
        assert cold.store["entries"] == cold.obligations_total
        assert cold.solve_calls > 0

        warm = _run("svt", path)
        assert warm.verified is True
        assert warm.oids == cold.oids
        assert warm.solve_calls == 0
        assert warm.solver_queries == 0  # hits never reach the plan
        assert warm.units == 0
        assert warm.store["hits"] == cold.obligations_total
        assert warm.store["misses"] == 0
        assert warm.store["writes"] == 0

    def test_refuted_program_round_trips_countermodels(self, tmp_path):
        path = os.fspath(tmp_path / "store.sqlite")
        cold = _run("bad_svt_leaks_value", path)
        assert cold.verified is False

        warm = _run("bad_svt_leaks_value", path)
        assert warm.verified is False
        assert warm.solve_calls == 0
        assert [f.obligation.oid for f in warm.failures] == [
            f.obligation.oid for f in cold.failures
        ]
        # Countermodels survive the JSON round trip exactly (Fractions).
        for warm_f, cold_f in zip(warm.failures, cold.failures):
            assert warm_f.arith_model == cold_f.arith_model
            assert warm_f.bool_model == cold_f.bool_model

    def test_store_disabled_by_default(self):
        spec = get("svt")
        outcome = verify_target(spec.target(), spec_config(spec))
        assert outcome.store is None
        assert "store" not in outcome.solver_stats()


class TestInvalidation:
    def test_different_premise_regime_misses(self, tmp_path):
        """The fingerprint keys on the premise regime: changing the
        lemma policy must re-prove, not reuse."""
        path = os.fspath(tmp_path / "store.sqlite")
        cold = _run("svt", path)
        shifted = _run("svt", path, use_lemmas=False)
        assert shifted.store["hits"] == 0
        assert shifted.store["misses"] == shifted.obligations_total
        assert cold.verified

    def test_fingerprint_is_order_insensitive_and_lemma_sensitive(self):
        from repro.lang.parser import parse_expr

        psi = parse_expr("eps > 0")
        a = parse_expr("N >= 1")
        b = parse_expr("eps <= 1")
        assert premise_fingerprint(psi, [a, b], True) == premise_fingerprint(
            psi, [b, a], True
        )
        assert premise_fingerprint(psi, [a, b], True) != premise_fingerprint(
            psi, [a, b], False
        )

    def test_early_exit_runs_record_nothing(self, tmp_path):
        path = os.fspath(tmp_path / "store.sqlite")
        outcome = _run("bad_svt_no_budget", path, fail_fast=True)
        assert outcome.verified is False
        if outcome.early_exit:
            assert outcome.store["writes"] == 0
            assert ObligationStore(path).entry_count() == 0


class TestResilience:
    def test_garbage_file_is_recreated(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a sqlite database at all\n")
        store = ObligationStore(os.fspath(path))
        assert store.lookup("oid", "fp") is None
        assert store.counters.invalid >= 1
        # And the recreated store is fully serviceable.
        assert store.record_many("fp", [("oid", "t", "r", True, "unsat", None, None)]) == 1
        assert store.lookup("oid", "fp") == StoredVerdict(True, "unsat")

    def test_schema_version_mismatch_clears(self, tmp_path):
        path = os.fspath(tmp_path / "store.sqlite")
        first = ObligationStore(path)
        first.record_many("fp", [("oid", "t", "r", True, "unsat", None, None)])
        first.close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1:d}")
        conn.commit()
        conn.close()

        reopened = ObligationStore(path)
        assert reopened.lookup("oid", "fp") is None
        assert reopened.counters.invalid >= 1
        assert reopened.entry_count() == 0

    def test_undecodable_row_is_deleted_and_re_solved(self, tmp_path):
        path = os.fspath(tmp_path / "store.sqlite")
        cold = _run("svt", path)
        assert cold.solve_calls > 0
        # Corrupt every stored model/status in place.
        conn = sqlite3.connect(path)
        conn.execute("UPDATE obligations SET status = 'maybe'")
        conn.commit()
        conn.close()

        warm = _run("svt", path)
        assert warm.verified is True
        assert warm.store["hits"] == 0
        assert warm.store["invalid"] == warm.obligations_total
        # The damaged rows were replaced by the rerun's fresh verdicts.
        third = _run("svt", path)
        assert third.solve_calls == 0
        assert third.store["hits"] == third.obligations_total

    def test_valid_verdict_with_non_unsat_status_is_rejected(self, tmp_path):
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        store.record_many("fp", [("oid", "t", "r", True, "unsat", None, None)])
        conn = sqlite3.connect(store.path)
        conn.execute("UPDATE obligations SET status = 'sat'")
        conn.commit()
        conn.close()
        store.close()
        assert store.lookup("oid", "fp") is None
        assert store.counters.invalid == 1


class TestMaintenance:
    def _seed(self, store, count):
        store.record_many(
            "fp",
            [(f"oid{i}", "t", "r", i % 2 == 0, "unsat" if i % 2 == 0 else "unknown",
              None, None)
             for i in range(count)],
        )

    def test_gc_by_entry_count(self, tmp_path):
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        self._seed(store, 10)
        assert store.entry_count() == 10
        assert store.gc(max_entries=4) == 6
        assert store.entry_count() == 4

    def test_gc_by_age(self, tmp_path):
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        self._seed(store, 5)
        assert store.gc(max_age_days=0.0) == 5
        assert store.entry_count() == 0
        assert store.gc(max_age_days=1000.0) == 0

    def test_clear_and_breakdown(self, tmp_path):
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        self._seed(store, 10)
        assert store.breakdown() == {"valid": 5, "refuted": 5}
        assert store.clear() == 10
        assert store.entry_count() == 0
        assert store.breakdown() == {"valid": 0, "refuted": 0}

    def test_stats_shape(self, tmp_path):
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        self._seed(store, 2)
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["schema_version"] == SCHEMA_VERSION
        assert stats["writes"] == 2
        assert stats["bytes"] > 0
        assert stats["path"] == store.path


class TestConfiguration:
    def test_default_path_respects_xdg(self, monkeypatch, tmp_path):
        monkeypatch.setenv("XDG_CACHE_HOME", os.fspath(tmp_path))
        assert default_store_path() == os.fspath(
            tmp_path / "repro" / "obligations.sqlite"
        )
        monkeypatch.delenv("XDG_CACHE_HOME")
        assert default_store_path().endswith(
            os.path.join(".cache", "repro", "obligations.sqlite")
        )

    def test_resolve_store(self, tmp_path):
        assert resolve_store(None) is None
        ready = ObligationStore(os.fspath(tmp_path / "s.sqlite"))
        assert resolve_store(ready) is ready
        resolved = resolve_store(os.fspath(tmp_path / "t.sqlite"))
        assert isinstance(resolved, ObligationStore)
        assert resolved.path == os.fspath(tmp_path / "t.sqlite")

    def test_env_var_enables_store_for_cli_configs(self, monkeypatch, tmp_path):
        import argparse

        from repro.cli import _config_from_args

        path = os.fspath(tmp_path / "env.sqlite")
        monkeypatch.setenv(STORE_ENV_VAR, path)
        config = _config_from_args(argparse.Namespace())
        assert config.store == path
        # An explicit flag wins over the environment.
        flagged = _config_from_args(argparse.Namespace(store="/elsewhere.sqlite"))
        assert flagged.store == "/elsewhere.sqlite"
        monkeypatch.delenv(STORE_ENV_VAR)
        assert _config_from_args(argparse.Namespace()).store is None

    def test_houdini_callbacks_bypass_store(self, tmp_path):
        """Houdini-style runs (skip/on_failure closures) judge candidate
        invariants, not the program — their verdicts must never be
        persisted or served."""
        from repro.verify.verifier import iter_obligations, prepare_generator

        spec = get("svt")
        path = os.fspath(tmp_path / "store.sqlite")
        config = _config(spec_config(spec), store=path)
        target = spec.target()
        _, checker = prepare_generator(target, config)
        failures = checker.discharge_stream(
            iter_obligations(target, config), skip=lambda ob: False
        )
        assert failures == []
        assert checker.store.snapshot() == {
            "hits": 0, "misses": 0, "writes": 0, "invalid": 0,
            "busy_retries": 0, "memory_writes": 0,
            "validated_hits": 0, "witness_rejects": 0,
        }
        assert ObligationStore(path).entry_count() == 0


class TestCacheCLI:
    def test_stats_gc_clear_path(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = os.fspath(tmp_path / "store.sqlite")
        store = ObligationStore(path)
        store.record_many(
            "fp", [(f"oid{i}", "t", "r", True, "unsat", None, None) for i in range(6)]
        )
        store.close()

        assert cli_main(["cache", "path", "--store", path]) == 0
        assert capsys.readouterr().out.strip() == path

        assert cli_main(["cache", "stats", "--store", path, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 6
        assert stats["breakdown"] == {"valid": 6, "refuted": 0}

        assert cli_main(["cache", "gc", "--store", path, "--max-entries", "2"]) == 0
        assert "removed 4" in capsys.readouterr().out

        assert cli_main(["cache", "clear", "--store", path]) == 0
        assert "cleared 2" in capsys.readouterr().out
        assert ObligationStore(path).entry_count() == 0

    def test_gc_without_bounds_is_an_error(self, tmp_path):
        from repro.cli import main as cli_main

        path = os.fspath(tmp_path / "store.sqlite")
        with pytest.raises(SystemExit):
            cli_main(["cache", "gc", "--store", path])

    def test_verify_with_store_prints_store_line(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.lang.pretty import pretty_expr

        path = os.fspath(tmp_path / "store.sqlite")
        spec = get("svt")
        regime = spec_config(spec)
        source = tmp_path / "svt.sdp"
        source.write_text(spec.source)
        args = ["verify", os.fspath(source), "--store", path, "--solver-stats",
                "--mode", regime.mode, "--unroll", str(regime.unroll_limit)]
        for name, value in sorted(regime.bindings.items()):
            args += ["--bind", f"{name}={value}"]
        for assumption in regime.assumptions:
            args += ["--assume", pretty_expr(assumption)]
        assert cli_main(args) == 0
        cold_out = capsys.readouterr().out
        assert "store: 0 hits" in cold_out
        assert cli_main(args) == 0
        warm_out = capsys.readouterr().out
        hits = int(re.search(r"store: (\d+) hits, (\d+) misses", warm_out).group(1))
        misses = int(re.search(r"store: (\d+) hits, (\d+) misses", warm_out).group(2))
        assert hits > 0 and misses == 0
