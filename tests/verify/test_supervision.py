"""Worker supervision: the process backend under injected faults.

The contract under test is the strong form of the determinism property:
verdicts, obligation ids, failure lists and merged solver counters stay
**byte-identical** to :class:`SerialBackend` even when workers are
killed mid-unit, exceed their solve deadline, or raise — because every
recovery path funnels into the same serial replay that accounts
fault-free runs.
"""

import dataclasses
import threading

import pytest

from repro import faults
from repro.algorithms import all_specs, get
from repro.pipeline import spec_config
from repro.verify.discharge import (
    DEADLINE_ENV_VAR,
    DischargeCancelled,
    DischargeEngine,
    DischargeWorkerError,
    EarlyExit,
    ObligationDischarged,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.solver.context import QueryCache
from repro.verify.verifier import verify_target


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.install(None)
    faults.reset()


def _config(base, **kwargs):
    return dataclasses.replace(base, **kwargs)


def _signature(outcome):
    """Everything the determinism contract pins, in one comparable value."""
    return (
        outcome.verified,
        outcome.obligations_total,
        tuple(outcome.oids or ()),
        tuple(sorted(f.obligation.oid for f in outcome.failures)),
        tuple(
            (f.obligation.oid, f.arith_model, f.bool_model)
            for f in outcome.failures
        ),
        outcome.solver_queries,
        outcome.cache_hits,
        outcome.solve_calls,
        outcome.context_pushes,
        outcome.context_pops,
        outcome.units,
    )


class TestKillRecovery:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_registry_kills_identical_to_serial(self, spec):
        """The acceptance property: kill the workers solving units 2 and
        4 — verdicts, failure lists and merged counters must not move."""
        config = spec_config(spec)
        reference = _signature(
            verify_target(spec.target(), _config(config, backend="serial"))
        )
        faults.install("worker-kill@2,worker-kill@4")
        for jobs in (2, 4):
            outcome = verify_target(
                spec.target(), _config(config, backend="process", jobs=jobs)
            )
            assert _signature(outcome) == reference, (spec.name, jobs)

    def test_kill_every_worker_still_byte_identical(self):
        spec = get("svt")
        config = spec_config(spec)
        reference = _signature(
            verify_target(spec.target(), _config(config, backend="serial"))
        )
        faults.install("worker-kill@*")
        outcome = verify_target(
            spec.target(), _config(config, backend="process", jobs=2)
        )
        assert _signature(outcome) == reference
        recovery = outcome.recovery
        assert recovery is not None
        assert 1 <= recovery["pool_restarts"] <= 2
        assert recovery["recovered_units"], "units must be re-solved serially"
        assert any("worker crashed" in i for i in recovery["incidents"])
        assert outcome.solver_stats()["recovery"] == recovery

    def test_restart_budget_bounds_respawns(self):
        spec = get("svt")
        config = spec_config(spec)
        reference = _signature(
            verify_target(spec.target(), _config(config, backend="serial"))
        )
        faults.install("worker-kill@*")
        backend = ProcessPoolBackend(jobs=2, max_restarts=1)
        outcome = verify_target(
            spec.target(), _config(config, backend=backend)
        )
        assert _signature(outcome) == reference
        assert outcome.recovery["pool_restarts"] <= 1

    def test_clean_run_reports_no_recovery(self):
        spec = get("svt")
        outcome = verify_target(
            spec.target(), _config(spec_config(spec), backend="process", jobs=2)
        )
        assert outcome.recovery is None
        assert "recovery" not in outcome.solver_stats()

    def test_fail_fast_identical_under_kills(self):
        """Fail-fast composes with recovery: replays run in plan order,
        so the stopping point is the serial one even when every worker
        dies."""
        spec = get("bad_svt_leaks_value")
        config = spec_config(spec)
        serial = verify_target(
            spec.target(), _config(config, backend="serial", fail_fast=True)
        )
        assert serial.verified is False and serial.early_exit

        def discharge_signature(outcome):
            verified, total, oids, *rest = _signature(outcome)
            return (verified, *rest)

        faults.install("worker-kill@*")
        outcome = verify_target(
            spec.target(),
            _config(config, backend="process", jobs=2, fail_fast=True),
        )
        assert discharge_signature(outcome) == discharge_signature(serial)
        assert outcome.early_exit

    def test_cancellation_mid_recovery(self):
        """A cancel observed while killed units are being re-solved
        serially stops at the next boundary and leaves the shared cache
        serviceable — recovery must not mask cancellation."""
        spec = get("svt")
        config = spec_config(spec)
        cache = QueryCache()
        cancel = threading.Event()
        events = []

        def sink(event):
            events.append(event)
            discharged = sum(
                1 for e in events if isinstance(e, ObligationDischarged)
            )
            if discharged >= 3:
                cancel.set()

        faults.install("worker-kill@*")
        with pytest.raises(DischargeCancelled):
            verify_target(
                spec.target(),
                _config(config, backend="process", jobs=2, cancel_event=cancel),
                cache=cache,
                on_event=sink,
            )
        assert cache.stats()["pending"] == 0
        exits = [e for e in events if isinstance(e, EarlyExit)]
        assert len(exits) == 1 and exits[0].reason == "cancelled"

        faults.install(None)
        outcome = verify_target(spec.target(), config, cache=cache)
        assert outcome.verified is True
        assert cache.stats()["pending"] == 0


class TestSolveFailures:
    def test_injected_failure_retries_then_recovers(self):
        """A recoverable worker failure gets one retry; since the
        directive fires on every attempt, the unit falls through to the
        serial path — counters still identical."""
        spec = get("svt")
        config = spec_config(spec)
        reference = _signature(
            verify_target(spec.target(), _config(config, backend="serial"))
        )
        faults.install("solve-fail@1")
        outcome = verify_target(
            spec.target(), _config(config, backend="process", jobs=2)
        )
        assert _signature(outcome) == reference
        recovery = outcome.recovery
        assert recovery["retries"] >= 1
        assert any("worker failure" in i for i in recovery["incidents"])

    def test_fatal_worker_error_is_wrapped_with_unit_and_oids(self):
        spec = get("svt")
        config = spec_config(spec)
        faults.install("solve-fail@0:fatal")
        with pytest.raises(DischargeWorkerError) as excinfo:
            verify_target(
                spec.target(), _config(config, backend="process", jobs=2)
            )
        err = excinfo.value
        assert err.unit.startswith("u000")
        assert err.oids, "the failing unit's obligations must be named"
        message = str(err)
        assert err.unit in message
        assert all(oid in message for oid in err.oids)

    def test_threaded_worker_error_is_wrapped(self, monkeypatch):
        spec = get("svt")
        config = spec_config(spec)
        original = DischargeEngine.discharge_unit

        def failing(self, unit, *args, **kwargs):
            if unit.index == 1:
                raise RuntimeError("injected thread failure")
            return original(self, unit, *args, **kwargs)

        monkeypatch.setattr(DischargeEngine, "discharge_unit", failing)
        with pytest.raises(DischargeWorkerError) as excinfo:
            verify_target(
                spec.target(), _config(config, backend="threaded", jobs=2)
            )
        assert excinfo.value.unit.startswith("u001")
        assert "injected thread failure" in str(excinfo.value)


class TestDeadlines:
    def test_deadline_recovers_through_serial(self):
        """A unit that blows its solve deadline twice (the directive
        delays every attempt) is re-solved serially — byte-identical."""
        spec = get("svt")
        config = spec_config(spec)
        reference = _signature(
            verify_target(spec.target(), _config(config, backend="serial"))
        )
        faults.install("solve-delay@1:1.0")
        backend = ProcessPoolBackend(jobs=2, deadline=0.2)
        outcome = verify_target(spec.target(), _config(config, backend=backend))
        assert _signature(outcome) == reference
        recovery = outcome.recovery
        assert recovery["retries"] >= 1
        assert any("deadline exceeded" in i for i in recovery["incidents"])

    def test_env_var_sets_the_deadline(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV_VAR, "2.5")
        backend = resolve_backend(choice="process")
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.deadline == 2.5
        monkeypatch.setenv(DEADLINE_ENV_VAR, "0")
        assert resolve_backend(choice="process").deadline is None
        monkeypatch.delenv(DEADLINE_ENV_VAR)
        assert resolve_backend(choice="process").deadline is None
