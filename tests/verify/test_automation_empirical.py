"""Tests for annotation inference (Section 6.4), the empirical estimator
and the CLI."""



from repro.algorithms import get
from repro.automation.inference import (
    branch_conditions,
    candidate_alignments,
    candidate_selectors,
    infer_annotations,
)
from repro.empirical import estimate_epsilon_lower_bound
from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.verify.verifier import VerificationConfig


class TestCandidatePools:
    def test_branch_conditions_of_noisy_max(self):
        conditions = branch_conditions(get("noisy_max").function().body)
        assert parse_expr("q[i] + eta > bq || i == 0") in conditions

    def test_selector_pool_contains_paper_annotation(self):
        conditions = [parse_expr("w > 0")]
        pool = candidate_selectors(conditions)
        paper = ast.SelectCond(conditions[0], ast.SELECT_SHADOW, ast.SELECT_ALIGNED)
        assert paper in pool
        assert ast.SELECT_ALIGNED in pool

    def test_alignment_pool_contains_guarded_two(self):
        conditions = [parse_expr("w > 0")]
        pool = candidate_alignments(conditions)
        assert ast.Ternary(conditions[0], ast.Real(2), ast.ZERO) in pool


class TestInference:
    def test_discovers_noisy_max_annotation(self):
        """Section 6.4's claim: the heuristics rediscover Ω ? † : ° with
        Ω ? 2 : 0 for Report Noisy Max (here: some verified annotation)."""
        # size = 3 matters: at size <= 2 the aligned-only annotation
        # `-q^o[i]` is genuinely sufficient (cost size*eps/2 <= eps), so
        # only from 3 queries on is the shadow execution forced.
        spec = get("noisy_max")
        config = VerificationConfig(
            mode="unroll",
            bindings={"size": 3},
            assumptions=spec.assumption_exprs(),
            unroll_limit=5,
            collect_models=False,
        )
        result = infer_annotations(spec.function(), config)
        assert result.found, result.describe()
        selector, align = result.annotations["eta"]
        # The discovered annotation must actually use the shadow execution
        # (no aligned-only annotation verifies Report Noisy Max at size 3).
        assert ast.selector_uses_shadow(selector)

    def test_no_annotation_for_broken_program(self):
        # size = 5, N = 1: per-query alignment -q^o[i] would cost
        # 5*eps/4 > eps, and without threshold noise the Ω-guarded
        # annotations cannot align the comparison — nothing verifies.
        spec = get("bad_svt_no_threshold_noise")
        config = VerificationConfig(
            mode="unroll",
            bindings={"size": 5, "N": 1},
            assumptions=spec.assumption_exprs(),
            unroll_limit=7,
            collect_models=False,
        )
        result = infer_annotations(spec.function(), config, max_candidates=60)
        assert not result.found


class TestEmpiricalEstimator:
    def test_laplace_mechanism_consistent(self):
        from repro.semantics.distributions import laplace_sample

        def mech(rng, value, eps):
            return value + laplace_sample(rng, 1.0 / eps)

        result = estimate_epsilon_lower_bound(
            mech,
            {"value": 0.0, "eps": 1.0},
            {"value": 1.0, "eps": 1.0},
            claimed_epsilon=1.0,
            trials=4000,
            digits=0,
        )
        assert not result.violates

    def test_buggy_svt_detected(self):
        # iSVT3's true epsilon is size*eps/(4N); a violation of the
        # claimed eps requires size > 4N, and eps = 4 widens the
        # per-query likelihood gap enough for statistical detection.
        # (Queries at +0.5/-0.5 form a genuinely adjacent pair.)
        spec = get("bad_svt_no_threshold_noise")
        base = {"eps": 4.0, "size": 8.0, "T": 0.0, "N": 1.0}
        inputs1 = dict(base, q=tuple([0.5] * 8))
        inputs2 = dict(base, q=tuple([-0.5] * 8))
        result = estimate_epsilon_lower_bound(
            spec.reference, inputs1, inputs2, claimed_epsilon=4.0,
            trials=12_000, digits=0,
        )
        assert result.violates, result.describe()

    def test_correct_svt_consistent(self):
        spec = get("svt")
        base = {"eps": 1.0, "size": 3.0, "T": 0.0, "N": 1.0}
        inputs1 = dict(base, q=(1.0, 0.0, -1.0))
        inputs2 = dict(base, q=(0.0, 1.0, 0.0))
        result = estimate_epsilon_lower_bound(
            spec.reference, inputs1, inputs2, claimed_epsilon=1.0, trials=4000
        )
        assert not result.violates, result.describe()


class TestCLI:
    def _write(self, tmp_path, name="noisy_max"):
        path = tmp_path / "prog.sdp"
        path.write_text(get(name).source)
        return str(path)

    def test_check(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["check", self._write(tmp_path)]) == 0
        assert "type checks" in capsys.readouterr().out

    def test_transform(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["transform", self._write(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "havoc eta;" in out
        assert "v_eps := 0;" in out

    def test_verify(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["verify", self._write(tmp_path), "--bind", "size=3", "--assume", "eps > 0"]
        )
        assert code == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_buggy_fails(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write(tmp_path, "bad_svt_no_budget")
        code = main(
            ["verify", path, "--bind", "size=3", "--bind", "N=1", "--assume", "eps > 0"]
        )
        assert code == 1
        assert "REFUTED" in capsys.readouterr().out

    def test_run(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["run", self._write(tmp_path), "--input", "eps=1", "--input", "size=3",
             "--input", "q=1,2,3", "--seed", "7"]
        )
        assert code == 0
        assert "result:" in capsys.readouterr().out

    def test_type_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.sdp"
        path.write_text(
            """
            function F(x: num<1,0>) returns y: num<0,0>
            { y := x; return y; }
            """
        )
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().err
