"""Integration tests: every Table-1 algorithm in every regime.

These are the paper's headline results as assertions:

* all Table-1 rows type check with only the paper's annotations;
* all transformed programs verify — bounded (unroll) and unbounded
  (invariant mode) — and the buggy variants are refuted;
* Report Noisy Max verifies with *no* manual invariants via Houdini;
* LightDP mode rejects Report Noisy Max but accepts the rest.
"""

import pytest

from repro.algorithms import all_specs, get
from repro.baselines import check_lightdp
from repro.core.errors import ShadowDPTypeError
from repro.verify.houdini import infer_invariants
from repro.verify.verifier import VerificationConfig, verify_target

CORRECT = [s.name for s in all_specs(include_buggy=False)]
BUGGY = [s.name for s in all_specs() if not s.expect_verified]


def unroll_config(spec, extra_bindings=None):
    bindings = dict(spec.fixed_bindings)
    bindings.update(extra_bindings or {})
    return VerificationConfig(
        mode="unroll", bindings=bindings, assumptions=spec.assumption_exprs(), unroll_limit=16
    )


class TestTypeChecking:
    @pytest.mark.parametrize("name", CORRECT + BUGGY)
    def test_type_checks(self, name):
        checked = get(name).checked()
        assert checked.body is not None

    def test_noisy_max_uses_shadow(self):
        assert not get("noisy_max").checked().aligned_only

    @pytest.mark.parametrize("name", [n for n in CORRECT if n != "noisy_max"])
    def test_others_are_aligned_only(self, name):
        assert get(name).checked().aligned_only


class TestUnrollRegime:
    @pytest.mark.parametrize("name", CORRECT)
    def test_verified(self, name):
        spec = get(name)
        outcome = verify_target(spec.target(), unroll_config(spec))
        assert outcome.verified, outcome.describe()

    @pytest.mark.parametrize("name", BUGGY)
    def test_buggy_refuted_with_counterexamples(self, name):
        spec = get(name)
        outcome = verify_target(spec.target(), unroll_config(spec))
        assert not outcome.verified
        assert all(f.arith_model is not None for f in outcome.failures)

    def test_svt_n1_row(self):
        # Table 1's "(N = 1)" rows: same program, N bound to 1.
        spec = get("svt")
        outcome = verify_target(spec.target(), unroll_config(spec, {"N": 1}))
        assert outcome.verified


class TestInvariantRegime:
    @pytest.mark.parametrize("name", CORRECT)
    def test_unbounded_verification(self, name):
        spec = get(name)
        config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
        outcome = verify_target(spec.target(), config)
        assert outcome.verified, outcome.describe()


class TestHoudini:
    def test_noisy_max_fully_automatic(self):
        # Strip the manual invariants and let Houdini find them.
        from repro.lang import ast as A
        from repro.target.transform import TargetProgram

        spec = get("noisy_max")
        target = spec.target()

        def strip(cmd):
            if isinstance(cmd, A.Seq):
                return A.seq(*[strip(c) for c in cmd.commands])
            if isinstance(cmd, A.If):
                return A.If(cmd.cond, strip(cmd.then), strip(cmd.orelse))
            if isinstance(cmd, A.While):
                return A.While(cmd.cond, strip(cmd.body), ())
            return cmd

        bare = TargetProgram(target.function, strip(target.body), target.cost_bound, target.aligned_only)
        config = VerificationConfig(mode="invariant", assumptions=spec.assumption_exprs())
        result = infer_invariants(bare, config, peel=1)
        assert result.outcome.verified, result.outcome.describe()
        assert result.invariants  # something was inferred


class TestLightDPBaseline:
    def test_rejects_noisy_max(self):
        with pytest.raises(ShadowDPTypeError) as err:
            check_lightdp(get("noisy_max").function())
        assert err.value.reason == "lightdp-shadow"

    @pytest.mark.parametrize("name", [n for n in CORRECT if n != "noisy_max"])
    def test_accepts_aligned_only_algorithms(self, name):
        checked = check_lightdp(get(name).function())
        assert checked.aligned_only


class TestCounterexampleQuality:
    def test_bad_svt_counterexample_is_adjacent(self):
        """The refutation model must satisfy the sensitivity bounds —
        i.e. it is a genuine adjacent-inputs witness."""
        spec = get("bad_svt_no_threshold_noise")
        outcome = verify_target(spec.target(), unroll_config(spec))
        model = outcome.failures[0].arith_model
        hats = {k: v for k, v in model.items() if k.startswith("q^o[")}
        assert hats, "counterexample should mention hat offsets"
        for value in hats.values():
            assert -1 <= value <= 1
