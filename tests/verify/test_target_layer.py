"""Unit tests for the target transform and optimizer."""


from repro.core.checker import check_function
from repro.lang import ast
from repro.lang.parser import parse_command, parse_function
from repro.target.optimize import eliminate_dead_stores, live_hats
from repro.target.transform import COST_VAR, to_target


def target_of(src):
    return to_target(check_function(parse_function(src)))


class TestLowering:
    def test_sample_becomes_havoc_plus_cost(self):
        target = target_of(
            """
            function F(eps: num) returns y: num<0,0>
            { eta := Lap(2 / eps), aligned, 1; y := 0; return y; }
            """
        )
        kinds = [type(c) for c in ast.command_iter(target.body)]
        assert ast.Havoc in kinds
        assert ast.Sample not in kinds
        cost_updates = [
            c for c in ast.command_iter(target.body)
            if isinstance(c, ast.Assign) and c.name == COST_VAR
        ]
        # v_eps := 0 plus one per sample.
        assert len(cost_updates) == 2
        # |1| / (2/eps) = eps/2.
        assert cost_updates[1].expr == parse_command("x := v_eps + eps / 2;").expr

    def test_shadow_selector_resets_cost(self):
        target = target_of(
            """
            function F(eps: num) returns y: num<0,0>
            { eta := Lap(2 / eps), shadow, 2; y := 0; return y; }
            """
        )
        update = [
            c for c in ast.command_iter(target.body)
            if isinstance(c, ast.Assign) and c.name == COST_VAR
        ][1]
        # S(<v_eps, 0>) = 0, cost |2|/(2/eps) = eps: reset semantics.
        assert update.expr == ast.Var("eps")

    def test_final_assert_before_return(self):
        target = target_of(
            "function F(eps: num) returns y: num<0,0> { y := 0; return y; }"
        )
        flat = list(target.body.commands)
        assert isinstance(flat[-1], ast.Return)
        assert isinstance(flat[-2], ast.Assert)
        assert flat[-2].expr == ast.BinOp("<=", ast.Var(COST_VAR), ast.Var("eps"))

    def test_custom_cost_bound(self):
        target = target_of(
            """
            function F(eps: num) returns y: num<0,0>
            costbound 2 * eps;
            { y := 0; return y; }
            """
        )
        asserts = [c for c in ast.command_iter(target.body) if isinstance(c, ast.Assert)]
        assert asserts[-1].expr == ast.BinOp(
            "<=", ast.Var(COST_VAR), ast.BinOp("*", ast.Real(2), ast.Var("eps"))
        )


class TestDeadStoreElimination:
    def test_unread_hat_store_removed(self):
        cmd = parse_command("x^s := 5; y := 1;")
        assert eliminate_dead_stores(cmd) == parse_command("y := 1;")

    def test_read_hat_store_kept(self):
        cmd = parse_command("x^o := 5; assert(x^o <= 1);")
        assert eliminate_dead_stores(cmd) == cmd

    def test_self_referential_store_is_dead(self):
        # max^s := max + max^s - i keeps itself alive only via itself.
        cmd = parse_command("max^s := max + max^s - i; y := 1;")
        assert eliminate_dead_stores(cmd) == parse_command("y := 1;")

    def test_transitive_liveness(self):
        cmd = parse_command("a^o := 1; b^o := a^o + 1; assert(b^o <= 2);")
        assert eliminate_dead_stores(cmd) == cmd

    def test_transitive_death(self):
        cmd = parse_command("a^o := 1; b^o := a^o + 1; y := 0;")
        assert eliminate_dead_stores(cmd) == parse_command("y := 0;")

    def test_trivial_self_assignment_removed(self):
        cmd = parse_command("x^o := x^o; assert(x^o <= 1);")
        assert eliminate_dead_stores(cmd) == parse_command("assert(x^o <= 1);")

    def test_normal_variables_never_removed(self):
        cmd = parse_command("x := 5;")
        assert eliminate_dead_stores(cmd) == cmd

    def test_live_hats_seeding(self):
        cmd = parse_command(
            "a^o := 1; while (i < n) invariant b^o >= 0; { b^o := a^o; i := i + 1; }"
        )
        live = live_hats(cmd)
        assert "b^o" in live  # demanded by the invariant
        assert "a^o" in live  # feeds a live store
