"""The ``witness`` request: stored certificates fetched and
re-validated over the wire."""

import json
import os
import sqlite3

import pytest

from repro.serve import ServeClient, ServeError, ServerThread


@pytest.fixture()
def server(tmp_path):
    sock = os.fspath(tmp_path / "serve.sock")
    store = os.fspath(tmp_path / "store.sqlite")
    with ServerThread(socket_path=sock, store=store):
        yield sock, store


def _populate(sock):
    with ServeClient(socket_path=sock) as client:
        result = client.verify(spec="svt", config={"witness": True}, stream=False)
    assert result["outcome"]["verified"]
    assert result["outcome"]["counters"]["witnesses"] == (
        result["outcome"]["obligations_total"]
    )
    return result["outcome"]["oids"]


class TestWitnessRequest:
    def test_round_trip_validates(self, server):
        sock, _ = server
        oids = _populate(sock)
        with ServeClient(socket_path=sock) as client:
            out = client.witness(oids[0], spec="svt", full=True)
        assert out["type"] == "witness"
        assert out["found"] and out["valid"] and out["witnessed"]
        assert out["validated"] is True
        assert out["checked"]["rup_steps"] >= 1
        assert out["summary"]["inputs"] > 0
        # full=True ships the canonical JSON itself.
        assert json.loads(out["certificate"])["oid"] == oids[0]

    def test_without_full_omits_certificate_body(self, server):
        sock, _ = server
        oids = _populate(sock)
        with ServeClient(socket_path=sock) as client:
            out = client.witness(oids[0], spec="svt")
        assert out["validated"] is True
        assert "certificate" not in out

    def test_unknown_oid_reports_not_found(self, server):
        sock, _ = server
        _populate(sock)
        with ServeClient(socket_path=sock) as client:
            out = client.witness("feedfacecafe", spec="svt")
        assert out["found"] is False
        assert "validated" not in out

    def test_tampered_store_row_is_rejected_not_served(self, server):
        sock, store = server
        oids = _populate(sock)
        conn = sqlite3.connect(store)
        conn.execute(
            "UPDATE obligations SET witness = substr(witness, 1, 40) "
            "WHERE oid = ?",
            (oids[0],),
        )
        conn.commit()
        conn.close()
        with ServeClient(socket_path=sock) as client:
            out = client.witness(oids[0], spec="svt")
        assert out["found"] and out["witnessed"]
        assert out["validated"] is False
        assert "decode" in out["error"]

    def test_missing_oid_field_is_a_bad_request(self, server):
        sock, _ = server
        with ServeClient(socket_path=sock) as client:
            with pytest.raises(ServeError) as err:
                client._request({"type": "witness", "spec": "svt"})
        assert err.value.code == "bad-request"
