"""Wire-format unit tests: framing, handshake, config decoding."""

from fractions import Fraction

import pytest

from repro.algorithms import registry
from repro.pipeline import Pipeline, spec_config
from repro.serve import protocol
from repro.verify.discharge import ObligationDischarged, UnitStarted, EarlyExit


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def test_encode_decode_roundtrip():
    message = {"type": "verify", "spec": "svt", "id": "r1"}
    line = protocol.encode_line(message)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert protocol.decode_line(line) == message


def test_encoding_is_canonical():
    # Key order cannot leak into the frame: both endpoints and the tests
    # compare frames byte-for-byte.
    a = protocol.encode_line({"b": 1, "a": 2, "type": "x"})
    b = protocol.encode_line({"type": "x", "a": 2, "b": 1})
    assert a == b


@pytest.mark.parametrize(
    "line",
    [b"not json\n", b"[1, 2]\n", b'{"no-type": 1}\n', b'{"type": 7}\n'],
)
def test_decode_rejects_malformed_frames(line):
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_line(line)


def test_oversized_frame_rejected():
    big = {"type": "verify", "source": "x" * protocol.MAX_LINE_BYTES}
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_line(big)


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------


def test_hellos_carry_version_and_protocol():
    from repro import __version__

    hello = protocol.server_hello()
    assert hello["version"] == __version__
    assert hello["protocol"] == protocol.PROTOCOL_VERSION
    assert protocol.client_hello()["protocol"] == protocol.PROTOCOL_VERSION


def test_check_client_hello_accepts_current_protocol():
    protocol.check_client_hello(protocol.client_hello())


@pytest.mark.parametrize(
    "message",
    [
        {"type": "verify", "spec": "svt"},
        {"type": "hello"},
        {"type": "hello", "protocol": protocol.PROTOCOL_VERSION + 1},
        {"type": "hello", "protocol": "1"},
    ],
)
def test_check_client_hello_rejects_mismatch(message):
    with pytest.raises(protocol.ProtocolError) as err:
        protocol.check_client_hello(message)
    assert err.value.code == "protocol-mismatch"


# ---------------------------------------------------------------------------
# Config decoding
# ---------------------------------------------------------------------------


def test_config_from_wire_defaults():
    config = protocol.config_from_wire(None)
    assert config.mode == "unroll"
    assert config.bindings == {}
    assert config.cancel_event is None


def test_config_from_wire_rationals_and_assumptions():
    config = protocol.config_from_wire(
        {
            "bindings": {"eps": "1/2", "size": 5},
            "assumptions": ["eps > 0"],
            "jobs": 4,
            "backend": "threaded",
            "fail_fast": True,
        }
    )
    assert config.bindings == {"eps": Fraction(1, 2), "size": Fraction(5)}
    assert len(config.assumptions) == 1
    assert config.jobs == 4
    assert config.backend == "threaded"
    assert config.fail_fast is True
    # The process backend is first-class on the wire too.
    assert protocol.config_from_wire({"backend": "process"}).backend == "process"


def test_config_from_wire_merges_over_base():
    spec = registry.get("svt")
    base = spec_config(spec)
    config = protocol.config_from_wire({"bindings": {"eps": "2"}}, base=base)
    # The explicit binding overrides; the rest of the Table-1 regime stays.
    assert config.bindings["eps"] == Fraction(2)
    for name, value in base.bindings.items():
        if name != "eps":
            assert config.bindings[name] == value
    assert config.assumptions == tuple(base.assumptions)


@pytest.mark.parametrize(
    "data",
    [
        {"nope": 1},
        {"mode": "sideways"},
        {"bindings": {"eps": "elephant"}},
        {"bindings": ["eps"]},
        {"assumptions": ["eps >"]},
        {"backend": "quantum"},
        {"unroll_limit": "many"},
    ],
)
def test_config_from_wire_rejects_bad_configs(data):
    with pytest.raises(protocol.ProtocolError):
        protocol.config_from_wire(data)


# ---------------------------------------------------------------------------
# Pipeline → wire
# ---------------------------------------------------------------------------


def test_event_to_wire_kinds_and_fields():
    started = protocol.event_to_wire(UnitStarted(unit="u0", obligations=3), rid="r9")
    assert started["type"] == "event"
    assert started["kind"] == "unit-started"
    assert started["unit"] == "u0"
    assert started["obligations"] == 3
    assert started["id"] == "r9"

    early = protocol.event_to_wire(EarlyExit(unit="plan", reason="cancelled"))
    assert early["kind"] == "early-exit"
    assert "id" not in early


def test_event_wire_is_json_encodable():
    event = ObligationDischarged(
        unit="u1", oid="abc123", tag="eps-budget", cached=True
    )
    protocol.encode_line(protocol.event_to_wire(event, rid="r1"))


def test_result_to_wire_shape():
    spec = registry.get("partial_sum")
    run = Pipeline().run(spec.source, config=spec_config(spec))
    result = protocol.result_to_wire(run, cached=False, rid="r1")
    assert result["type"] == "result"
    assert result["name"] == run.name
    assert result["source_sha256"] == run.source_hash
    assert result["cached"] is False
    outcome = result["outcome"]
    assert outcome["verified"] is True
    assert outcome["obligations_total"] == len(outcome["oids"])
    assert outcome["failures"] == []
    assert outcome["counters"]["solve_calls"] > 0
    assert [s["stage"] for s in result["stages"]] == [
        "parse", "check", "lower_ir", "lower", "optimize", "verify",
    ]
    # The whole terminal message must survive framing.
    assert protocol.decode_line(protocol.encode_line(result)) == result
