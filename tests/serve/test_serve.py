"""End-to-end tests for the ``repro serve`` daemon and client.

Each test runs a real :class:`VerifyServer` on a background event-loop
thread listening on a unix socket (one test covers TCP) and talks to it
through :class:`ServeClient` — the same code path as ``repro client``.

The load-bearing properties pinned here:

* handshake and protocol-version rejection;
* per-request results identical to direct in-process pipeline runs
  (verdicts, obligation ids, query counters);
* the two single-flight layers under concurrency — N clients verifying
  the *same* program produce exactly one pipeline execution, and a mix
  of *different* programs produces verdicts and aggregate solver totals
  identical to a serial one-shot reference;
* warm-cache behaviour (``--warm`` preload, cached replays issuing zero
  new solves);
* cooperative cancellation: per-request timeouts and drain-on-shutdown
  deliver ``early-exit`` events plus a terminal error, and leave the
  caches serviceable.
"""

import socket
import threading

import pytest

from repro import __version__
from repro.algorithms import registry
from repro.pipeline import Pipeline, spec_config
from repro.serve import ServeClient, ServeError, ServerThread, protocol

#: Three quick registry rows for sweep-style tests.
SPECS = ("svt", "noisy_max", "partial_sum")


@pytest.fixture
def server(tmp_path):
    sock = str(tmp_path / "serve.sock")
    with ServerThread(socket_path=sock, max_concurrent=4) as st:
        yield st, sock


def _connect(sock: str) -> ServeClient:
    return ServeClient(socket_path=sock)


def _signature(result):
    """The schedule-invariant per-request fingerprint of a wire result."""
    outcome = result["outcome"]
    return (
        result["name"],
        outcome["verified"],
        tuple(outcome["oids"]),
        outcome["obligations_total"],
        tuple(sorted(f["oid"] for f in outcome["failures"])),
        outcome["counters"]["queries"],
        outcome["counters"]["units"],
    )


def _serial_reference(specs):
    """Fresh-process serial runs: per-spec signatures + aggregate totals."""
    pipe = Pipeline()
    signatures, solves, hits = [], 0, 0
    for name in specs:
        spec = registry.get(name)
        run = pipe.run(spec.source, config=spec_config(spec))
        outcome = run.outcome
        stats = outcome.solver_stats()
        signatures.append(
            (
                run.name,
                outcome.verified,
                tuple(outcome.oids),
                outcome.obligations_total,
                tuple(sorted(f.obligation.oid for f in outcome.failures)),
                stats["queries"],
                stats["units"],
            )
        )
        solves += stats["solve_calls"]
        hits += stats["cache_hits"]
    return signatures, solves, hits


# ---------------------------------------------------------------------------
# Handshake, status, basic requests
# ---------------------------------------------------------------------------


class TestHandshake:
    def test_hello_reports_version_and_protocol(self, server):
        _, sock = server
        with _connect(sock) as client:
            assert client.server_info["server"] == "repro-serve"
            assert client.server_info["version"] == __version__
            assert client.server_info["protocol"] == protocol.PROTOCOL_VERSION
            assert client.ping()["type"] == "pong"

    def test_mismatched_protocol_rejected(self, server):
        _, sock = server
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(sock)
        reader = raw.makefile("rb")
        try:
            hello = protocol.decode_line(reader.readline())
            assert hello["type"] == "hello"
            raw.sendall(
                protocol.encode_line(
                    {"type": "hello", "protocol": protocol.PROTOCOL_VERSION + 1}
                )
            )
            answer = protocol.decode_line(reader.readline())
            assert answer["type"] == "error"
            assert answer["code"] == "protocol-mismatch"
            assert reader.readline() == b""  # server closed the connection
        finally:
            reader.close()
            raw.close()

    def test_rejection_is_counted(self, server):
        st, sock = server
        with pytest.raises(ServeError) as err:
            # A client that leads with a request instead of a hello.
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(sock)
            reader = raw.makefile("rb")
            reader.readline()  # server hello
            raw.sendall(protocol.encode_line({"type": "status"}))
            answer = protocol.decode_line(reader.readline())
            reader.close()
            raw.close()
            raise ServeError(answer["message"], code=answer["code"])
        assert err.value.code == "protocol-mismatch"
        with _connect(sock) as client:
            assert client.status()["requests"]["rejected"] == 1


class TestStatus:
    def test_status_shape(self, server):
        _, sock = server
        with _connect(sock) as client:
            status = client.status()
            assert status["server"]["version"] == __version__
            assert status["server"]["protocol"] == protocol.PROTOCOL_VERSION
            assert status["server"]["uptime_seconds"] >= 0
            assert status["server"]["draining"] is False
            assert status["server"]["max_concurrent"] == 4
            assert status["requests"]["active"] == 0
            assert set(status["query_cache"]) >= {"entries", "hits", "misses", "pending"}
            assert set(status["stage_memo"]) == {"entries", "in_flight", "hits", "misses"}
            assert "svt" in status["registry"]

    def test_unknown_request_type(self, server):
        _, sock = server
        with _connect(sock) as client:
            with pytest.raises(ServeError) as err:
                client._request({"type": "frobnicate"})
            assert err.value.code == "bad-request"


# ---------------------------------------------------------------------------
# Verify requests vs direct pipeline runs
# ---------------------------------------------------------------------------


class TestVerify:
    def test_matches_direct_pipeline_run(self, server):
        _, sock = server
        with _connect(sock) as client:
            result = client.verify(spec="svt")
        (reference,), _, _ = _serial_reference(["svt"])
        assert result["cached"] is False
        assert _signature(result) == reference
        # Cold counters match a cold in-process run exactly.
        spec = registry.get("svt")
        direct = Pipeline().run(spec.source, config=spec_config(spec)).outcome
        assert result["outcome"]["counters"]["solve_calls"] == (
            direct.solver_stats()["solve_calls"]
        )
        assert result["source_sha256"] == Pipeline().run(
            spec.source, config=spec_config(spec), stop_after="parse"
        ).source_hash

    def test_inline_source_with_wire_config(self, server):
        _, sock = server
        spec = registry.get("svt")
        config = {
            "bindings": {k: str(v) for k, v in spec.fixed_bindings.items()},
            "assumptions": list(spec.assumptions),
        }
        with _connect(sock) as client:
            by_spec = client.verify(spec="svt")
            by_source = client.verify(source=spec.source, config=config)
        assert by_source["outcome"]["verified"] is True
        assert by_source["outcome"]["oids"] == by_spec["outcome"]["oids"]

    def test_refuted_program_reports_failures(self, server):
        _, sock = server
        with _connect(sock) as client:
            result = client.verify(spec="bad_svt_leaks_value")
        outcome = result["outcome"]
        assert outcome["verified"] is False
        assert outcome["failures"]
        for failure in outcome["failures"]:
            assert failure["oid"] in outcome["oids"]

    def test_events_streamed_incrementally(self, server):
        _, sock = server
        events = []
        with _connect(sock) as client:
            result = client.verify(spec="svt", on_event=events.append)
        kinds = [e["kind"] for e in events]
        assert "unit-started" in kinds
        assert "unit-finished" in kinds
        verdicts = [e for e in events if e["kind"] == "obligation-discharged"]
        assert len(verdicts) == result["outcome"]["obligations_total"]
        assert [e["oid"] for e in verdicts] == result["outcome"]["oids"]
        # Every event is tagged with the request id of its verify.
        assert {e["id"] for e in events} == {result["id"]}

    def test_stream_false_suppresses_events(self, server):
        _, sock = server
        events = []
        with _connect(sock) as client:
            result = client.verify(spec="svt", stream=False, on_event=events.append)
        assert events == []
        assert result["outcome"]["verified"] is True

    def test_cached_replay_issues_no_queries(self, server):
        _, sock = server
        with _connect(sock) as client:
            first = client.verify(spec="svt")
            before = client.status()["query_cache"]
            events = []
            second = client.verify(spec="svt", on_event=events.append)
            after = client.status()["query_cache"]
        assert first["cached"] is False
        assert second["cached"] is True
        assert events == []  # memoized results replay without a discharge
        assert second["outcome"]["oids"] == first["outcome"]["oids"]
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]

    def test_warm_query_cache_across_configs(self, server):
        """A re-verify under a different discharge strategy (new memo key,
        same obligations) answers every query from the warm cache."""
        _, sock = server
        with _connect(sock) as client:
            cold = client.verify(spec="svt")
            warm = client.verify(spec="svt", config={"backend": "threaded", "jobs": 2})
        assert warm["cached"] is False  # distinct fingerprint: really re-ran
        counters = warm["outcome"]["counters"]
        assert counters["solve_calls"] == 0
        assert counters["cache_hits"] == counters["queries"]
        assert warm["outcome"]["oids"] == cold["outcome"]["oids"]

    def test_unknown_spec(self, server):
        _, sock = server
        with _connect(sock) as client:
            with pytest.raises(ServeError) as err:
                client.verify(spec="laplace_oracle")
            assert err.value.code == "unknown-spec"

    def test_verify_needs_a_program(self, server):
        _, sock = server
        with _connect(sock) as client:
            with pytest.raises(ServeError) as err:
                client._request({"type": "verify"})
            assert err.value.code == "bad-request"

    def test_bad_config_rejected(self, server):
        _, sock = server
        with _connect(sock) as client:
            with pytest.raises(ServeError) as err:
                client.verify(spec="svt", config={"backend": "quantum"})
            assert err.value.code == "bad-request"
            # The connection survives a rejected request.
            assert client.ping()["type"] == "pong"


# ---------------------------------------------------------------------------
# Concurrency determinism (the service-layer property)
# ---------------------------------------------------------------------------


def _concurrent_verify(sock, requests):
    """Run one verify per thread, all released simultaneously."""
    barrier = threading.Barrier(len(requests))
    results = [None] * len(requests)
    errors = []

    def worker(slot, spec):
        try:
            with _connect(sock) as client:
                barrier.wait()
                results[slot] = client.verify(spec=spec)
        except BaseException as err:  # surfaced in the main thread
            errors.append(err)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [
        threading.Thread(target=worker, args=(slot, spec))
        for slot, spec in enumerate(requests)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    assert all(r is not None for r in results)
    return results


class TestConcurrencyDeterminism:
    def test_identical_requests_share_one_execution(self, server):
        st, sock = server
        results = _concurrent_verify(sock, ["svt"] * 4)
        signatures = {_signature(r) for r in results}
        assert len(signatures) == 1  # byte-identical verdicts and counters
        (reference,), _, _ = _serial_reference(["svt"])
        assert signatures == {reference}
        # The stage memo's single flight: exactly one request produced,
        # the other three received the memoized artifact as a hit.
        assert sum(1 for r in results if not r["cached"]) == 1
        memo = st.server.pipeline.memo_stats()
        assert memo["misses"]["verify"] == 1
        assert memo["in_flight"] == 0

    def test_distinct_requests_match_serial_reference(self, server):
        st, sock = server
        results = _concurrent_verify(sock, list(SPECS))
        by_name = {r["name"]: r for r in results}
        reference, ref_solves, ref_hits = _serial_reference(SPECS)
        assert [_signature(by_name[sig[0]]) for sig in reference] == reference
        # Aggregate solver totals are schedule-invariant: the solve count
        # equals the number of distinct normalized queries, and every
        # other query is a hit — regardless of which request got there
        # first.  (The per-request hit/solve *split* is the one quantity
        # concurrency may shuffle when distinct programs share queries.)
        solves = sum(r["outcome"]["counters"]["solve_calls"] for r in results)
        hits = sum(r["outcome"]["counters"]["cache_hits"] for r in results)
        assert solves == ref_solves
        assert hits == ref_hits
        cache = st.server.pipeline.query_cache.stats()
        assert cache["pending"] == 0

    def test_second_pass_is_warm(self, server):
        """Satellite property: a warm second sweep — cache hits > 0 and
        strictly fewer solves than cold (here: zero)."""
        st, sock = server
        with _connect(sock) as client:
            cold = [client.verify(spec=name) for name in SPECS]
            cache_after_cold = client.status()["query_cache"]
            warm = [client.verify(spec=name) for name in SPECS]
            cache_after_warm = client.status()["query_cache"]
        cold_solves = sum(r["outcome"]["counters"]["solve_calls"] for r in cold)
        assert cold_solves > 0
        assert all(r["cached"] for r in warm)
        assert [_signature(r) for r in warm] == [_signature(r) for r in cold]
        # Zero new solves: the query cache was not even consulted.
        assert cache_after_warm["misses"] == cache_after_cold["misses"]
        memo = st.server.pipeline.memo_stats()
        assert sum(memo["hits"].values()) > 0


# ---------------------------------------------------------------------------
# Warm start
# ---------------------------------------------------------------------------


class TestWarmStart:
    def test_warm_server_serves_everything_cached(self, tmp_path):
        sock = str(tmp_path / "warm.sock")
        with ServerThread(socket_path=sock, warm_specs=list(SPECS)) as st:
            with _connect(sock) as client:
                status = client.status()
                assert status["server"]["warmed"] == list(SPECS)
                before = status["query_cache"]
                results = client.sweep(specs=SPECS)
                after = client.status()["query_cache"]
            assert all(r["cached"] for r in results)
            assert all(r["outcome"]["verified"] for r in results)
            assert after["misses"] == before["misses"]  # zero new solves


class TestObligationStore:
    def test_status_reports_no_store_by_default(self, server):
        _, sock = server
        with _connect(sock) as client:
            assert client.status()["obligation_store"] is None

    def test_shared_store_serves_repeat_work_without_solving(self, tmp_path):
        """One store behind every request: a config variation that forks
        the stage memo (fail_fast) is still answered from disk."""
        sock = str(tmp_path / "store.sock")
        store_path = str(tmp_path / "store.sqlite")
        with ServerThread(socket_path=sock, store=store_path) as st:
            with _connect(sock) as client:
                cold = client.verify(spec="svt")
                status = client.status()
                warm = client.verify(spec="svt", config={"fail_fast": True})
        total = cold["outcome"]["obligations_total"]
        assert cold["cached"] is False
        assert cold["outcome"]["counters"]["store"]["writes"] == total
        block = status["obligation_store"]
        assert block is not None
        assert block["path"] == store_path
        assert block["entries"] == total
        assert block["writes"] == total
        # The fail_fast variation missed the memo but hit the store for
        # every obligation: no solver work at all.
        assert warm["cached"] is False
        assert warm["outcome"]["counters"]["store"]["hits"] == total
        assert warm["outcome"]["counters"]["solve_calls"] == 0
        assert warm["outcome"]["verified"] is True
        assert st.server.store.counters.hits == total

    def test_wire_config_cannot_redirect_the_store(self):
        """The store is server-side state, not a request knob."""
        assert "store" not in protocol.CONFIG_KEYS
        with pytest.raises(protocol.ProtocolError):
            protocol.config_from_wire({"store": "/tmp/evil.sqlite"})


# ---------------------------------------------------------------------------
# Timeouts, drain and lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_request_timeout_cancels_and_recovers(self, server):
        st, sock = server
        events = []
        with _connect(sock) as client:
            with pytest.raises(ServeError) as err:
                client.verify(spec="num_svt", timeout=0.05, on_event=events.append)
            assert err.value.code == "timeout"
            # The cancelled run told its client it stopped early.
            assert any(e["kind"] == "early-exit" for e in events)
            assert any(
                e["reason"] == "cancelled"
                for e in events
                if e["kind"] == "early-exit"
            )
            # The caches were not poisoned: the same request, unhurried,
            # completes on the same connection.
            result = client.verify(spec="num_svt")
            assert result["outcome"]["verified"] is True
            status = client.status()
            assert status["requests"]["cancelled"] == 1
            assert status["query_cache"]["pending"] == 0

    def test_shutdown_request_drains(self, tmp_path):
        sock = str(tmp_path / "drain.sock")
        st = ServerThread(socket_path=sock)
        st.start()
        with _connect(sock) as client:
            client.verify(spec="svt")
            client.shutdown()
        st._thread.join(timeout=30)
        assert not st._thread.is_alive()
        # The listener is gone: new connections fail.
        with pytest.raises(ServeError):
            _connect(sock)

    def test_drain_cancels_inflight_requests(self, tmp_path):
        sock = str(tmp_path / "drain2.sock")
        st = ServerThread(socket_path=sock)
        st.start()
        started = threading.Event()
        outcome = {}

        def slow_client():
            try:
                with _connect(sock) as client:
                    outcome["result"] = client.verify(
                        spec="num_svt",
                        on_event=lambda e: (
                            outcome.setdefault("events", []).append(e),
                            started.set(),
                        ),
                    )
            except ServeError as err:
                outcome["error"] = err

        thread = threading.Thread(target=slow_client)
        thread.start()
        assert started.wait(timeout=60)  # the verify is genuinely running
        st.server.request_shutdown("test drain")
        thread.join(timeout=60)
        assert not thread.is_alive()
        st._thread.join(timeout=60)
        assert not st._thread.is_alive()
        # The in-flight request was cancelled (or, in the unlikely race,
        # finished just before the drain) — never dropped silently.
        if "error" in outcome:
            assert outcome["error"].code == "cancelled"
            assert any(
                e["kind"] == "early-exit" and e["reason"] == "cancelled"
                for e in outcome.get("events", ())
            )
        else:
            assert outcome["result"]["outcome"]["verified"] is True

    def test_tcp_endpoint(self, tmp_path):
        with ServerThread(port=0) as st:
            port = st.server.tcp_port
            assert port
            with ServeClient(port=port) as client:
                assert client.ping()["type"] == "pong"
                assert client.status()["server"]["version"] == __version__


# ---------------------------------------------------------------------------
# The CLI front ends
# ---------------------------------------------------------------------------


class TestCLI:
    def test_version_flag(self, capsys):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit) as exit_info:
            cli_main(["--version"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert f"repro {__version__}" in out
        assert f"protocol {protocol.PROTOCOL_VERSION}" in out

    def test_client_verify_and_status(self, server, capsys):
        from repro.cli import main as cli_main

        _, sock = server
        assert cli_main(["client", "verify", "--spec", "svt", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "SVT: verified" in out

        assert cli_main(["client", "status", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "repro-serve" in out
        assert "1 completed" in out

    def test_client_progress_events(self, server, capsys):
        from repro.cli import main as cli_main

        _, sock = server
        rc = cli_main(
            ["client", "verify", "--spec", "partial_sum", "--socket", sock, "--progress"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "started (" in out
        assert "ok " in out

    def test_client_refuted_exit_code(self, server):
        from repro.cli import main as cli_main

        _, sock = server
        rc = cli_main(
            ["client", "verify", "--spec", "bad_svt_leaks_value", "--socket", sock]
        )
        assert rc == 1

    def test_client_connection_error(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(
            ["client", "status", "--socket", str(tmp_path / "nowhere.sock")]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err
