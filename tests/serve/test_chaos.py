"""Chaos tests: the serve stack under a combined fault plan.

These pin the end-to-end robustness contract: injected connection
drops, worker kills and store corruption may cost retries and serial
re-solves, but never change a verdict, an obligation id or a query
counter — and the degradation is visible through ``health``.
"""

import pytest

from repro import faults
from repro.algorithms import registry
from repro.pipeline import Pipeline, spec_config
from repro.serve import ServeClient, ServerThread


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.install(None)
    faults.reset()


def _reference(name):
    spec = registry.get(name)
    outcome = Pipeline().run(spec.source, config=spec_config(spec)).outcome
    return (
        outcome.verified,
        tuple(outcome.oids),
        outcome.obligations_total,
        outcome.solver_stats()["queries"],
    )


def _signature(result):
    outcome = result["outcome"]
    return (
        outcome["verified"],
        tuple(outcome["oids"]),
        outcome["obligations_total"],
        outcome["counters"]["queries"],
    )


class TestDroppedConnections:
    def test_client_retry_recovers_a_dropped_stream(self, tmp_path):
        """The server severs the connection mid event stream; the
        client reconnects, retries, and the result is byte-identical
        to the fault-free reference (single-flight released the memo
        slot, so the retry re-runs cleanly)."""
        reference = _reference("svt")
        sock = str(tmp_path / "serve.sock")
        plan = faults.install("serve-drop@4")
        with ServerThread(socket_path=sock):
            events = []
            with ServeClient(socket_path=sock, retries=3, backoff=0.01) as client:
                result = client.verify(spec="svt", on_event=events.append)
        assert _signature(result) == reference
        assert events, "the retried stream must deliver events"
        assert plan.snapshot() == [("serve-drop", "4", "")]

    def test_drop_fires_once_so_retries_succeed_without_spares(self, tmp_path):
        """One drop directive cannot starve a finite retry budget."""
        sock = str(tmp_path / "serve.sock")
        faults.install("serve-drop@4")
        with ServerThread(socket_path=sock):
            with ServeClient(socket_path=sock, retries=1, backoff=0.01) as client:
                assert client.verify(spec="svt")["outcome"]["verified"] is True


class TestCombinedPlan:
    def test_kill_drop_and_poison_leave_verdicts_intact(self, tmp_path):
        """The full chaos plan at once, against one server: the
        process-backend request survives its worker kill, the dropped
        connection is retried, the poisoned store row is quarantined —
        and every verdict matches the fault-free reference while
        ``health`` reports the damage."""
        references = {name: _reference(name) for name in ("svt", "noisy_max")}
        sock = str(tmp_path / "serve.sock")
        store = str(tmp_path / "store.sqlite")
        faults.install("serve-drop@4,store-poison@1,worker-kill@1")
        with ServerThread(socket_path=sock, store=store) as st:
            with ServeClient(socket_path=sock, retries=3, backoff=0.01) as client:
                # Serial request: eats the connection drop (retried) and
                # writes the store batch whose first row is poisoned.
                first = client.verify(spec="svt")
                assert _signature(first) == references["svt"]

                # Process request: its unit-1 worker is killed; the
                # supervisor recovers and the verdict holds.
                second = client.verify(
                    spec="noisy_max", config={"backend": "process", "jobs": 2}
                )
                assert _signature(second)[:3] == references["noisy_max"][:3]
                recovery = second["outcome"]["counters"].get("recovery")
                assert recovery and recovery["pool_restarts"] >= 1

                # Same spec, new fingerprint: the store lookup trips the
                # poisoned row, quarantines it, re-solves, verdict holds.
                third = client.verify(spec="svt", config={"jobs": 2})
                assert _signature(third)[:3] == references["svt"][:3]
                assert (
                    third["outcome"]["counters"]["store"]["invalid"] >= 1
                )

                health = client.health()
                assert health["status"] == "degraded"
                assert any("worker-pool" in c for c in health["causes"])
            assert st.server.counters["completed"] >= 3
