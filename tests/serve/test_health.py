"""The serve hardening surface: ``health``, admission control
(``overloaded`` + ``retry_after``) and client retry/backoff."""

import threading
import time

import pytest

from repro import faults
from repro.serve import ServeClient, ServeError, ServerThread, protocol


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.install(None)
    faults.reset()


class TestHealth:
    def test_health_ok_on_a_fresh_server(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with ServerThread(socket_path=sock):
            with ServeClient(socket_path=sock) as client:
                health = client.health()
                assert health["type"] == "health"
                assert health["status"] == "ok"
                assert health["causes"] == []
                assert health["uptime_seconds"] >= 0
                assert health["inflight"] == 0
                assert health["max_queue"] >= 1

    def test_health_degraded_after_worker_pool_restart(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        faults.install("worker-kill@*")
        with ServerThread(socket_path=sock) as st:
            with ServeClient(socket_path=sock) as client:
                result = client.verify(
                    spec="svt", config={"backend": "process", "jobs": 2}
                )
                assert result["outcome"]["verified"] is True
                recovery = result["outcome"]["counters"]["recovery"]
                assert recovery["pool_restarts"] >= 1

                health = client.health()
                assert health["status"] == "degraded"
                assert any("worker-pool" in c for c in health["causes"])

            # Incidents age out of the degradation window.
            st.server.degraded_window = 0.0
            with ServeClient(socket_path=sock) as client:
                assert client.health()["status"] == "ok"

    def test_health_degraded_when_store_is_memory_only(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        sock = str(tmp_path / "serve.sock")
        store = str(blocker / "store.sqlite")
        with ServerThread(socket_path=sock, store=store):
            with ServeClient(socket_path=sock) as client:
                result = client.verify(spec="svt")
                assert result["outcome"]["verified"] is True
                health = client.health()
                assert health["status"] == "degraded"
                assert any("obligation-store" in c for c in health["causes"])

    def test_health_draining_during_shutdown(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with ServerThread(socket_path=sock) as st:
            with ServeClient(socket_path=sock) as client:
                st.server._draining = True
                try:
                    assert client.health()["status"] == "draining"
                finally:
                    st.server._draining = False


class TestAdmissionControl:
    def test_overloaded_rejection_carries_retry_after(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        faults.install("solve-delay@*:1.0")
        with ServerThread(
            socket_path=sock, max_concurrent=1, max_queue=1
        ) as st:
            done = threading.Event()
            errors = []

            def blocker():
                try:
                    with ServeClient(socket_path=sock) as c:
                        c.verify(
                            spec="svt", config={"backend": "process", "jobs": 1}
                        )
                except Exception as err:  # surfaces in the main thread
                    errors.append(err)
                finally:
                    done.set()

            thread = threading.Thread(target=blocker)
            thread.start()
            try:
                deadline = time.monotonic() + 10
                while st.server._inflight == 0:
                    assert time.monotonic() < deadline, "blocker never admitted"
                    time.sleep(0.02)
                with ServeClient(socket_path=sock, retries=0) as client:
                    with pytest.raises(ServeError) as excinfo:
                        client.verify(spec="noisy_max")
                    assert excinfo.value.code == "overloaded"
                    assert excinfo.value.retry_after > 0
                # The typed code is part of the protocol catalogue.
                assert "overloaded" in protocol.ERROR_CODES
            finally:
                done.wait(60)
                thread.join()
            assert not errors
            assert st.server.counters["overloaded"] >= 1

    def test_client_retries_through_an_overloaded_window(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        faults.install("solve-delay@*:0.5")
        with ServerThread(socket_path=sock, max_concurrent=1, max_queue=1):
            done = threading.Event()

            def blocker():
                try:
                    with ServeClient(socket_path=sock) as c:
                        c.verify(
                            spec="svt", config={"backend": "process", "jobs": 1}
                        )
                finally:
                    done.set()

            thread = threading.Thread(target=blocker)
            thread.start()
            try:
                time.sleep(0.3)
                with ServeClient(
                    socket_path=sock, retries=8, backoff=0.2
                ) as client:
                    result = client.verify(spec="noisy_max")
                    assert result["outcome"]["verified"] is True
            finally:
                done.wait(60)
                thread.join()


class TestClientRetry:
    def test_shutdown_is_never_retried(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with ServerThread(socket_path=sock):
            with ServeClient(socket_path=sock) as client:
                ack = client.shutdown()
                assert ack["type"] == "shutdown-ack"

    def test_retry_budget_exhausts_on_dead_server(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with ServerThread(socket_path=sock) as st:
            client = ServeClient(socket_path=sock, retries=1, backoff=0.01)
        # Server gone: the request fails with a connection error after
        # the (cheap) retry budget, not an unbounded loop.
        start = time.monotonic()
        with pytest.raises(ServeError) as excinfo:
            client.ping()
        assert excinfo.value.code == "connection"
        assert time.monotonic() - start < 10
        client.close()

    def test_non_retryable_codes_surface_immediately(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        with ServerThread(socket_path=sock):
            with ServeClient(socket_path=sock) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.verify(spec="no_such_algorithm")
                assert excinfo.value.code == "unknown-spec"
