"""Unit tests for the concrete interpreter."""

import random

import pytest

from repro.algorithms import get
from repro.lang.parser import parse_command, parse_expr
from repro.semantics.distributions import laplace_pdf, laplace_sample
from repro.semantics.interpreter import (
    FixedNoise,
    Interpreter,
    RandomNoise,
    RuntimeFailure,
    run_function,
)


class TestDistributions:
    def test_laplace_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            laplace_sample(random.Random(0), 0.0)
        with pytest.raises(ValueError):
            laplace_pdf(0.0, -1.0)

    def test_laplace_moments(self):
        rng = random.Random(42)
        samples = [laplace_sample(rng, 2.0) for _ in range(50_000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert abs(mean) < 0.05
        # Var of Laplace(0, b) is 2b² = 8.
        assert abs(var - 8.0) < 0.5

    def test_pdf_normalisation(self):
        total = sum(laplace_pdf(x / 100.0, 1.0) for x in range(-2000, 2000)) / 100.0
        assert abs(total - 1.0) < 0.01


class TestExpressions:
    def setup_method(self):
        self.interp = Interpreter()

    def test_arithmetic(self):
        memory = {"x": 3.0, "y": 2.0}
        assert self.interp.eval(parse_expr("x * y - 1"), memory) == 5.0

    def test_ternary_short_circuits(self):
        memory = {"x": 1.0}
        assert self.interp.eval(parse_expr("x > 0 ? 10 : 1 / 0"), memory) == 10.0

    def test_boolean_short_circuit(self):
        memory = {"x": 0.0}
        # && short-circuits: the division never runs.
        assert self.interp.eval(parse_expr("x > 1 && 1 / x > 0"), memory) is False

    def test_division_by_zero_raises(self):
        with pytest.raises(RuntimeFailure):
            self.interp.eval(parse_expr("1 / x"), {"x": 0.0})

    def test_list_index(self):
        memory = {"q": (1.0, 2.0, 3.0), "i": 1.0}
        assert self.interp.eval(parse_expr("q[i]"), memory) == 2.0

    def test_index_out_of_bounds(self):
        with pytest.raises(RuntimeFailure):
            self.interp.eval(parse_expr("q[5]"), {"q": (1.0,)})

    def test_cons_prepends(self):
        memory = {"out": (2.0,)}
        assert self.interp.eval(parse_expr("1 :: out"), memory) == (1.0, 2.0)

    def test_unbound_variable(self):
        with pytest.raises(RuntimeFailure):
            self.interp.eval(parse_expr("ghost"), {})

    def test_hat_variables_read_from_memory(self):
        memory = {"x^o": 7.0}
        assert self.interp.eval(parse_expr("x^o"), memory) == 7.0


class TestCommands:
    def test_assignment_and_loop(self):
        interp = Interpreter()
        memory = {"i": 0.0, "total": 0.0}
        interp.exec(parse_command("while (i < 5) { total := total + i; i := i + 1; }"), memory)
        assert memory["total"] == 10.0

    def test_return_stops_execution(self):
        interp = Interpreter()
        result = interp.exec(parse_command("x := 1; return x; x := 2;"), {})
        assert result == 1.0

    def test_assert_failure(self):
        interp = Interpreter()
        with pytest.raises(RuntimeFailure):
            interp.exec(parse_command("assert(1 < 0);"), {})

    def test_assert_can_be_disabled(self):
        interp = Interpreter(check_asserts=False)
        interp.exec(parse_command("assert(1 < 0);"), {})

    def test_fixed_noise_replay(self):
        interp = Interpreter(noise=FixedNoise([1.5, -2.0]))
        memory = {"eps": 1.0}
        interp.exec(parse_command("eta := Lap(2 / eps), aligned, 0;"), memory)
        assert memory["eta"] == 1.5
        assert interp.samples[0].scale == 2.0

    def test_fixed_noise_exhaustion(self):
        interp = Interpreter(noise=FixedNoise([]))
        with pytest.raises(RuntimeFailure):
            interp.exec(parse_command("eta := Lap(1), aligned, 0;"), {})


class TestRunFunction:
    def test_noisy_max_runs(self):
        spec = get("noisy_max")
        result, interp = run_function(spec.function(), spec.example_inputs(), noise=RandomNoise(seed=3))
        assert result in range(5)
        assert len(interp.samples) == 5

    def test_interpreter_agrees_with_reference(self):
        """The AST interpreter and the plain-Python reference draw the
        same noise stream, so they must produce identical outputs."""
        for name in ("noisy_max", "svt", "num_svt", "gap_svt", "partial_sum", "prefix_sum", "smart_sum"):
            spec = get(name)
            inputs = spec.example_inputs()
            for seed in range(10):
                expected = spec.reference(random.Random(seed), **inputs)
                got, _ = run_function(spec.function(), inputs, noise=RandomNoise(seed=seed))
                if isinstance(expected, tuple):
                    assert len(got) == len(expected), (name, seed)
                    for a, b in zip(got, expected):
                        assert a == pytest.approx(b), (name, seed)
                else:
                    assert got == pytest.approx(expected), (name, seed)

    def test_missing_input_rejected(self):
        spec = get("noisy_max")
        with pytest.raises(RuntimeFailure):
            run_function(spec.function(), {"eps": 1.0})
