"""Property tests of the soundness theorem, executed (paper Section 5).

For every verified case study: on random adjacent inputs and random
noise, running the instrumented program and replaying the *aligned* run
(noise shifted by the annotation-derived alignment, with shadow resets)
on the adjacent database must give the **same output** at privacy cost
**within the budget**.  This is Theorem 2 with all the measure theory
evaluated pointwise.

The buggy variants must, on some executions, break one of the two
properties — otherwise they would be private.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import get
from repro.semantics.relational import validate_alignment

CORRECT = ["noisy_max", "svt", "num_svt", "gap_svt", "partial_sum", "prefix_sum", "smart_sum"]


def run_case(name, seed):
    spec = get(name)
    rng = random.Random(seed)
    inputs = dict(spec.example_inputs())
    # Randomise the query answers and, for the one-diff family, the ghosts.
    n = len(inputs["q"])
    inputs["q"] = tuple(rng.uniform(-3, 3) for _ in range(n))
    if "T" in inputs:
        inputs["T"] = rng.uniform(-1, 2)
    if "d" in inputs:
        inputs["d"] = float(rng.randrange(-1, n))
        inputs["delta"] = 0.0 if inputs["d"] < 0 else rng.uniform(-1, 1)
    hats = spec.adjacent_offsets(inputs, rng)
    noise = [rng.uniform(-4, 4) for _ in range(4 * n + 4)]
    checked = spec.checked()
    return validate_alignment(checked, inputs, hats, noise)


class TestAlignmentSoundness:
    @pytest.mark.parametrize("name", CORRECT)
    def test_outputs_match_and_cost_bounded(self, name):
        for seed in range(40):
            report = run_case(name, seed)
            assert report.outputs_match, (
                f"{name} seed {seed}: aligned run diverged "
                f"({report.original_output} vs {report.aligned_output})"
            )
            assert report.within_budget, (
                f"{name} seed {seed}: cost {report.cost} exceeds {report.budget}"
            )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_noisy_max_alignment_randomised(self, seed):
        report = run_case("noisy_max", seed)
        assert report.ok

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_gap_svt_alignment_randomised(self, seed):
        report = run_case("gap_svt", seed)
        assert report.ok


class TestNoisyMaxFigure2:
    """The concrete Figure 2 trace from the paper."""

    def test_paper_example(self):
        spec = get("noisy_max")
        q = (1.0, 2.0, 2.0, 4.0)
        inputs = {"eps": 1.0, "size": 4.0, "q": q}
        # D2 differs by +1 on q[0] and -1 on q[1] (paper Section 2.3).
        hats = {"q^o": (1.0, -1.0, 0.0, 0.0), "q^s": (1.0, -1.0, 0.0, 0.0)}
        noise = [1.0, 2.0, 1.0, 1.0]
        report = validate_alignment(spec.checked(), inputs, hats, list(noise))
        # On D1 the max is q[3] + 1 = 5 at index 3.
        assert report.original_output == 3
        # The selective alignment: identity for earlier samples (shadow),
        # +2 for the final max-setting sample — exactly Figure 2.
        assert report.aligned_noise == (1.0, 2.0, 1.0, 3.0)
        assert report.aligned_output == 3
        assert report.cost == pytest.approx(1.0)  # = eps

    def test_intermediate_max_alignment(self):
        # With only the first three queries the max is index 1 and the
        # alignment shifts *that* sample by 2 (Figure 2 upper part).
        spec = get("noisy_max")
        inputs = {"eps": 1.0, "size": 3.0, "q": (1.0, 2.0, 2.0)}
        hats = {"q^o": (1.0, -1.0, 0.0), "q^s": (1.0, -1.0, 0.0)}
        report = validate_alignment(spec.checked(), inputs, hats, [1.0, 2.0, 1.0])
        assert report.original_output == 1
        assert report.aligned_noise == (1.0, 4.0, 1.0)
        assert report.aligned_output == 1


class TestBuggyVariantsBreak:
    def test_bad_svt_variants_fail_somewhere(self):
        # For each buggy variant there must exist runs where the
        # purported alignment breaks (outputs differ or budget exceeded).
        for name in ("bad_svt_no_threshold_noise", "bad_svt_leaks_value", "bad_svt_no_budget"):
            spec = get(name)
            broken = 0
            for seed in range(60):
                rng = random.Random(seed)
                inputs = dict(spec.example_inputs())
                n = len(inputs["q"])
                inputs["q"] = tuple(rng.uniform(-3, 3) for _ in range(n))
                hats = spec.adjacent_offsets(inputs, rng)
                noise = [rng.uniform(-4, 4) for _ in range(3 * n + 3)]
                report = validate_alignment(spec.checked(), inputs, hats, noise)
                if not report.ok:
                    broken += 1
            assert broken > 0, f"{name}: alignment never broke in 60 runs"
