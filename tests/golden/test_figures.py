"""Golden tests: the transformed programs of the paper's figures.

Each test pins the full transformed output of a case study, in the shape
of the corresponding paper figure (Fig. 1 for Report Noisy Max, Fig. 6
for SVT, Fig. 10/11/12 for NumSVT / Partial Sum / Smart Sum).  The
golden text is our canonical pretty-printing; structural properties
asserted alongside (cost updates, asserts, shadow branch, hat
instrumentation) tie each line back to the figure.
"""

import pytest

from repro.algorithms import get
from repro.lang import ast
from repro.lang.parser import parse_expr
from repro.lang.pretty import pretty_command


def transformed(name):
    return get(name).target()


def body_text(name):
    return pretty_command(transformed(name).body)


class TestFigure1NoisyMax:
    GOLDEN = """\
v_eps := 0;
i := 0;
bq := 0;
max := 0;
bq^o := 0;
bq^s := 0;
while (i < size)
invariant v_eps <= eps;
invariant i == 0 && bq^o == 0 && bq^s == 0 || i >= 1 && 1 <= bq^o && -1 <= bq^s && bq^s <= 1;
{
    assert(i < size);
    havoc eta;
    v_eps := q[i] + eta > bq || i == 0 ? eps : v_eps;
    if (q[i] + eta > bq || i == 0) {
        assert(q[i] + q^o[i] + (eta + 2) > bq + bq^s || i == 0);
        max := i;
        bq^s := bq + bq^s - (q[i] + eta);
        bq := q[i] + eta;
        bq^o := q^o[i] + 2;
    } else {
        assert(!(q[i] + q^o[i] + eta > bq + bq^o || i == 0));
    }
    if (q[i] + q^s[i] + eta > bq + bq^s || i == 0) {
        bq^s := q[i] + q^s[i] + eta - bq;
    }
    i := i + 1;
}
assert(v_eps <= eps);
return max;"""

    def test_full_golden(self):
        assert body_text("noisy_max") == self.GOLDEN

    def test_cost_resets_on_shadow_switch(self):
        # Fig. 1 line 6: v_eps := Ω ? (0 + eps) : (v_eps + 0).
        assert "v_eps := q[i] + eta > bq || i == 0 ? eps : v_eps;" in self.GOLDEN

    def test_shadow_branch_present(self):
        # Fig. 1 lines 15-17: the shadow execution of the if.
        assert "q[i] + q^s[i] + eta > bq + bq^s" in self.GOLDEN

    def test_dead_max_shadow_store_eliminated(self):
        # The paper's figure omits max^s updates; our DSE removes them.
        assert "max^s" not in self.GOLDEN


class TestFigure6SVT:
    def test_structure(self):
        text = body_text("svt")
        # Fig. 6 line 2: the threshold sample costs eps/2 up front.
        assert "v_eps := v_eps + eps / 2;" in text
        # Fig. 6 line 6: per-query cost only above threshold.
        assert "v_eps := q[i] + eta2 >= Tt ? v_eps + 2 * eps / (4 * N) : v_eps;" in text
        # Fig. 6 lines 8/12: the branch alignment asserts.
        assert "assert(q[i] + q^o[i] + (eta2 + 2) >= Tt + 1);" in text
        assert "assert(!(q[i] + q^o[i] + eta2 >= Tt + 1));" in text
        # Aligned-only program: no shadow instrumentation at all.
        assert "^s" not in text

    def test_final_assert(self):
        assert "assert(v_eps <= eps);" in body_text("svt")


class TestFigure10NumSVT:
    def test_structure(self):
        text = body_text("num_svt")
        # Fig. 10 line 2: eps/3 for the threshold.
        assert "v_eps := v_eps + eps / 3;" in text
        # Fig. 10 line 10: the value-release sample pays |q^o[i]|·eps/(3N).
        assert "v_eps := v_eps + abs(-q^o[i])" in text or "v_eps := v_eps + abs(q^o[i])" in text

    def test_release_is_aligned(self):
        # The released value q[i] + eta3 has aligned distance 0, so no
        # assert guards the cons itself.
        target = transformed("num_svt")
        assert target.aligned_only


class TestFigure11PartialSum:
    GOLDEN_FRAGMENT = """\
while (i < size)
invariant sum^o == (i > d ? delta : 0);
{
    assert(i < size);
    sum := sum + q[i];
    sum^o := sum^o + q^o[i];
    i := i + 1;
}"""

    def test_loop_matches_figure(self):
        assert self.GOLDEN_FRAGMENT in body_text("partial_sum")

    def test_hat_initialised_before_loop(self):
        text = body_text("partial_sum")
        assert text.index("sum^o := 0;") < text.index("while")

    def test_final_cost(self):
        # Fig. 11 line 8: v_eps := v_eps + |sum^o| * eps.
        assert "v_eps := v_eps + abs(sum^o) * eps;" in body_text("partial_sum")


class TestFigure12SmartSum:
    def test_two_eps_budget(self):
        target = transformed("smart_sum")
        assert target.cost_bound == parse_expr("2 * eps")
        assert "assert(v_eps <= 2 * eps);" in pretty_command(target.body)

    def test_block_and_running_costs(self):
        text = body_text("smart_sum")
        # Fig. 12 line 6: block-close sample pays |sum^o + q^o[i]|·eps.
        assert "abs(-sum^o - q^o[i]) * eps" in text
        # Fig. 12 line 12: running sample pays |q^o[i]|·eps.
        assert "v_eps := v_eps + abs(q^o[i]) * eps;" in text

    def test_block_reset_instrumentation(self):
        # Fig. 12 line 10: sum^o := 0 when the block closes.
        text = body_text("smart_sum")
        assert "sum^o := 0;" in text
        assert "sum^o := sum^o + q^o[i];" in text


class TestGapSVT:
    def test_gap_release_costs_like_svt(self):
        text = body_text("gap_svt")
        # The alignment 1 - q^o[i] keeps the released gap identical, and
        # |1 - q^o[i]| <= 2 bounds the cost by the standard SVT cost.
        assert "abs(1 - q^o[i])" in text

    def test_then_assert_collapses_to_omega(self):
        # Aligned guard: q[i] + q^o[i] + eta2 + (1 - q^o[i]) >= Tt + 1
        # ⟺ q[i] + eta2 >= Tt, i.e. exactly Ω — so the then-branch assert
        # simplifies away entirely and only the else assert remains.
        text = body_text("gap_svt")
        assert "assert(!(q[i] + q^o[i] + eta2 >= Tt + 1));" in text


class TestStageTwoInvariants:
    @pytest.mark.parametrize("name", [
        "noisy_max", "svt", "num_svt", "gap_svt",
        "partial_sum", "prefix_sum", "smart_sum",
    ])
    def test_no_samples_survive_lowering(self, name):
        target = transformed(name)
        kinds = {type(c) for c in ast.command_iter(target.body)}
        assert ast.Sample not in kinds
        assert ast.Havoc in kinds

    @pytest.mark.parametrize("name", [
        "noisy_max", "svt", "num_svt", "gap_svt",
        "partial_sum", "prefix_sum", "smart_sum",
    ])
    def test_cost_var_initialised_and_asserted(self, name):
        text = body_text(name)
        assert text.startswith("v_eps := 0;")
        assert "assert(v_eps <=" in text
