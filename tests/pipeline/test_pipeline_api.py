"""End-to-end smoke tests for the staged :class:`repro.pipeline.Pipeline`.

Covers the acceptance surface of the staged API: per-stage runs with
timing/accounting, end-to-end verification of registry algorithms,
batch mode with demonstrable stage-level memoization, refutation of a
buggy SVT variant with a concrete counterexample, the legacy
``repro.pipeline()`` wrapper, and the ``python -m repro pipeline`` CLI.
"""

import json

import pytest

from repro import Pipeline, PipelineError, pipeline
from repro.algorithms import get
from repro.lang import ast
from repro.pipeline import STAGES, source_hash


SVT = get("svt")
NOISY_MAX = get("noisy_max")
BUGGY = get("bad_svt_no_budget")


class TestStages:
    def test_stage_order(self):
        assert STAGES == ("parse", "check", "lower_ir", "lower", "optimize", "verify")

    def test_run_stops_after_each_stage(self):
        pipe = Pipeline(memoize=False)
        for k, stage in enumerate(STAGES[:-1]):  # verify covered below
            run = pipe.run(SVT.source, stop_after=stage)
            assert list(run.stages) == list(STAGES[: k + 1])

    def test_unknown_stage_rejected(self):
        with pytest.raises(PipelineError):
            Pipeline().run(SVT.source, stop_after="explode")

    def test_parse_stage_artifact(self):
        run = Pipeline().run(SVT.source, stop_after="parse")
        assert run.function.name == "SVT"
        assert run.source_hash == source_hash(SVT.source)

    def test_lower_stage_lowers_samples(self):
        run = Pipeline().run(SVT.source, stop_after="lower")
        kinds = {type(c) for c in ast.command_iter(run.target.body)}
        assert ast.Sample not in kinds
        assert ast.Havoc in kinds

    def test_optimize_stage_removes_dead_shadow_stores(self):
        pipe = Pipeline()
        raw = pipe.run(NOISY_MAX.source, stop_after="lower").artifact("lower")
        optimized = pipe.run(NOISY_MAX.source, stop_after="optimize").target
        raw_stores = [
            c for c in ast.command_iter(raw.body)
            if isinstance(c, ast.Assign) and c.name == "max^s"
        ]
        assert raw_stores, "the raw lowering keeps the dead max^s stores"
        assert not [
            c for c in ast.command_iter(optimized.body)
            if isinstance(c, ast.Assign) and c.name == "max^s"
        ]

    def test_lower_ir_stage_builds_cfg(self):
        from repro.ir import ProgramIR

        run = Pipeline().run(SVT.source, stop_after="lower_ir")
        ir = run.ir
        assert isinstance(ir, ProgramIR)
        stats = ir.stats()
        assert stats["blocks"] > 1
        assert stats["loops"] == 1
        assert run.stages["lower_ir"].ir_stats == stats

    def test_lower_records_ir_pass_trail(self):
        run = Pipeline().run(SVT.source, stop_after="optimize")
        assert run.target.ir is not None
        assert run.target.ir.passes == (
            "fold-constant-guards",
            "lower-samples",
            "init-cost",
            "budget-assert",
            "dse-hats",
        )

    def test_function_def_input(self):
        run = Pipeline().run(SVT.function(), stop_after="check")
        assert run.checked.aligned_only


class TestEndToEnd:
    def test_registry_algorithms_verify(self):
        pipe = Pipeline()
        runs = pipe.run_many([SVT, NOISY_MAX])
        assert [r.name for r in runs] == ["SVT", "NoisyMax"]
        for run in runs:
            assert run.verified, run.describe()
            assert run.outcome.obligations_total > 0
            # Every stage ran and was accounted for.
            assert list(run.stages) == list(STAGES)
            assert run.solver_queries > 0

    def test_buggy_svt_refuted_with_counterexample(self):
        run = Pipeline().run(BUGGY.source, config=BUGGY.verification_config())
        assert run.verified is False
        assert run.outcome.failures
        assert all(f.arith_model is not None for f in run.outcome.failures)

    def test_legacy_wrapper_matches_staged_api(self):
        config = SVT.verification_config()
        legacy = pipeline(SVT.source, config)
        staged = Pipeline().run(SVT.source, config=config)
        assert legacy.outcome.verified and staged.verified
        assert legacy.target.body == staged.target.body
        assert legacy.checked.aligned_only == staged.checked.aligned_only


class TestMemoization:
    def test_repeated_run_skips_all_prefix_stages(self):
        pipe = Pipeline()
        first = pipe.run(SVT.source, config=SVT.verification_config())
        assert not any(r.cached for r in first.stages.values())
        second = pipe.run(SVT.source, config=SVT.verification_config())
        assert all(r.cached for r in second.stages.values())
        assert second.verified
        # Cached stages report zero marginal cost.
        assert second.stages["check"].seconds == 0.0

    def test_config_sweep_reuses_check_and_lower(self):
        """Different bindings re-verify but never re-check/re-lower."""
        pipe = Pipeline()
        pipe.run(SVT.source, config=SVT.verification_config())
        n1 = dict(SVT.fixed_bindings, N=1)
        from repro.verify.verifier import VerificationConfig

        sweep = pipe.run(
            SVT.source,
            config=VerificationConfig(
                mode="unroll", bindings=n1,
                assumptions=SVT.assumption_exprs(), unroll_limit=16,
            ),
        )
        assert sweep.stages["check"].cached
        assert sweep.stages["lower"].cached
        assert sweep.stages["optimize"].cached
        assert not sweep.stages["verify"].cached  # new config fingerprint
        assert sweep.verified

    def test_run_many_tallies_hits(self):
        pipe = Pipeline()
        pipe.run_many([SVT, NOISY_MAX])
        assert pipe.cache_hits["check"] == 0
        pipe.run_many([SVT, NOISY_MAX])
        assert pipe.cache_hits["check"] == 2
        assert pipe.cache_hits["lower"] == 2
        assert pipe.cache_hits["verify"] == 2

    def test_memoize_false_never_caches(self):
        pipe = Pipeline(memoize=False)
        pipe.run(SVT.source, stop_after="check")
        run = pipe.run(SVT.source, stop_after="check")
        assert not any(r.cached for r in run.stages.values())


class TestCLI:
    def _write(self, tmp_path, spec):
        path = tmp_path / f"{spec.name}.sdp"
        path.write_text(spec.source)
        return str(path)

    def _flags(self, spec):
        out = []
        for name, value in spec.fixed_bindings.items():
            out += ["--bind", f"{name}={value}"]
        for fact in spec.assumptions:
            out += ["--assume", fact]
        return out

    def test_pipeline_subcommand_prints_stage_timings(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["pipeline", self._write(tmp_path, SVT)] + self._flags(SVT))
        out = capsys.readouterr().out
        assert code == 0
        for stage in STAGES:
            assert stage in out
        assert "solver queries" in out
        assert "VERIFIED" in out

    def test_pipeline_subcommand_json(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["pipeline", "--json", self._write(tmp_path, SVT)] + self._flags(SVT)
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == "SVT"
        assert payload[0]["verified"] is True
        assert [s["stage"] for s in payload[0]["stages"]] == list(STAGES)

    def test_pipeline_subcommand_stage_flag(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["pipeline", "--stage", "check", self._write(tmp_path, NOISY_MAX)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "check" in out and "verify" not in out

    def test_pipeline_subcommand_buggy_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["pipeline", self._write(tmp_path, BUGGY)] + self._flags(BUGGY)
        )
        assert code == 1
        assert "REFUTED" in capsys.readouterr().out
