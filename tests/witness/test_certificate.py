"""Certificate serialization: canonical JSON, decode errors, and the
obligation-store round trip."""

import dataclasses
import json
import os

import pytest

from repro.algorithms import get
from repro.pipeline import Pipeline, spec_config
from repro.verify.store import ObligationStore
from repro.verify.verifier import prepare_generator, target_cfg, verify_target
from repro.witness import SCHEMA_VERSION, Certificate, WitnessError, validate


@pytest.fixture(scope="module")
def svt_certificates():
    """oid → Certificate for a witnessed SVT discharge (one solve pass)."""
    spec = get("svt")
    config = dataclasses.replace(spec_config(spec), witness=True)
    generator, checker = prepare_generator(spec.target(), config)
    failures = checker.discharge_stream(
        generator.stream(target_cfg(spec.target(), config))
    )
    assert not failures
    assert checker.certificates
    return checker


class TestCanonicalJson:
    def test_round_trip_is_identity(self, svt_certificates):
        for certificate in svt_certificates.certificates.values():
            text = certificate.to_json()
            again = Certificate.from_json(text)
            assert again.to_json() == text
            assert again == certificate

    def test_serialization_is_canonical(self, svt_certificates):
        # Sorted keys, no whitespace, exact rationals as "p/q" strings —
        # byte-stable across processes so fingerprints and tests can
        # compare texts directly.
        certificate = next(iter(svt_certificates.certificates.values()))
        text = certificate.to_json()
        data = json.loads(text)
        assert text == json.dumps(data, separators=(",", ":"), sort_keys=True)
        assert data["schema"] == SCHEMA_VERSION

    def test_oid_and_fingerprint_baked_without_mutation(self, svt_certificates):
        checker = svt_certificates
        oid = next(iter(checker.certificates))
        original = checker.certificates[oid]
        text = checker.witness_text(oid)
        bound = Certificate.from_json(text)
        assert bound.oid == oid
        assert bound.fingerprint == checker.store_fingerprint
        # The in-memory object (possibly shared across chunk members)
        # was not touched.
        assert original.oid is None or original.oid == oid

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "not json",
            "[]",
            '{"schema": 999}',
            '{"schema": 1}',
        ],
    )
    def test_malformed_text_is_a_decode_error(self, text):
        with pytest.raises(WitnessError) as err:
            Certificate.from_json(text)
        assert err.value.step == "decode"


class TestStoreRoundTrip:
    def test_witness_survives_persistence(self, tmp_path, svt_certificates):
        checker = svt_certificates
        store = ObligationStore(os.fspath(tmp_path / "store.sqlite"))
        fingerprint = checker.store_fingerprint
        rows = [
            (oid, "assert", "fn", True, "unsat", None, checker.witness_text(oid))
            for oid in checker.certificates
        ]
        store.record_many(fingerprint, rows)
        assert store.witness_count() == len(rows)
        for oid, *_ in rows:
            verdict = store.lookup(oid, fingerprint)
            assert verdict is not None and verdict.valid
            assert verdict.witness is not None
            certificate = Certificate.from_json(verdict.witness)
            assert certificate.oid == oid
            validate(certificate)

    def test_full_run_persists_one_witness_per_valid_oid(self, tmp_path):
        spec = get("svt")
        store_path = os.fspath(tmp_path / "store.sqlite")
        config = dataclasses.replace(
            spec_config(spec), store=store_path, witness=True
        )
        run = Pipeline().run(spec.source, config=config)
        assert run.outcome.verified
        store = ObligationStore(store_path)
        assert store.witness_count() == run.outcome.obligations_total
        assert store.stats()["witnesses"] == run.outcome.obligations_total
