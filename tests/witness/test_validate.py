"""The trusted validator: real certificates check, mutated ones don't.

Mutations cover the three ways a certificate can lie — a missing
premise (the proof no longer follows from what was asserted), a
perturbed Farkas coefficient (the linear combination no longer cancels
the variables), and a truncated derivation (unit propagation can no
longer refute the negated assumptions).
"""

import dataclasses
import json

import pytest

from repro.algorithms import get
from repro.pipeline import spec_config
from repro.verify.verifier import prepare_generator, target_cfg
from repro.witness import Certificate, WitnessError, validate


@pytest.fixture(scope="module")
def certificate():
    """One real certificate, chosen to exercise a lemma with entries."""
    spec = get("svt")
    config = dataclasses.replace(spec_config(spec), witness=True)
    generator, checker = prepare_generator(spec.target(), config)
    failures = checker.discharge_stream(
        generator.stream(target_cfg(spec.target(), config))
    )
    assert not failures
    for cert in checker.certificates.values():
        if any(event[0] == "lemma" and event[2] for event in cert.events):
            return cert
    raise AssertionError("no certificate with a nonempty Farkas lemma")


def mutate(certificate, fn):
    """Round-trip the certificate through JSON, edit, and re-parse."""
    data = json.loads(certificate.to_json())
    fn(data)
    return Certificate.from_json(json.dumps(data))


class TestAccepts:
    def test_real_certificate_validates(self, certificate):
        checked = validate(certificate)
        assert checked["inputs"] > 0
        assert checked["rup_steps"] >= 1

    def test_validation_is_pure(self, certificate):
        # Validating twice returns identical reports and leaves the
        # certificate unchanged (the kernel never mutates its input).
        before = certificate.to_json()
        assert validate(certificate) == validate(certificate)
        assert certificate.to_json() == before


class TestRejects:
    def test_dropped_premise(self, certificate):
        def drop(data):
            assert data["assumptions"], "fixture must carry assumptions"
            data["assumptions"] = data["assumptions"][:-1]

        with pytest.raises(WitnessError):
            validate(mutate(certificate, drop))

    def test_perturbed_farkas_coefficient(self, certificate):
        def perturb(data):
            for event in data["events"]:
                if event[0] == "lemma" and event[2]:
                    event[2][0][1] = str(7 + 3 * len(event[2]))
                    return
            raise AssertionError("no Farkas entries to perturb")

        with pytest.raises(WitnessError) as err:
            validate(mutate(certificate, perturb))
        assert err.value.step.startswith("lemma")

    def test_truncated_rup_derivation(self, certificate):
        def truncate(data):
            # Drop every learned/lemma step: the final RUP check must
            # then fail to refute the negated assumptions.
            data["events"] = [ev for ev in data["events"] if ev[0] == "input"]

        with pytest.raises(WitnessError) as err:
            validate(mutate(certificate, truncate))
        assert err.value.step == "goal"

    def test_negated_equality_literal_is_rejected(self, certificate):
        # The kernel's literal denotation has no sound reading for a
        # negated equality atom inside a Farkas combination; a
        # certificate using one must be rejected, not guessed at.
        def negate(data):
            for event in data["events"]:
                if event[0] == "lemma" and event[2]:
                    lit = event[2][0][0]
                    tag = str(abs(lit))
                    data["atoms"][tag]["op"] = "="
                    event[2][0][0] = -abs(lit)
                    return

        with pytest.raises(WitnessError):
            validate(mutate(certificate, negate))
