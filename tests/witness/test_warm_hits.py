"""Warm store hits are never trusted blindly: each witnessed hit is
re-validated by the trusted kernel, and a certificate that fails to
check degrades to a counted re-solve — including under the
``witness-corrupt`` fault site."""

import dataclasses
import os
import sqlite3

import pytest

from repro import faults
from repro.algorithms import get
from repro.pipeline import Pipeline
from repro.pipeline import spec_config
from repro.verify.store import ObligationStore
from repro.verify.verifier import verify_target


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.install(None)
    faults.reset()


def _witnessed_config(spec, store_path):
    return dataclasses.replace(
        spec_config(spec), store=os.fspath(store_path), witness=True
    )


class TestValidatedHits:
    def test_warm_run_validates_every_hit_with_zero_solves(self, tmp_path):
        spec = get("svt")
        config = _witnessed_config(spec, tmp_path / "store.sqlite")
        cold = verify_target(spec.target(), config)
        assert cold.verified and cold.store["writes"] == cold.obligations_total

        warm = verify_target(spec.target(), config)
        assert warm.verified
        assert warm.solve_calls == 0
        assert warm.store["hits"] == warm.obligations_total
        assert warm.store["validated_hits"] == warm.obligations_total
        assert warm.store["witness_rejects"] == 0
        # The re-validated certificates are collected again.
        assert warm.witnesses == warm.obligations_total

    def test_unwitnessed_runs_skip_validation(self, tmp_path):
        spec = get("svt")
        config = _witnessed_config(spec, tmp_path / "store.sqlite")
        verify_target(spec.target(), config)
        warm = verify_target(
            spec.target(), dataclasses.replace(config, witness=False)
        )
        assert warm.verified and warm.solve_calls == 0
        assert warm.store["validated_hits"] == 0


class TestRejectedWitnessDegradesToReSolve:
    def test_tampered_row_is_recounted_and_resolved(self, tmp_path):
        spec = get("svt")
        store_path = tmp_path / "store.sqlite"
        config = _witnessed_config(spec, store_path)
        cold = verify_target(spec.target(), config)

        # Corrupt one stored certificate on disk (valid JSON prefix cut).
        conn = sqlite3.connect(os.fspath(store_path))
        oid = conn.execute(
            "SELECT oid FROM obligations WHERE witness IS NOT NULL LIMIT 1"
        ).fetchone()[0]
        conn.execute(
            "UPDATE obligations SET witness = substr(witness, 1, 40) "
            "WHERE oid = ?",
            (oid,),
        )
        conn.commit()
        conn.close()

        warm = verify_target(spec.target(), config)
        assert warm.verified
        assert warm.store["witness_rejects"] == 1
        assert warm.store["validated_hits"] == cold.obligations_total - 1
        # The rejected entry was re-solved, not trusted ...
        assert warm.solve_calls >= 1
        # ... and the clean run re-persisted a fresh certificate.
        store = ObligationStore(os.fspath(store_path))
        assert store.witness_count() == cold.obligations_total

    def test_witness_corrupt_fault_site(self, tmp_path):
        """The chaos seam: ``witness-corrupt@N`` serves the Nth
        witnessed hit truncated, without touching the row on disk."""
        spec = get("svt")
        store_path = tmp_path / "store.sqlite"
        config = _witnessed_config(spec, store_path)
        cold = verify_target(spec.target(), config)
        before = ObligationStore(os.fspath(store_path)).witness_count()

        faults.install("witness-corrupt@3")
        warm = verify_target(spec.target(), config)
        assert warm.verified
        assert warm.store["witness_rejects"] == 1
        assert warm.store["validated_hits"] == cold.obligations_total - 1
        assert [(f.site, f.key) for f in faults.active().trail] == [
            ("witness-corrupt", "3")
        ]
        # The disk row was never harmed — only the served copy.
        assert ObligationStore(os.fspath(store_path)).witness_count() == before

    def test_pipeline_fingerprint_separates_witnessed_runs(self, tmp_path):
        # A witnessed run and a plain run of the same source must not
        # share a stage-memo entry: their outcomes differ observably
        # (witness counts, validated-hit traffic).
        spec = get("svt")
        pipe = Pipeline()
        config = _witnessed_config(spec, tmp_path / "store.sqlite")
        witnessed = pipe.run(spec.source, config=config)
        plain = pipe.run(
            spec.source, config=dataclasses.replace(config, witness=False)
        )
        assert witnessed.outcome.witnesses == witnessed.outcome.obligations_total
        assert plain.outcome.witnesses is None
        assert not plain.stages["verify"].cached
