"""The witness subsystem's global contract, over the whole registry:

* emission is observationally free — verdicts and every solver counter
  are identical with witnesses on and off, in both regimes;
* every valid obligation of every Table-1 algorithm yields a
  certificate, and every certificate passes the trusted validator;
* the contract holds off the serial path too (process backend).
"""

import dataclasses

import pytest

from repro.algorithms import all_specs, get
from repro.pipeline import spec_config
from repro.verify.verifier import verify_target
from repro.witness import validate

CORRECT = [s.name for s in all_specs(include_buggy=False)]
BUGGY = [s.name for s in all_specs() if not s.expect_verified]


def _counters(outcome):
    return (
        outcome.verified,
        outcome.obligations_total,
        outcome.solver_queries,
        outcome.cache_hits,
        outcome.solve_calls,
        outcome.context_pushes,
        outcome.context_pops,
        outcome.oids,
    )


def _run(spec, witness, **overrides):
    config = dataclasses.replace(spec_config(spec), witness=witness, **overrides)
    return verify_target(spec.target(), config)


class TestEmissionIsFree:
    @pytest.mark.parametrize("name", CORRECT)
    def test_unroll_regime_counters_unchanged(self, name):
        spec = get(name)
        plain = _run(spec, witness=False)
        witnessed = _run(spec, witness=True)
        assert _counters(plain) == _counters(witnessed)
        assert plain.witnesses is None
        assert witnessed.witnesses == witnessed.obligations_total

    @pytest.mark.parametrize("name", CORRECT)
    def test_invariant_regime_counters_unchanged(self, name):
        spec = get(name)
        config = dataclasses.replace(
            spec_config(spec), mode="invariant", bindings={},
        )
        plain = verify_target(spec.target(), config)
        witnessed = verify_target(
            spec.target(), dataclasses.replace(config, witness=True)
        )
        assert _counters(plain) == _counters(witnessed)
        assert witnessed.verified

    @pytest.mark.parametrize("name", BUGGY)
    def test_refutations_unchanged_and_unwitnessed(self, name):
        spec = get(name)
        plain = _run(spec, witness=False)
        witnessed = _run(spec, witness=True)
        assert not witnessed.verified
        assert _counters(plain) == _counters(witnessed)
        refuted = {f.obligation.oid for f in witnessed.failures}
        assert witnessed.witnesses == witnessed.obligations_total - len(refuted)


class TestEveryCertificateValidates:
    @pytest.mark.parametrize("name", CORRECT)
    def test_full_coverage_serial(self, name):
        from repro.verify.verifier import prepare_generator, target_cfg

        spec = get(name)
        config = dataclasses.replace(spec_config(spec), witness=True)
        generator, checker = prepare_generator(spec.target(), config)
        failures = checker.discharge_stream(
            generator.stream(target_cfg(spec.target(), config))
        )
        assert not failures
        oids = {ob.oid for ob in generator.obligations}
        assert set(checker.certificates) == oids
        for certificate in checker.certificates.values():
            validate(certificate)

    def test_process_backend_matches_serial(self):
        spec = get("svt")
        serial = _run(spec, witness=True)
        process = _run(spec, witness=True, backend="process", jobs=2)
        assert process.verified
        assert process.witnesses == serial.witnesses == serial.obligations_total
