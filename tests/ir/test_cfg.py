"""Unit and property tests for the CFG-based program IR."""

import pytest

from repro.algorithms import all_specs
from repro.ir import (
    ast_to_cfg,
    cfg_to_ast,
    map_expr,
    map_statements,
    statement_kind,
    statement_reads,
)
from repro.ir.cfg import Branch, Exit, IRError, Jump, LoopHeader, dump
from repro.lang import ast
from repro.lang.parser import parse_command, parse_expr
from repro.lang.pretty import pretty_command


def roundtrip(source: str) -> None:
    cmd = parse_command(source)
    back = cfg_to_ast(ast_to_cfg(cmd))
    assert pretty_command(back) == pretty_command(ast.seq(cmd))


class TestRoundTrip:
    """``cfg_to_ast ∘ ast_to_cfg`` is the identity up to seq-normal form."""

    def test_straight_line(self):
        roundtrip("x := 1; y := x + 1; return y;")

    def test_if_with_else(self):
        roundtrip("if (x > 0) { y := 1; } else { y := 2; } z := y;")

    def test_if_without_else(self):
        roundtrip("if (x > 0) { y := 1; } z := y;")

    def test_nested_branches(self):
        roundtrip(
            "if (a > 0) { if (b > 0) { x := 1; } else { x := 2; } } else { x := 3; }"
        )

    def test_loop_with_invariants(self):
        roundtrip(
            "i := 0; while (i < n) invariant i >= 0; { i := i + 1; } return i;"
        )

    def test_nested_loops(self):
        roundtrip(
            "i := 0; while (i < n) { j := 0; while (j < i) { j := j + 1; } i := i + 1; }"
        )

    def test_branch_inside_loop(self):
        roundtrip(
            "while (i < n) { if (q[i] > 0) { c := c + 1; } else { c := c; } i := i + 1; }"
        )

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_registry_source_bodies(self, spec):
        body = spec.function().body
        assert pretty_command(cfg_to_ast(ast_to_cfg(body))) == pretty_command(ast.seq(body))

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_registry_checked_bodies(self, spec):
        body = spec.checked().body
        assert pretty_command(cfg_to_ast(ast_to_cfg(body))) == pretty_command(ast.seq(body))

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
    def test_registry_target_bodies(self, spec):
        body = spec.target().body
        assert pretty_command(cfg_to_ast(ast_to_cfg(body))) == pretty_command(ast.seq(body))


class TestStructure:
    def test_single_block(self):
        cfg = ast_to_cfg(parse_command("x := 1; return x;"))
        assert cfg.stats() == {"blocks": 1, "edges": 0, "loops": 0}
        assert isinstance(cfg.block(cfg.entry).term, Exit)

    def test_branch_makes_diamond(self):
        cfg = ast_to_cfg(parse_command("if (c > 0) { x := 1; } else { x := 2; }"))
        term = cfg.block(cfg.entry).term
        assert isinstance(term, Branch)
        join = cfg.join_of(cfg.entry)
        assert cfg.block(term.then).term == Jump(join)
        assert cfg.block(term.orelse).term == Jump(join)
        assert cfg.stats() == {"blocks": 4, "edges": 4, "loops": 0}

    def test_empty_else_branches_to_join(self):
        cfg = ast_to_cfg(parse_command("if (c > 0) { x := 1; }"))
        term = cfg.block(cfg.entry).term
        assert term.orelse == cfg.join_of(cfg.entry)

    def test_loop_header_carries_invariants(self):
        cfg = ast_to_cfg(
            parse_command("while (i < n) invariant i >= 0; { i := i + 1; }")
        )
        ((_, header),) = list(cfg.loop_headers())
        assert isinstance(header, LoopHeader)
        assert header.invariants == (parse_expr("i >= 0"),)
        assert header.body.stats()["blocks"] == 1

    def test_assigned_names_matches_ast(self):
        cmd = parse_command(
            "havoc a; while (i < n) { b := 1; eta := Lap(1), aligned, 0; i := i + 1; }"
        )
        assert ast_to_cfg(cmd).assigned_names() == ast.assigned_vars(cmd)

    def test_predecessors(self):
        cfg = ast_to_cfg(parse_command("if (c > 0) { x := 1; } else { x := 2; }"))
        join = cfg.join_of(cfg.entry)
        term = cfg.block(cfg.entry).term
        assert set(cfg.predecessors(join)) == {term.then, term.orelse}

    def test_rpo_starts_at_entry(self):
        cfg = ast_to_cfg(parse_command("if (c > 0) { x := 1; } y := 2;"))
        order = cfg.rpo()
        assert order[0] == cfg.entry
        assert order.index(cfg.join_of(cfg.entry)) > order.index(cfg.block(cfg.entry).term.then)

    def test_non_simple_statement_rejected(self):
        cfg = ast_to_cfg(parse_command("x := 1;"))
        with pytest.raises(IRError):
            cfg.block(cfg.entry).append(ast.If(ast.TRUE, ast.Skip()))

    def test_dump_mentions_blocks_and_loops(self):
        cfg = ast_to_cfg(parse_command("while (i < n) { i := i + 1; }"))
        text = dump(cfg)
        assert "bb0 (entry)" in text
        assert "loop i < n" in text


class TestVisitors:
    def test_statement_kind_table(self):
        assert statement_kind(parse_command("x := 1;")) == "assign"
        assert statement_kind(parse_command("havoc x;")) == "havoc"
        assert statement_kind(parse_command("assert(x > 0);")) == "assert_"

    def test_statement_reads(self):
        sample = parse_command("eta := Lap(1 / eps), q[i] > 0 ? aligned : shadow, 2;")
        reads = statement_reads(sample)
        assert parse_expr("1 / eps") in reads
        assert parse_expr("q[i] > 0") in reads
        assert parse_expr("2") in reads
        assert statement_reads(parse_command("havoc x;")) == ()

    def test_map_expr_replaces_nodes(self):
        expr = parse_expr("x + y * x")
        swapped = map_expr(
            expr, lambda e: ast.Var("z") if e == ast.Var("x") else None
        )
        assert swapped == parse_expr("z + y * z")

    def test_map_expr_identity_preserves_object(self):
        expr = parse_expr("a + b < c")
        assert map_expr(expr, lambda e: None) is expr

    def test_map_statements_rewrites_in_loops(self):
        cfg = ast_to_cfg(parse_command("while (i < n) { x^s := 1; i := i + 1; }"))
        out = map_statements(
            cfg,
            lambda s: None if statement_kind(s) == "assign" and s.name == "x^s" else s,
        )
        text = pretty_command(cfg_to_ast(out))
        assert "x^s" not in text
        assert "i := i + 1" in text

    def test_map_statements_expands_to_sequences(self):
        cfg = ast_to_cfg(parse_command("x := 1;"))
        out = map_statements(
            cfg, lambda s: (s, ast.Assert(ast.BinOp(">", ast.Var("x"), ast.ZERO)))
        )
        assert pretty_command(cfg_to_ast(out)) == "x := 1;\nassert(x > 0);"
