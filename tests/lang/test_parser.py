"""Unit tests for the ShadowDP parser (paper Figure 3 syntax)."""

from fractions import Fraction

import pytest

from repro.lang import ast
from repro.lang import builder as b
from repro.lang.parser import ParseError, parse_command, parse_expr, parse_function


class TestExpressions:
    def test_number(self):
        assert parse_expr("3") == b.num(3)

    def test_decimal(self):
        assert parse_expr("2.5") == b.num(Fraction(5, 2))

    def test_booleans(self):
        assert parse_expr("true") == ast.TRUE
        assert parse_expr("false") == ast.FALSE

    def test_variable(self):
        assert parse_expr("bq") == b.var("bq")

    def test_hat_variables(self):
        assert parse_expr("q^o") == b.hat("q", ast.ALIGNED)
        assert parse_expr("q^s") == b.hat("q", ast.SHADOW)

    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + 2 * 3") == b.add(1, b.mul(2, 3))

    def test_precedence_add_over_cmp(self):
        assert parse_expr("x + 1 < y") == b.lt(b.add(b.var("x"), 1), b.var("y"))

    def test_precedence_cmp_over_and(self):
        expected = b.and_(b.lt(b.var("x"), 1), b.gt(b.var("y"), 2))
        assert parse_expr("x < 1 && y > 2") == expected

    def test_precedence_and_over_or(self):
        expected = b.or_(b.var("a"), b.and_(b.var("b"), b.var("c")))
        assert parse_expr("a || b && c") == expected

    def test_left_associativity_of_sub(self):
        assert parse_expr("a - b - c") == b.sub(b.sub(b.var("a"), b.var("b")), b.var("c"))

    def test_unary_minus(self):
        assert parse_expr("-x") == b.neg(b.var("x"))

    def test_unary_not(self):
        assert parse_expr("!(x < 1)") == b.not_(b.lt(b.var("x"), 1))

    def test_ternary(self):
        expected = b.ite(b.gt(b.var("x"), 0), 2, 0)
        assert parse_expr("x > 0 ? 2 : 0") == expected

    def test_nested_ternary_right_assoc(self):
        parsed = parse_expr("a > 0 ? 1 : b > 0 ? 2 : 3")
        assert isinstance(parsed, ast.Ternary)
        assert isinstance(parsed.orelse, ast.Ternary)

    def test_indexing(self):
        assert parse_expr("q[i]") == b.index(b.var("q"), b.var("i"))

    def test_hat_indexing(self):
        assert parse_expr("q^o[i]") == b.index(b.hat("q"), b.var("i"))

    def test_cons(self):
        assert parse_expr("x :: out") == b.cons(b.var("x"), b.var("out"))

    def test_cons_of_arith(self):
        expected = b.cons(b.add(b.var("q"), b.var("e")), b.var("out"))
        assert parse_expr("q + e :: out") == expected

    def test_abs(self):
        assert parse_expr("abs(x - y)") == b.abs_(b.sub(b.var("x"), b.var("y")))

    def test_forall(self):
        parsed = parse_expr("forall i :: q^o[i] <= 1")
        assert parsed == b.forall("i", b.le(b.index(b.hat("q"), b.var("i")), 1))

    def test_parenthesised(self):
        assert parse_expr("(x + 1) * 2") == b.mul(b.add(b.var("x"), 1), 2)

    def test_division(self):
        assert parse_expr("2 / eps") == b.div(2, b.var("eps"))

    def test_noisy_max_guard(self):
        parsed = parse_expr("q[i] + eta > bq || i == 0")
        expected = b.or_(
            b.gt(b.add(b.index(b.var("q"), b.var("i")), b.var("eta")), b.var("bq")),
            b.eq(b.var("i"), 0),
        )
        assert parsed == expected

    def test_junk_after_expr_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("x + ")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("")


class TestCommands:
    def test_skip(self):
        assert parse_command("skip;") == ast.Skip()

    def test_assign(self):
        assert parse_command("x := 1;") == b.assign("x", 1)

    def test_sequence_flattens(self):
        cmd = parse_command("x := 1; y := 2; z := 3;")
        assert isinstance(cmd, ast.Seq)
        assert len(cmd.commands) == 3

    def test_if_without_else(self):
        cmd = parse_command("if (x > 0) { y := 1; }")
        assert cmd == b.if_(b.gt(b.var("x"), 0), b.assign("y", 1))

    def test_if_else(self):
        cmd = parse_command("if (x > 0) { y := 1; } else { y := 2; }")
        assert cmd.orelse == b.assign("y", 2)

    def test_else_if_chain(self):
        cmd = parse_command("if (a) { x := 1; } else if (b) { x := 2; } else { x := 3; }")
        assert isinstance(cmd.orelse, ast.If)
        assert cmd.orelse.orelse == b.assign("x", 3)

    def test_while(self):
        cmd = parse_command("while (i < size) { i := i + 1; }")
        assert isinstance(cmd, ast.While)
        assert cmd.invariants == ()

    def test_while_with_invariants(self):
        cmd = parse_command(
            "while (i < size) invariant v_eps <= eps; invariant i >= 0; { i := i + 1; }"
        )
        assert len(cmd.invariants) == 2

    def test_return(self):
        assert parse_command("return max;") == b.ret(b.var("max"))

    def test_sample_constant_selector(self):
        cmd = parse_command("eta := Lap(2 / eps), aligned, 1;")
        assert cmd == b.sample("eta", b.div(2, b.var("eps")), ast.SELECT_ALIGNED, 1)

    def test_sample_conditional_selector(self):
        cmd = parse_command("eta := Lap(2 / eps), x > 0 ? shadow : aligned, x > 0 ? 2 : 0;")
        assert isinstance(cmd.selector, ast.SelectCond)
        assert cmd.selector.then == ast.SELECT_SHADOW
        assert cmd.selector.orelse == ast.SELECT_ALIGNED

    def test_target_commands(self):
        cmd = parse_command("havoc eta; assert(v_eps <= eps); assume(i >= 0);")
        assert isinstance(cmd, ast.Seq)
        kinds = [type(c) for c in cmd.commands]
        assert kinds == [ast.Havoc, ast.Assert, ast.Assume]

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_command("x := 1")


class TestTypes:
    def test_plain_num_defaults_to_zero_distances(self):
        fn = parse_function(
            "function F(x: num) returns y: num<0,0> { y := x; return y; }"
        )
        assert fn.params[0].type == ast.NumType(ast.ZERO, ast.ZERO)

    def test_star_distances(self):
        fn = parse_function(
            "function F(q: list num<*,*>) returns y: num<0,0> { y := 0; return y; }"
        )
        assert fn.params[0].type == ast.ListType(ast.NumType(ast.STAR, ast.STAR))

    def test_dont_care_distance_is_star(self):
        fn = parse_function(
            "function F(x: num) returns y: num<0,-> { y := 0; return y; }"
        )
        assert fn.ret_type == ast.NumType(ast.ZERO, ast.STAR)

    def test_negative_constant_distance(self):
        fn = parse_function(
            "function F(x: num<-1,0>) returns y: num<0,0> { y := 0; return y; }"
        )
        assert fn.params[0].type.aligned == b.num(-1)

    def test_bool_type(self):
        fn = parse_function(
            "function F(x: bool) returns y: bool { y := x; return y; }"
        )
        assert fn.params[0].type == ast.BoolType()


class TestFunctions:
    NOISY_MAX = """
    function NoisyMax(eps: num<0,0>, size: num<0,0>, q: list num<*,*>)
    returns max: num<0,*>
    precondition forall k :: -1 <= q^o[k] && q^o[k] <= 1 && q^s[k] == q^o[k];
    define Omega = q[i] + eta > bq || i == 0;
    {
        i := 0; bq := 0; max := 0;
        while (i < size) {
            eta := Lap(2 / eps), Omega ? shadow : aligned, Omega ? 2 : 0;
            if (Omega) {
                max := i;
                bq := q[i] + eta;
            }
            i := i + 1;
        }
        return max;
    }
    """

    def test_noisy_max_parses(self):
        fn = parse_function(self.NOISY_MAX)
        assert fn.name == "NoisyMax"
        assert fn.param_names() == ("eps", "size", "q")
        assert fn.ret_name == "max"

    def test_macro_expansion(self):
        fn = parse_function(self.NOISY_MAX)
        omega = parse_expr("q[i] + eta > bq || i == 0")
        # The macro name must no longer occur anywhere.
        for cmd in ast.command_iter(fn.body):
            if isinstance(cmd, ast.If):
                assert cmd.cond == omega
            if isinstance(cmd, ast.Sample):
                assert cmd.align == ast.Ternary(omega, b.num(2), b.num(0))
                assert cmd.selector == b.select_cond(omega, ast.SELECT_SHADOW, ast.SELECT_ALIGNED)

    def test_default_cost_bound_is_eps(self):
        fn = parse_function(self.NOISY_MAX)
        assert fn.cost_bound == b.var("eps")

    def test_explicit_cost_bound(self):
        fn = parse_function(
            """
            function F(eps: num) returns y: num<0,0>
            costbound 2 * eps;
            { y := 0; return y; }
            """
        )
        assert fn.cost_bound == b.mul(2, b.var("eps"))

    def test_precondition_default_true(self):
        fn = parse_function("function F(x: num) returns y: num { y := 0; return y; }")
        assert fn.precondition == ast.TRUE

    def test_macros_can_reference_macros(self):
        fn = parse_function(
            """
            function F(x: num) returns y: num
            define A = x + 1;
            define B = A * 2;
            { y := B; return y; }
            """
        )
        body = fn.body
        assert body.commands[0] == b.assign("y", b.mul(b.add(b.var("x"), 1), 2))

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_function("function F(x: num) returns y: num { y := 0; return y; } extra")
