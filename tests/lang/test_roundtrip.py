"""Property tests: pretty-printing round-trips through the parser."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast
from repro.lang.parser import parse_command, parse_expr, parse_function
from repro.lang.pretty import pretty_command, pretty_expr, pretty_function

# ---------------------------------------------------------------------------
# Expression generators
# ---------------------------------------------------------------------------

_names = st.sampled_from(["x", "y", "bq", "eta", "i", "size", "eps", "count"])
_list_names = st.sampled_from(["q", "out"])


def _leaf():
    rationals = st.builds(
        Fraction,
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=10),
    )
    return st.one_of(
        st.builds(ast.Real, rationals),
        st.just(ast.TRUE),
        st.just(ast.FALSE),
        st.builds(ast.Var, _names),
        st.builds(ast.Hat, _names, st.sampled_from(list(ast.VERSIONS))),
    )


def _numeric_extend(children):
    return st.one_of(
        st.builds(ast.Neg, children),
        st.builds(ast.Abs, children),
        st.builds(lambda op, a, b: ast.BinOp(op, a, b), st.sampled_from(["+", "-", "*", "/"]), children, children),
        st.builds(ast.Ternary, children, children, children),
        st.builds(lambda a, b: ast.Index(ast.Var("q"), ast.BinOp("+", a, b)), children, children),
        st.builds(lambda op, a, b: ast.BinOp(op, a, b), st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), children, children),
        st.builds(lambda op, a, b: ast.BinOp(op, a, b), st.sampled_from(["&&", "||"]), children, children),
        st.builds(ast.Not, children),
    )


expressions = st.recursive(_leaf(), _numeric_extend, max_leaves=12)


class TestExprRoundTrip:
    @given(expressions)
    @settings(max_examples=300)
    def test_parse_of_pretty_is_a_retraction(self, expr):
        # The parser folds literal negation/division (e.g. `1 / 2` is the
        # constant 1/2), so parse∘pretty normalises once and is then the
        # identity on its own image.
        normal = parse_expr(pretty_expr(expr))
        assert parse_expr(pretty_expr(normal)) == normal

    def test_specific_tricky_cases(self):
        cases = [
            "a - (b - c)",
            "-(x + 1)",
            "(a || b) && c",
            "!(a && b)",
            "x < (y < 1 ? 1 : 0)",
            "(q[i] + eta > bq || i == 0) ? 2 : 0",
            "abs(-1 / 2)",
            "q^o[i + 1] :: out",
        ]
        for text in cases:
            expr = parse_expr(text)
            assert parse_expr(pretty_expr(expr)) == expr, text


class TestCommandRoundTrip:
    CASES = [
        "skip;",
        "x := q[i] + eta;",
        "eta := Lap(2 / eps), aligned, 1;",
        "eta := Lap(2 / eps), q[i] + eta > bq ? shadow : aligned, q[i] + eta > bq ? 2 : 0;",
        "if (x > 0) { y := 1; } else { y := 2; }",
        "while (i < size) invariant v_eps <= eps; { i := i + 1; }",
        "havoc eta; assert(v_eps <= eps); assume(i >= 0);",
        "if (a > 0) { if (b > 0) { x := 1; } } else { skip; }",
        "out := q[i] + eta - T :: out;",
        "return max;",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_round_trip(self, source):
        cmd = parse_command(source)
        assert parse_command(pretty_command(cmd)) == cmd


class TestFunctionRoundTrip:
    def test_noisy_max_round_trip(self):
        from tests.lang.test_parser import TestFunctions

        fn = parse_function(TestFunctions.NOISY_MAX)
        assert parse_function(pretty_function(fn)) == fn

    def test_costbound_round_trip(self):
        src = """
        function F(eps: num, x: num<1,0>) returns y: num<0,->
        precondition x >= 0;
        costbound 2 * eps;
        { y := x; return y; }
        """
        fn = parse_function(src)
        assert parse_function(pretty_function(fn)) == fn
