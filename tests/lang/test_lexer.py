"""Unit tests for the ShadowDP lexer."""

from fractions import Fraction

import pytest

from repro.lang.lexer import LexError, Lexer, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"

    def test_whitespace_only(self):
        assert kinds("  \t\n  ") == ["EOF"]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "NUMBER"
        assert tokens[0].value == Fraction(42)

    def test_decimal_literal_is_exact(self):
        tokens = tokenize("0.5")
        assert tokens[0].value == Fraction(1, 2)

    def test_decimal_requires_digits_after_point(self):
        # `1.` lexes as the number 1 followed by an error on `.`
        with pytest.raises(LexError):
            tokenize("1.")

    def test_identifier(self):
        tokens = tokenize("bq_2")
        assert tokens[0].kind == "IDENT"
        assert tokens[0].value == "bq_2"

    def test_keywords_are_distinguished(self):
        tokens = tokenize("while whilee")
        assert tokens[0].kind == "KEYWORD"
        assert tokens[1].kind == "IDENT"

    def test_all_keywords(self):
        for kw in ("function", "returns", "precondition", "if", "else", "Lap",
                   "aligned", "shadow", "forall", "invariant", "havoc"):
            assert tokenize(kw)[0].kind == "KEYWORD", kw


class TestHatVariables:
    def test_aligned_hat(self):
        tokens = tokenize("q^o")
        assert tokens[0].kind == "HAT"
        assert tokens[0].value == ("q", "o")

    def test_shadow_hat(self):
        tokens = tokenize("bq^s")
        assert tokens[0].value == ("bq", "s")

    def test_bad_hat_suffix_rejected(self):
        with pytest.raises(LexError):
            tokenize("q^x")

    def test_hat_suffix_must_be_single_letter(self):
        with pytest.raises(LexError):
            tokenize("q^out")

    def test_hat_followed_by_index(self):
        toks = tokenize("q^o[i]")
        assert [t.kind for t in toks] == ["HAT", "OP", "IDENT", "OP", "EOF"]


class TestOperators:
    def test_multichar_operators_win(self):
        assert values(":= :: <= >= == != && ||") == [
            ":=", "::", "<=", ">=", "==", "!=", "&&", "||",
        ]

    def test_single_char_operators(self):
        assert values("( ) { } [ ] < > + - * / ? : ; , ! =") == [
            "(", ")", "{", "}", "[", "]", "<", ">", "+", "-", "*", "/",
            "?", ":", ";", ",", "!", "=",
        ]

    def test_adjacent_operators(self):
        assert values("x:=y") == ["x", ":=", "y"]

    def test_cons_vs_colon(self):
        assert values("a::b") == ["a", "::", "b"]
        assert values("a : b") == ["a", ":", "b"]


class TestCommentsAndPositions:
    def test_hash_comment(self):
        assert kinds("x # comment\n y") == ["IDENT", "IDENT", "EOF"]

    def test_slash_comment(self):
        assert kinds("x // comment\n y") == ["IDENT", "IDENT", "EOF"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("x\n  y")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError) as err:
            tokenize("x @ y")
        assert "line 1" in str(err.value)

    def test_lexer_is_a_stream(self):
        lexer = Lexer("a b")
        assert lexer.next_token().value == "a"
        assert lexer.next_token().value == "b"
        assert lexer.next_token().kind == "EOF"
        assert lexer.next_token().kind == "EOF"
