"""Legacy setup shim for the src layout.

The evaluation environment is offline and has no `wheel` package, so the
PEP 517 editable path (`bdist_wheel`) is unavailable.  This shim lets
`pip install -e . --no-use-pep517` (and plain `python setup.py develop`)
work using setuptools' classic develop mode.  Test configuration lives
in pyproject.toml (`[tool.pytest.ini_options]` adds src/ to the import
path, so `python -m pytest` needs no PYTHONPATH export).
"""

from setuptools import find_packages, setup

setup(
    name="repro-shadowdp",
    version="1.1.0",
    description=(
        "Reproduction of 'Proving Differential Privacy with Shadow "
        "Execution' (PLDI 2019): the ShadowDP type system, a from-scratch "
        "QF_LRA solver, and a staged verification pipeline"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
