"""Legacy setup shim.

The evaluation environment is offline and has no `wheel` package, so the
PEP 517 editable path (`bdist_wheel`) is unavailable.  This shim lets
`pip install -e . --no-use-pep517` (and plain `python setup.py develop`)
work using setuptools' classic develop mode.
"""

from setuptools import setup

setup()
