"""Figure 2, executed: the selective alignment of Report Noisy Max.

The paper's Figure 2 walks two adjacent databases

    D1: q = [1, 2, 2, 4]        D2: q = [2, 1, 2, 4]

through Report Noisy Max with noise H = [1, 2, 1, 1] and shows how the
shadow execution builds the randomness alignment: whenever a new max is
found the previous samples switch to their shadow alignment (identity)
and the new sample shifts by +2.  The expected alignment is therefore
f(H) = [1, 2, 1, 3] — identity everywhere except the final, max-setting
sample.

This script replays that trace with the *actual* instrumented program
produced by the type checker, confirms outputs agree, and prints the
per-sample alignment.

Run:  python examples/alignment_demo.py
"""

from repro.algorithms import get
from repro.semantics.relational import validate_alignment


def main() -> None:
    spec = get("noisy_max")
    checked = spec.checked()

    inputs = {"eps": 1.0, "size": 4.0, "q": (1.0, 2.0, 2.0, 4.0)}
    # D2 = [2, 1, 2, 4]: q[0] moves +1, q[1] moves -1.
    hats = {"q^o": (1.0, -1.0, 0.0, 0.0), "q^s": (1.0, -1.0, 0.0, 0.0)}
    noise = [1.0, 2.0, 1.0, 1.0]

    report = validate_alignment(checked, inputs, hats, noise)

    print("Figure 2 — selective alignment for Report Noisy Max")
    print(f"  D1 query answers : {inputs['q']}")
    d2 = tuple(a + b for a, b in zip(inputs["q"], hats["q^o"]))
    print(f"  D2 query answers : {d2}")
    print(f"  noise H on D1    : {tuple(noise)}")
    print(f"  aligned f(H)     : {report.aligned_noise}")
    print(f"  output on D1     : index {report.original_output}")
    print(f"  output on D2     : index {report.aligned_output}")
    print(f"  privacy cost     : {report.cost} (budget eps = {report.budget})")
    assert report.ok
    print("  -> same output, cost within budget: the alignment is real.")

    print("\nIntermediate trace (first three queries, Figure 2 top):")
    inputs3 = {"eps": 1.0, "size": 3.0, "q": (1.0, 2.0, 2.0)}
    hats3 = {"q^o": (1.0, -1.0, 0.0), "q^s": (1.0, -1.0, 0.0)}
    report3 = validate_alignment(checked, inputs3, hats3, [1.0, 2.0, 1.0])
    print(f"  aligned f(H)     : {report3.aligned_noise}   (the max at index 1 shifts by +2)")
    print(f"  outputs          : {report3.original_output} == {report3.aligned_output}")
    assert report3.ok


if __name__ == "__main__":
    main()
