"""Regenerate the paper's Table 1 (see also benchmarks/bench_table1.py).

Run:  python examples/table1.py
"""

import sys
from pathlib import Path

# Allow running from the repository root without installing benchmarks/.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.table1 import generate_table1, render_table1  # noqa: E402


def main() -> None:
    rows = generate_table1()
    print(render_table1(rows))
    print()
    print("Columns: Check = type checking; Rewrite = unbounded invariant-mode")
    print("verification (the paper's rewrite/manual-invariant regime);")
    print("Fix-param = full unrolling at concrete loop bounds (the paper's")
    print("fix-eps regime); [2] = coupling-based verifier seconds as quoted")
    print("by the paper (closed system; N/A for the novel Gap SVT).")


if __name__ == "__main__":
    main()
