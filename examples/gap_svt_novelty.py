"""The paper's novel contribution: Gap Sparse Vector (Section 6.2.2).

Gap SVT releases *how far above* the noisy threshold each accepted query
is — re-using the comparison noise, at the same ε as plain SVT.  The
paper notes prior proposals either drew fresh noise (more budget) or
re-used the noise unsoundly; the gap variant with the alignment
``Ω ? (1 - q̂°[i]) : 0`` is new.

This script (1) verifies Gap SVT unboundedly, (2) shows that the naive
noise-reusing variant (``bad_svt_leaks_value``, releasing the raw noisy
value rather than the gap) is *refuted* with a concrete counterexample,
and (3) statistically cross-checks both with the empirical estimator.

Run:  python examples/gap_svt_novelty.py
"""

from repro.algorithms import get
from repro.empirical import estimate_epsilon_lower_bound
from repro.verify.verifier import VerificationConfig, verify_target


def main() -> None:
    gap = get("gap_svt")
    bad = get("bad_svt_leaks_value")

    print("1. Verifying Gap SVT (unbounded, symbolic eps/N/size)...")
    outcome = verify_target(
        gap.target(),
        VerificationConfig(mode="invariant", assumptions=gap.assumption_exprs()),
    )
    print("   " + outcome.describe())
    assert outcome.verified

    print("\n2. Refuting the naive noisy-value release (Lyu et al. iSVT 4)...")
    outcome_bad = verify_target(
        bad.target(),
        VerificationConfig(
            mode="unroll",
            bindings=dict(bad.fixed_bindings),
            assumptions=bad.assumption_exprs(),
        ),
    )
    print("   " + outcome_bad.describe())
    assert not outcome_bad.verified
    print("   counterexample: " + outcome_bad.failures[0].describe())

    print("\n3. Statistical cross-check (20k trials each)...")
    base = {"eps": 0.5, "size": 4.0, "T": 0.0, "N": 1.0}
    inputs1 = dict(base, q=(0.5, 0.5, 0.5, 0.5))
    inputs2 = dict(base, q=(-0.5, -0.5, -0.5, -0.5))
    ok = estimate_epsilon_lower_bound(gap.reference, inputs1, inputs2, 0.5, trials=20_000)
    leak = estimate_epsilon_lower_bound(bad.reference, inputs1, inputs2, 0.5, trials=20_000)
    print(f"   Gap SVT        : {ok.describe()}")
    print(f"   naive variant  : {leak.describe()}")


if __name__ == "__main__":
    main()
