"""Inner-loop solver profiling through the staged pipeline.

Runs the Sparse Vector example end-to-end with ``profile=True`` and
pretty-prints the per-stage solver profile the verify stage records:
SAT-core work (decisions, propagations, conflicts, restarts, learned
and deleted clauses), simplex work (pivots, bound assertions, theory
conflicts), term-layer interning traffic, and the DPLL(T) loop shape
(solve calls, candidate-model rounds).

Usage::

    PYTHONPATH=src python examples/profile_demo.py
"""

from pathlib import Path

from repro import Pipeline, VerificationConfig
from repro.lang.parser import parse_expr

GROUPS = (
    ("DPLL(T) loop", ("solve_calls", "rounds")),
    ("SAT core", ("decisions", "propagations", "conflicts", "restarts",
                  "learned_clauses", "deleted_clauses")),
    ("simplex", ("pivots", "bound_asserts", "theory_conflicts")),
    ("term layer", ("intern_hits", "intern_misses")),
)


def print_profile(profile: dict, indent: str = "  ") -> None:
    for label, names in GROUPS:
        print(f"{indent}{label}:")
        for name in names:
            print(f"{indent}  {name:<16} {profile.get(name, 0):>10,}")


def main() -> None:
    source = (Path(__file__).parent / "sparse_vector.sdp").read_text()
    config = VerificationConfig(
        mode="unroll",
        bindings={"size": 4, "N": 2},
        assumptions=(parse_expr("eps > 0"), parse_expr("N >= 1")),
    )

    run = Pipeline(config=config).run(source, profile=True)
    print(run.describe())
    print()

    outcome = run.outcome
    stats = run.stages["verify"].solver_stats or {}
    print(f"verify stage: {outcome.solver_queries} queries, "
          f"{stats.get('cache_hits', 0)} cache hits, "
          f"{stats.get('solve_calls', 0)} solves")
    print("solver profile:")
    print_profile(outcome.profile)

    hits = outcome.profile.get("intern_hits", 0)
    misses = outcome.profile.get("intern_misses", 0)
    if hits + misses:
        rate = hits / (hits + misses)
        print(f"\nhash-consing absorbed {rate:.1%} of term constructions")


if __name__ == "__main__":
    main()
