"""The LightDP expressiveness gap (paper Sections 1 and 7), executable.

LightDP is exactly ShadowDP with the selector pinned to the aligned
execution.  This script shows the gap the paper's introduction is built
around: Report Noisy Max has no LightDP proof at the tight budget, while
the rest of the case studies pass unchanged.

Run:  python examples/lightdp_comparison.py
"""

from repro.algorithms import all_specs
from repro.baselines import LIGHTDP_SUPPORTED, check_lightdp
from repro.core.errors import ShadowDPTypeError


def main() -> None:
    print(f"{'algorithm':30s} {'LightDP':>10s} {'ShadowDP':>10s}")
    print("-" * 54)
    for spec in all_specs(include_buggy=False):
        try:
            check_lightdp(spec.function())
            lightdp = "accepts"
        except ShadowDPTypeError as err:
            lightdp = "rejects"
        shadow = "accepts"  # every spec type checks under ShadowDP
        spec.checked()
        print(f"{spec.name:30s} {lightdp:>10s} {shadow:>10s}")
        expected = LIGHTDP_SUPPORTED.get(spec.name)
        if expected is not None:
            assert (lightdp == "accepts") == expected, spec.name
    print("-" * 54)
    print("Report Noisy Max is the separating example: its alignment for")
    print("query i depends on samples yet to be drawn, which only the")
    print("shadow execution can express (paper Section 2.4).")


if __name__ == "__main__":
    main()
