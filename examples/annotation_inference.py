"""Annotation inference (paper Section 6.4).

ShadowDP needs two annotations per sampling command: a selector and an
alignment.  The paper sketches heuristics to discover them — enumerate
the program's branch conditions for selectors, and small arithmetic /
query differences for alignments.  This script runs that search for
Report Noisy Max and Sparse Vector and prints what it finds.

A finding worth noting (surfaced by this reproduction): at small fixed
sizes the aligned-only annotation ``-q^o[i]`` is *genuinely sufficient*
for Report Noisy Max (cost ``size·eps/2 <= eps`` for size <= 2), so the
search is run at size 3, where the shadow execution becomes essential.

Run:  python examples/annotation_inference.py
"""

from repro.algorithms import get
from repro.automation.inference import infer_annotations
from repro.verify.verifier import VerificationConfig


def search(name, bindings, unroll, max_candidates=2000):
    spec = get(name)
    config = VerificationConfig(
        mode="unroll",
        bindings=bindings,
        assumptions=spec.assumption_exprs(),
        unroll_limit=unroll,
        collect_models=False,
    )
    print(f"=== {name} (bindings {bindings})")
    result = infer_annotations(spec.function(), config, max_candidates=max_candidates)
    print(f"    {result.describe()}")
    return result


def main() -> None:
    result = search("noisy_max", {"size": 3}, 5)
    assert result.found

    result = search("svt", {"size": 3, "N": 1}, 5, max_candidates=600)
    assert result.found

    print("=== bad_svt_no_threshold_noise (size 5 forces failure)")
    result = search("bad_svt_no_threshold_noise", {"size": 5, "N": 1}, 7, max_candidates=60)
    assert not result.found
    print("    correctly found no annotation: the program is not eps-DP at this size.")


if __name__ == "__main__":
    main()
