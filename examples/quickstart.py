"""Quickstart: verify Report Noisy Max end to end.

This is the paper's Figure 1 as a library call: parse the annotated
source, type check it (producing the instrumented program), lower to the
non-probabilistic target with the explicit privacy cost, and verify that
``v_eps <= eps`` always holds — which, by Theorem 2, proves the
algorithm ε-differentially private.

Run:  python examples/quickstart.py
"""

from repro import VerificationConfig, pipeline
from repro.algorithms import get
from repro.lang.parser import parse_expr
from repro.lang.pretty import pretty_command

SOURCE = get("noisy_max").source


def main() -> None:
    print("=== Source (annotated ShadowDP, Figure 1) ===")
    print(SOURCE.strip())

    config = VerificationConfig(
        mode="invariant",
        assumptions=(parse_expr("eps > 0"), parse_expr("size >= 0")),
    )
    result = pipeline(SOURCE, config)

    print("\n=== Transformed target program (Figure 1, bottom) ===")
    print(pretty_command(result.target.body))

    print("\n=== Verification ===")
    mode = "aligned-only" if result.checked.aligned_only else "shadow execution"
    print(f"type checked using {mode}; {result.checked.solver_queries} solver queries")
    print(result.outcome.describe())
    if result.outcome.verified:
        print("=> Report Noisy Max is eps-differentially private.")


if __name__ == "__main__":
    main()
