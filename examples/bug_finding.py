"""Bug finding on transformed programs (paper Sections 1 and 8).

Because ShadowDP's target programs have standard semantics, a safety
checker that *refutes* an assertion hands back a concrete model: the
adjacent query answers and noise values witnessing the privacy
violation.  This script does that for the three classic broken Sparse
Vector variants of Lyu, Su & Li (VLDB 2017) and replays each
counterexample through the relational validator to show the alignment
really breaks on those inputs.

Run:  python examples/bug_finding.py
"""

from repro.algorithms import get
from repro.semantics.relational import validate_alignment
from repro.verify.verifier import VerificationConfig, verify_target

BUGGY = ["bad_svt_no_threshold_noise", "bad_svt_leaks_value", "bad_svt_no_budget"]


def extract_witness(spec, failure, size):
    """Turn a refutation model into concrete inputs + hats + noise."""
    model = failure.arith_model
    q = tuple(float(model.get(f"q[{i}]", 0)) for i in range(size))
    hats_o = tuple(float(model.get(f"q^o[{i}]", 0)) for i in range(size))
    noise = [float(v) for k, v in sorted(model.items()) if k.startswith("eta")]
    inputs = dict(spec.example_inputs())
    inputs["q"] = q
    inputs["size"] = float(size)
    inputs["eps"] = float(model.get("eps", 1.0))
    inputs["T"] = float(model.get("T", 0.0))
    inputs["N"] = float(model.get("N", 1.0))
    return inputs, {"q^o": hats_o, "q^s": hats_o}, noise


def main() -> None:
    for name in BUGGY:
        spec = get(name)
        print(f"=== {name}  ({spec.paper_ref})")
        config = VerificationConfig(
            mode="unroll",
            bindings=dict(spec.fixed_bindings),
            assumptions=spec.assumption_exprs(),
        )
        outcome = verify_target(spec.target(), config)
        print(f"    {outcome.describe()}")
        assert not outcome.verified

        failure = outcome.failures[0]
        print(f"    failed obligation: {failure.obligation.describe()[:96]}")
        size = int(spec.fixed_bindings["size"])
        inputs, hats, noise = extract_witness(spec, failure, size)
        print(f"    witness q      = {inputs['q']}")
        print(f"    witness q^o    = {hats['q^o']}")
        print(f"    witness noise  = {tuple(noise)}")

        if noise:
            report = validate_alignment(spec.checked(), inputs, hats, noise + [0.0] * 8)
            status = "breaks" if not report.ok else "survives (cost/branch issue elsewhere)"
            print(f"    relational replay: alignment {status} "
                  f"(outputs match: {report.outputs_match}, cost {report.cost:.3f} "
                  f"vs budget {report.budget:.3f})")
        print()


if __name__ == "__main__":
    main()
