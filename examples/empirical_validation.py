"""Statistical cross-validation of the verification verdicts.

Every verified algorithm should look ε-DP to a StatDP-style estimator,
and every refuted one should (on adversarial inputs) exhibit an event
whose likelihood ratio statistically exceeds e^ε.  This script runs the
estimator over the whole registry — the empirical counterpart of
Table 1's "verified" column.

Run:  python examples/empirical_validation.py
"""

from repro.algorithms import all_specs
from repro.empirical import estimate_epsilon_lower_bound

TRIALS = 12_000


def adversarial_inputs(spec):
    """A pair of adjacent inputs that stresses each mechanism."""
    inputs = dict(spec.example_inputs())
    n = len(inputs["q"])
    if "T" in inputs:
        # Threshold family: push all queries across the threshold.
        inputs["T"] = 0.0
        one = dict(inputs, q=tuple([0.6] * n))
        two = dict(inputs, q=tuple([-0.4] * n))
    elif "d" in inputs:
        # One-query-differs family: move exactly query 0 by 1.
        one = dict(inputs, q=tuple([1.0] + [0.0] * (n - 1)), d=0.0, delta=-1.0)
        two = dict(inputs, q=tuple([0.0] * n), d=0.0, delta=-1.0)
    else:
        # Sensitivity-1 family (Report Noisy Max).
        one = dict(inputs, q=tuple([1.0] + [0.0] * (n - 1)))
        two = dict(inputs, q=tuple([0.0] * n))
    return one, two


def buggy_inputs(spec):
    """Detection-friendly adjacent inputs for the broken SVT variants.

    iSVT1/iSVT3's true epsilon is ~size*eps/(4N), so a violation only
    *exists* for size > 4N; eps = 4 makes the per-query likelihood-ratio
    gap large enough to detect with modest trial counts.  Queries sit at
    +0.5 vs -0.5 around the threshold — a genuinely adjacent pair.
    """
    n = 8
    base = {"eps": 4.0, "size": float(n), "T": 0.0, "N": 1.0}
    one = dict(base, q=tuple([0.5] * n))
    two = dict(base, q=tuple([-0.5] * n))
    return one, two


def main() -> None:
    print(f"{'algorithm':30s} {'claimed eps':>12s} {'empirical lb':>13s} {'verdict':>10s}")
    print("-" * 70)
    detected = {}
    for spec in all_specs():
        if spec.expect_verified:
            inputs1, inputs2 = adversarial_inputs(spec)
        else:
            inputs1, inputs2 = buggy_inputs(spec)
        claimed = inputs1["eps"] * spec.epsilon_multiplier
        result = estimate_epsilon_lower_bound(
            spec.reference, inputs1, inputs2, claimed_epsilon=claimed,
            trials=TRIALS, digits=0,
        )
        detected[spec.name] = result.violates
        verdict = "VIOLATES" if result.violates else "ok"
        print(
            f"{spec.name:30s} {claimed:>12.2f} {result.epsilon_lower_bound:>13.3f} "
            f"{verdict:>10s}"
        )
    print("-" * 70)
    print(f"({TRIALS} trials per input; bounds are 99.9%-confidence lower bounds)")
    # Verified algorithms must never look violating.
    assert not any(detected[s.name] for s in all_specs(include_buggy=False))
    # The unprotected-threshold bug is statistically obvious; the other
    # two variants hide the violation behind threshold-noise correlation
    # (iSVT 1) or need correlated-event analysis (iSVT 4) — simple
    # bucketing at these trial counts cannot see them, which is exactly
    # why symbolic counterexamples (examples/bug_finding.py) matter.
    assert detected["bad_svt_no_threshold_noise"]
    print("Verified mechanisms are consistent; iSVT 3 is statistically")
    print("detected.  iSVT 1/4 hide from naive event bucketing — their")
    print("reliable witnesses are the verifier's symbolic counterexamples")
    print("(examples/bug_finding.py).")


if __name__ == "__main__":
    main()
