"""Annotation inference (paper Section 6.4)."""

from repro.automation.inference import (
    InferenceResult,
    candidate_selectors,
    candidate_alignments,
    infer_annotations,
)

__all__ = [
    "InferenceResult",
    "candidate_selectors",
    "candidate_alignments",
    "infer_annotations",
]
