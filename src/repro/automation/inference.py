"""Annotation-inference heuristics (paper Section 6.4).

The paper sketches how to discover the two sampling annotations
automatically:

1. **Selectors** — enumerate the branch conditions ``Ω`` of the program:
   candidates are ``°``, ``†``, ``Ω ? ° : †`` and ``Ω ? † : °``.
2. **Alignments** — simple small-integer arithmetic (``0, 1, 2``), the
   exact difference of query answers (``-q̂°[i]``), and the same guarded
   by branch conditions (``Ω ? 2 : 0``, ``Ω ? (1 - q̂°[i]) : 0``).

:func:`infer_annotations` searches the product space (cheapest
candidates first), type checks each assignment of annotations, and runs
the verifier on the survivors; the first verified assignment is
returned.  This discovers the paper's exact annotations for Report
Noisy Max and Sparse Vector with no hints.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ShadowDPTypeError
from repro.lang import ast
from repro.lang.pretty import pretty_expr, pretty_selector
from repro.pipeline import Pipeline
from repro.verify.verifier import VerificationConfig


@dataclass
class InferenceResult:
    """The outcome of an annotation search."""

    found: bool
    annotations: Dict[str, Tuple[ast.Selector, ast.Expr]] = field(default_factory=dict)
    candidates_tried: int = 0
    type_checked: int = 0
    seconds: float = 0.0

    def describe(self) -> str:
        if not self.found:
            return f"no annotation found ({self.candidates_tried} candidates, {self.seconds:.2f}s)"
        parts = [
            f"{name}: selector={pretty_selector(sel)}, align={pretty_expr(align)}"
            for name, (sel, align) in self.annotations.items()
        ]
        return (
            f"found after {self.candidates_tried} candidates "
            f"({self.type_checked} type checked, {self.seconds:.2f}s): "
            + "; ".join(parts)
        )


def branch_conditions(cmd: ast.Command) -> List[ast.Expr]:
    """All ``if`` conditions in the program, in syntactic order."""
    conditions: List[ast.Expr] = []
    for node in ast.command_iter(cmd):
        if isinstance(node, ast.If) and node.cond not in conditions:
            conditions.append(node.cond)
    return conditions


def candidate_selectors(conditions: Sequence[ast.Expr]) -> List[ast.Selector]:
    """Selector pool: constants first, then branch-guarded switches."""
    pool: List[ast.Selector] = [ast.SELECT_ALIGNED, ast.SELECT_SHADOW]
    for cond in conditions:
        pool.append(ast.SelectCond(cond, ast.SELECT_SHADOW, ast.SELECT_ALIGNED))
        pool.append(ast.SelectCond(cond, ast.SELECT_ALIGNED, ast.SELECT_SHADOW))
    return pool


def candidate_alignments(
    conditions: Sequence[ast.Expr], query_terms: Sequence[ast.Expr] = ()
) -> List[ast.Expr]:
    """Alignment pool: small constants, query differences, guarded forms."""
    basics: List[ast.Expr] = [ast.ZERO, ast.ONE, ast.Real(2), ast.Real(-1)]
    for term in query_terms:
        basics.append(ast.Neg(term))
        basics.append(ast.BinOp("-", ast.ONE, term))
    pool = list(basics)
    for cond in conditions:
        for base in basics:
            if base != ast.ZERO:
                pool.append(ast.Ternary(cond, base, ast.ZERO))
    return pool


def _query_hat_terms(function: ast.FunctionDef) -> List[ast.Expr]:
    """Hat-array reads like ``q̂°[i]`` for every starred list parameter,
    indexed by each loop counter found in the body."""
    counters: List[str] = []
    for node in ast.command_iter(function.body):
        if isinstance(node, ast.Assign) and isinstance(node.expr, ast.BinOp):
            if node.expr.op == "+" and node.expr.left == ast.Var(node.name):
                if node.name not in counters:
                    counters.append(node.name)
    terms: List[ast.Expr] = []
    for param in function.params:
        typ = param.type
        if isinstance(typ, ast.ListType) and isinstance(typ.elem, ast.NumType):
            if ast.is_star(typ.elem.aligned):
                for counter in counters:
                    terms.append(ast.Index(ast.Hat(param.name, ast.ALIGNED), ast.Var(counter)))
    return terms


def _replace_annotations(
    cmd: ast.Command, table: Dict[str, Tuple[ast.Selector, ast.Expr]]
) -> ast.Command:
    if isinstance(cmd, ast.Sample) and cmd.name in table:
        selector, align = table[cmd.name]
        return ast.Sample(cmd.name, cmd.scale, selector, align)
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[_replace_annotations(c, table) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(cmd.cond, _replace_annotations(cmd.then, table), _replace_annotations(cmd.orelse, table))
    if isinstance(cmd, ast.While):
        return ast.While(cmd.cond, _replace_annotations(cmd.body, table), cmd.invariants)
    return cmd


def infer_annotations(
    function: ast.FunctionDef,
    config: Optional[VerificationConfig] = None,
    max_candidates: int = 2000,
) -> InferenceResult:
    """Search for sampling annotations making the program verify.

    The existing annotations of ``function`` are ignored; verification
    uses ``config`` (defaults to the unroll regime, so callers should
    supply concrete loop bounds in ``config.bindings``).
    """
    config = config or VerificationConfig()
    start = time.perf_counter()

    # One memoizing pipeline per search: candidates share parse-stage
    # artifacts, and re-explored annotation assignments (the selector and
    # alignment pools overlap across samples) skip straight to the cached
    # verification outcome.
    pipe = Pipeline(config=config)

    samples = [c for c in ast.command_iter(function.body) if isinstance(c, ast.Sample)]
    conditions = branch_conditions(function.body)
    query_terms = _query_hat_terms(function)
    selectors = candidate_selectors(conditions)
    alignments = candidate_alignments(conditions, query_terms)

    per_sample = [
        [(sel, align) for sel in selectors for align in alignments]
        for _ in samples
    ]
    tried = 0
    checked = 0
    for combo in itertools.product(*per_sample):
        tried += 1
        if tried > max_candidates:
            break
        table = {s.name: annotation for s, annotation in zip(samples, combo)}
        candidate_fn = ast.FunctionDef(
            name=function.name,
            params=function.params,
            ret_name=function.ret_name,
            ret_type=function.ret_type,
            precondition=function.precondition,
            body=_replace_annotations(function.body, table),
            cost_bound=function.cost_bound,
        )
        try:
            run = pipe.run(candidate_fn)
        except ShadowDPTypeError:
            continue
        checked += 1
        if run.outcome.verified:
            return InferenceResult(
                found=True,
                annotations=table,
                candidates_tried=tried,
                type_checked=checked,
                seconds=time.perf_counter() - start,
            )
    return InferenceResult(
        found=False,
        candidates_tried=tried,
        type_checked=checked,
        seconds=time.perf_counter() - start,
    )
