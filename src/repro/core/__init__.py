"""The ShadowDP type system: the paper's primary contribution.

Layout (one module per ingredient of Section 4):

* :mod:`repro.core.errors` — typed failure modes of the checker.
* :mod:`repro.core.simplify` — the expression simplifier behind the
  "branch-condition optimization" of Section 4.3.1 and the readable
  privacy-cost updates of Section 4.4.
* :mod:`repro.core.environment` — flow-sensitive typing environments,
  distances and the two-level lattice join.
* :mod:`repro.core.preconditions` — quantifier instantiation for the
  global invariant ``Psi``.
* :mod:`repro.core.expr_rules` — expression typing (Fig. 4 top).
* :mod:`repro.core.shadow` — aligned/shadow expression substitution and
  shadow-execution construction (Appendix B).
* :mod:`repro.core.instrumentation` — the ``Γ1, Γ2, pc ⇛ c'`` rule.
* :mod:`repro.core.checker` — command typing and program transformation
  (Fig. 4 bottom), producing the instrumented probabilistic program.
"""

from repro.core.errors import ShadowDPError, ShadowDPTypeError
from repro.core.checker import TypeChecker, CheckedProgram, check_function

__all__ = [
    "ShadowDPError",
    "ShadowDPTypeError",
    "TypeChecker",
    "CheckedProgram",
    "check_function",
]
