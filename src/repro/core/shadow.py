"""Aligned/shadow expression substitution and shadow execution.

Implements the paper's Appendix B:

* ``⟦e, Γ⟧⋆`` (Fig. 8): rewrite an expression to its value in the aligned
  (``°``) or shadow (``†``) execution by adding each variable's resolved
  distance — :func:`versioned_expr`.
* ``⟦c, Γ⟧†`` (Fig. 9): the *shadow execution* of a command — the
  self-composition-style instrumentation that updates ``x̂†`` so that
  ``x + x̂†`` tracks the shadow run even when it takes a different branch
  than the original run — :func:`shadow_command`.
"""

from __future__ import annotations

from repro.core.environment import NUM, TypeEnv
from repro.core.errors import ShadowDPTypeError
from repro.core.simplify import simplify
from repro.lang import ast


def versioned_expr(expr: ast.Expr, env: TypeEnv, version: str) -> ast.Expr:
    """``⟦expr, env⟧^version``: the expression's value in that execution."""
    return simplify(_versioned(expr, env, version))


def _versioned(expr: ast.Expr, env: TypeEnv, version: str) -> ast.Expr:
    if isinstance(expr, (ast.Real, ast.BoolLit, ast.Hat)):
        return expr
    if isinstance(expr, ast.Var):
        entry = env.lookup(expr.name)
        if entry.is_list or entry.kind != NUM:
            return expr
        if version == ast.ALIGNED:
            distance = env.aligned_expr(expr.name)
        else:
            distance = env.shadow_expr(expr.name)
        return ast.BinOp("+", expr, distance)
    if isinstance(expr, ast.Index):
        if isinstance(expr.base, ast.Hat):
            return ast.Index(expr.base, _versioned(expr.index, env, version))
        if isinstance(expr.base, ast.Var):
            entry = env.lookup(expr.base.name)
            if not entry.is_list:
                raise ShadowDPTypeError(f"{expr.base.name!r} is not a list")
            index = _versioned(expr.index, env, version)
            base = ast.Index(expr.base, index)
            if entry.kind != NUM:
                return base
            distance = env.element_expr(expr.base.name, index, version)
            return ast.BinOp("+", base, distance)
        raise ShadowDPTypeError("cannot version a computed list")
    if isinstance(expr, ast.Neg):
        return ast.Neg(_versioned(expr.operand, env, version))
    if isinstance(expr, ast.Not):
        return ast.Not(_versioned(expr.operand, env, version))
    if isinstance(expr, ast.Abs):
        return ast.Abs(_versioned(expr.operand, env, version))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _versioned(expr.left, env, version),
            _versioned(expr.right, env, version),
        )
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            _versioned(expr.cond, env, version),
            _versioned(expr.then, env, version),
            _versioned(expr.orelse, env, version),
        )
    if isinstance(expr, ast.Cons):
        return ast.Cons(
            _versioned(expr.head, env, version),
            _versioned(expr.tail, env, version),
        )
    raise ShadowDPTypeError(f"cannot version expression {expr!r}")


def shadow_command(cmd: ast.Command, env: TypeEnv) -> ast.Command:
    """``⟦cmd, env⟧†``: the shadow execution of a (sampling-free) command.

    Numeric assignments become updates to the shadow-distance variable:
    ``⟦x := e⟧† = x̂† := ⟦e⟧† − x``.  List and boolean assignments carry no
    numeric shadow distance and become ``skip`` (their shadow values are
    pinned to ⟨·, 0⟩ or are write-only outputs with don't-care shadow
    distance; see Section 4.3.2's discussion of return types like
    ``num⟨0,∗⟩``).
    """
    if isinstance(cmd, ast.Skip):
        return ast.Skip()
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[shadow_command(c, env) for c in cmd.commands])
    if isinstance(cmd, ast.Assign):
        entry = env.get(cmd.name)
        if entry is None or entry.is_list or entry.kind != NUM:
            return ast.Skip()
        value = versioned_expr(cmd.expr, env, ast.SHADOW)
        return ast.Assign(
            ast.hat_name(cmd.name, ast.SHADOW),
            simplify(ast.BinOp("-", value, ast.Var(cmd.name))),
        )
    if isinstance(cmd, ast.If):
        return ast.If(
            versioned_expr(cmd.cond, env, ast.SHADOW),
            shadow_command(cmd.then, env),
            shadow_command(cmd.orelse, env),
        )
    if isinstance(cmd, ast.While):
        return ast.While(
            versioned_expr(cmd.cond, env, ast.SHADOW),
            shadow_command(cmd.body, env),
        )
    if isinstance(cmd, ast.Sample):
        # Fig. 9 deliberately has no case for sampling: if the original
        # execution draws a sample the shadow execution must draw the
        # same one, so a diverged branch may not sample.
        raise ShadowDPTypeError(
            "sampling command inside a branch whose shadow execution may diverge",
            reason="sample-under-high-pc",
        )
    raise ShadowDPTypeError(f"no shadow execution for {cmd!r}")
