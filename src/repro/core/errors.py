"""Failure modes of the ShadowDP pipeline."""

from __future__ import annotations


class ShadowDPError(Exception):
    """Base class for all pipeline errors."""


class ShadowDPTypeError(ShadowDPError):
    """The program does not type check (Section 4).

    ``reason`` is a machine-readable tag used by tests and by the
    annotation-inference search (Section 6.4) to distinguish "wrong
    annotation" from "program outside the fragment".
    """

    def __init__(self, message: str, reason: str = "type-error") -> None:
        super().__init__(message)
        self.reason = reason


class ShadowDPVerificationError(ShadowDPError):
    """The transformed program could not be verified (Section 6.1)."""
