"""Flow-sensitive typing environments (paper Section 4.1).

An environment maps each live variable to its base kind and its pair of
distances ``⟨d°, d†⟩``.  Distances live in the two-level lattice of
Section 4.3.1: numeric expressions at the bottom, ``*`` (dynamically
tracked) on top, joined by :func:`join_distance`.

Star distances *resolve* to hat variables when an expression is needed:
a scalar ``x`` at ``*`` resolves to ``x̂°`` (``Hat(x, ALIGNED)``), and a
list element ``q[e]`` at ``*`` resolves to ``q̂°[e]`` — this implements
the Σ-type desugaring of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional

from repro.core.errors import ShadowDPTypeError
from repro.core.simplify import simplify
from repro.lang import ast

NUM = "num"
BOOL = "bool"


@dataclass(frozen=True)
class VarEntry:
    """Typing information for one variable.

    ``is_list`` marks list variables; for those the distances describe
    the *elements* (paper: ``list num⟨d°,d†⟩``; bool lists carry zeros).
    ``random`` marks sampling variables (``RVars``).
    """

    kind: str  # NUM or BOOL
    aligned: ast.Distance = ast.ZERO
    shadow: ast.Distance = ast.ZERO
    is_list: bool = False
    random: bool = False

    def __post_init__(self) -> None:
        if self.kind not in (NUM, BOOL):
            raise ValueError(f"bad kind {self.kind!r}")

    def with_distances(self, aligned: ast.Distance, shadow: ast.Distance) -> "VarEntry":
        return replace(self, aligned=aligned, shadow=shadow)


def _norm(d: ast.Distance) -> ast.Distance:
    if ast.is_star(d):
        return d
    return simplify(d)


def join_distance(d1: ast.Distance, d2: ast.Distance) -> ast.Distance:
    """The two-level lattice join: equal distances stay, others go to ``*``."""
    if ast.is_star(d1) or ast.is_star(d2):
        return ast.STAR
    if _norm(d1) == _norm(d2):
        return _norm(d1)
    return ast.STAR


def distance_leq(d1: ast.Distance, d2: ast.Distance) -> bool:
    """The lattice order ``d1 ⊑ d2``."""
    if ast.is_star(d2):
        return True
    if ast.is_star(d1):
        return False
    return _norm(d1) == _norm(d2)


class TypeEnv:
    """An immutable-by-convention mapping from variables to entries.

    Mutating operations return fresh environments, which keeps the
    branch/join logic in the checker straightforward.
    """

    def __init__(self, entries: Optional[Dict[str, VarEntry]] = None) -> None:
        self._entries: Dict[str, VarEntry] = dict(entries or {})

    # -- mapping interface ---------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def get(self, name: str) -> Optional[VarEntry]:
        return self._entries.get(name)

    def lookup(self, name: str) -> VarEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise ShadowDPTypeError(f"variable {name!r} used before assignment", reason="unbound")
        return entry

    def set(self, name: str, entry: VarEntry) -> "TypeEnv":
        entries = dict(self._entries)
        entries[name] = VarEntry(
            entry.kind,
            _norm(entry.aligned),
            _norm(entry.shadow),
            entry.is_list,
            entry.random,
        )
        return TypeEnv(entries)

    def items(self):
        return sorted(self._entries.items())

    def bool_vars(self) -> frozenset:
        return frozenset(
            name for name, entry in self._entries.items() if entry.kind == BOOL and not entry.is_list
        )

    # -- distance resolution ---------------------------------------------------

    def aligned_expr(self, name: str) -> ast.Expr:
        """The resolved aligned distance of scalar variable ``name``."""
        entry = self.lookup(name)
        if entry.is_list:
            raise ShadowDPTypeError(f"list {name!r} has no scalar distance")
        if ast.is_star(entry.aligned):
            return ast.Hat(name, ast.ALIGNED)
        return entry.aligned

    def shadow_expr(self, name: str) -> ast.Expr:
        """The resolved shadow distance of scalar variable ``name``."""
        entry = self.lookup(name)
        if entry.is_list:
            raise ShadowDPTypeError(f"list {name!r} has no scalar distance")
        if ast.is_star(entry.shadow):
            return ast.Hat(name, ast.SHADOW)
        return entry.shadow

    def element_expr(self, name: str, index: ast.Expr, version: str) -> ast.Expr:
        """The resolved distance of the list element ``name[index]``."""
        entry = self.lookup(name)
        if not entry.is_list:
            raise ShadowDPTypeError(f"{name!r} is not a list")
        distance = entry.aligned if version == ast.ALIGNED else entry.shadow
        if ast.is_star(distance):
            return ast.Index(ast.Hat(name, version), index)
        return distance

    # -- lattice operations ------------------------------------------------------

    def join(self, other: "TypeEnv") -> "TypeEnv":
        """Pointwise join; variables live on only one side are kept as-is."""
        entries: Dict[str, VarEntry] = {}
        names = set(self._entries) | set(other._entries)
        for name in names:
            mine = self._entries.get(name)
            theirs = other._entries.get(name)
            if mine is None:
                entries[name] = theirs
            elif theirs is None:
                entries[name] = mine
            else:
                if mine.kind != theirs.kind or mine.is_list != theirs.is_list:
                    raise ShadowDPTypeError(
                        f"variable {name!r} has incompatible types across branches",
                        reason="branch-kind-mismatch",
                    )
                entries[name] = VarEntry(
                    mine.kind,
                    join_distance(mine.aligned, theirs.aligned),
                    join_distance(mine.shadow, theirs.shadow),
                    mine.is_list,
                    mine.random or theirs.random,
                )
        return TypeEnv(entries)

    def leq(self, other: "TypeEnv") -> bool:
        """The pointwise order ``self ⊑ other`` on shared variables."""
        for name, mine in self._entries.items():
            theirs = other._entries.get(name)
            if theirs is None:
                return False
            if not distance_leq(mine.aligned, theirs.aligned):
                return False
            if not distance_leq(mine.shadow, theirs.shadow):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeEnv):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        def show(d: ast.Distance) -> str:
            from repro.lang.pretty import pretty_expr

            return "*" if ast.is_star(d) else pretty_expr(d)

        parts = [
            f"{name}: <{show(e.aligned)},{show(e.shadow)}>" + ("[list]" if e.is_list else "")
            for name, e in self.items()
        ]
        return "{" + ", ".join(parts) + "}"

    # -- transformations ------------------------------------------------------------

    def map_distances(self, fn) -> "TypeEnv":
        """Apply ``fn(expr) -> expr`` to every non-star distance."""
        entries = {}
        for name, entry in self._entries.items():
            aligned = entry.aligned if ast.is_star(entry.aligned) else simplify(fn(entry.aligned))
            shadow = entry.shadow if ast.is_star(entry.shadow) else simplify(fn(entry.shadow))
            entries[name] = replace(entry, aligned=aligned, shadow=shadow)
        return TypeEnv(entries)


def env_from_function(function: ast.FunctionDef) -> TypeEnv:
    """The initial environment from a function signature.

    Parameters enter with their declared distances.  A list-typed return
    variable is pre-seeded (it is consumed with ``::`` before any full
    definition); scalar return variables appear when first assigned.
    """
    env = TypeEnv()
    for param in function.params:
        env = env.set(param.name, _entry_from_type(param.type, param.name))
    if isinstance(function.ret_type, ast.ListType):
        env = env.set(function.ret_name, _entry_from_type(function.ret_type, function.ret_name))
    return env


def _entry_from_type(typ: ast.Type, name: str) -> VarEntry:
    if isinstance(typ, ast.NumType):
        return VarEntry(NUM, typ.aligned, typ.shadow)
    if isinstance(typ, ast.BoolType):
        return VarEntry(BOOL)
    if isinstance(typ, ast.ListType):
        elem = typ.elem
        if isinstance(elem, ast.NumType):
            return VarEntry(NUM, elem.aligned, elem.shadow, is_list=True)
        if isinstance(elem, ast.BoolType):
            return VarEntry(BOOL, is_list=True)
        raise ShadowDPTypeError(f"nested lists are not supported ({name!r})")
    raise ShadowDPTypeError(f"unknown type for {name!r}")
