"""Expression typing rules (paper Figure 4, top half).

:class:`ExprTyper` computes the pair of *resolved* distances ``⟨n°, n†⟩``
of a numeric expression under a typing environment (rules T-Num, T-Var,
T-OPlus, T-OTimes, T-Ternary, T-Index), and checks that boolean
expressions type as ``bool`` — which for comparisons over non-zero
distances requires discharging the T-ODot constraint with the solver:

    Ψ ⇒ (e1 ⊙ e2 ⇔ (e1+n1) ⊙ (e2+n3)) ∧ (e1 ⊙ e2 ⇔ (e1+n2) ⊙ (e2+n4))
"""

from __future__ import annotations

from typing import Tuple

from repro.core import preconditions
from repro.core.environment import BOOL, NUM, TypeEnv
from repro.core.errors import ShadowDPTypeError
from repro.core.simplify import is_zero, simplify
from repro.lang import ast
from repro.lang.pretty import pretty_expr
from repro.solver.interface import ValidityChecker


class ExprTyper:
    """Types expressions under one environment snapshot."""

    def __init__(self, env: TypeEnv, psi: ast.Expr, validity: ValidityChecker) -> None:
        self.env = env
        self.psi = psi
        self.validity = validity
        self.validity.bool_vars = set(env.bool_vars())

    # -- numeric expressions ---------------------------------------------------

    def distances(self, expr: ast.Expr) -> Tuple[ast.Expr, ast.Expr]:
        """The resolved ``⟨aligned, shadow⟩`` distances of a numeric expr."""
        aligned, shadow = self._distances(expr)
        return simplify(aligned), simplify(shadow)

    def _distances(self, expr: ast.Expr) -> Tuple[ast.Expr, ast.Expr]:
        if isinstance(expr, ast.Real):
            return ast.ZERO, ast.ZERO
        if isinstance(expr, ast.Hat):
            # Hat variables are the ⟨0,0⟩ components of the Σ-desugaring.
            return ast.ZERO, ast.ZERO
        if isinstance(expr, ast.Var):
            entry = self.env.lookup(expr.name)
            if entry.is_list:
                raise ShadowDPTypeError(f"list {expr.name!r} used as a number")
            if entry.kind != NUM:
                raise ShadowDPTypeError(f"boolean {expr.name!r} used as a number")
            return self.env.aligned_expr(expr.name), self.env.shadow_expr(expr.name)
        if isinstance(expr, ast.Index):
            return self._index_distances(expr)
        if isinstance(expr, ast.Neg):
            aligned, shadow = self._distances(expr.operand)
            return ast.Neg(aligned), ast.Neg(shadow)
        if isinstance(expr, ast.BinOp):
            return self._binop_distances(expr)
        if isinstance(expr, ast.Ternary):
            # (T-Ternary): the guard must be a sound bool and both arms
            # must have the *same* type (identical distances).
            self.check_boolean(expr.cond)
            then = self.distances(expr.then)
            orelse = self.distances(expr.orelse)
            if then != orelse:
                raise ShadowDPTypeError(
                    f"ternary arms of {pretty_expr(expr)} have different distances",
                    reason="ternary-mismatch",
                )
            return then
        if isinstance(expr, ast.Abs):
            aligned, shadow = self.distances(expr.operand)
            if is_zero(aligned) and is_zero(shadow):
                return ast.ZERO, ast.ZERO
            raise ShadowDPTypeError(
                f"abs over non-zero distances in {pretty_expr(expr)}",
                reason="nonzero-abs",
            )
        raise ShadowDPTypeError(f"not a numeric expression: {pretty_expr(expr)}")

    def _index_distances(self, expr: ast.Index) -> Tuple[ast.Expr, ast.Expr]:
        # (T-Index): the index must be at distance ⟨0,0⟩.
        idx_aligned, idx_shadow = self.distances(expr.index)
        if not (is_zero(idx_aligned) and is_zero(idx_shadow)):
            raise ShadowDPTypeError(
                f"index of {pretty_expr(expr)} has non-zero distance",
                reason="indexed-by-private",
            )
        if isinstance(expr.base, ast.Hat):
            return ast.ZERO, ast.ZERO
        if not isinstance(expr.base, ast.Var):
            raise ShadowDPTypeError(f"cannot index {pretty_expr(expr.base)}")
        name = expr.base.name
        entry = self.env.lookup(name)
        if not entry.is_list:
            raise ShadowDPTypeError(f"{name!r} is not a list")
        if entry.kind != NUM:
            raise ShadowDPTypeError(f"boolean list {name!r} used as a number")
        return (
            self.env.element_expr(name, expr.index, ast.ALIGNED),
            self.env.element_expr(name, expr.index, ast.SHADOW),
        )

    def _binop_distances(self, expr: ast.BinOp) -> Tuple[ast.Expr, ast.Expr]:
        if expr.op in ast.LINEAR_OPS:
            # (T-OPlus)
            left = self._distances(expr.left)
            right = self._distances(expr.right)
            return (
                ast.BinOp(expr.op, left[0], right[0]),
                ast.BinOp(expr.op, left[1], right[1]),
            )
        if expr.op in ast.OTHER_OPS:
            # (T-OTimes): conservative — both operands at ⟨0,0⟩.
            for side in (expr.left, expr.right):
                aligned, shadow = self.distances(side)
                if not (is_zero(aligned) and is_zero(shadow)):
                    raise ShadowDPTypeError(
                        f"nonlinear operand {pretty_expr(side)} has non-zero distance "
                        f"in {pretty_expr(expr)}",
                        reason="nonlinear-private",
                    )
            return ast.ZERO, ast.ZERO
        raise ShadowDPTypeError(f"operator {expr.op} is not numeric")

    # -- boolean expressions -----------------------------------------------------

    def check_boolean(self, expr: ast.Expr) -> None:
        """Check ``Γ ⊢ expr : bool`` (distances ⟨0,0⟩), or raise."""
        if isinstance(expr, ast.BoolLit):
            return
        if isinstance(expr, ast.Var):
            entry = self.env.lookup(expr.name)
            if entry.kind != BOOL or entry.is_list:
                raise ShadowDPTypeError(f"{expr.name!r} is not a boolean")
            return
        if isinstance(expr, ast.Not):
            self.check_boolean(expr.operand)
            return
        if isinstance(expr, ast.BinOp):
            if expr.op in ast.BOOL_OPS:
                self.check_boolean(expr.left)
                self.check_boolean(expr.right)
                return
            if expr.op in ast.COMPARATORS:
                self._check_odot(expr)
                return
            raise ShadowDPTypeError(f"operator {expr.op} is not boolean")
        if isinstance(expr, ast.Ternary):
            self.check_boolean(expr.cond)
            self.check_boolean(expr.then)
            self.check_boolean(expr.orelse)
            return
        raise ShadowDPTypeError(f"not a boolean expression: {pretty_expr(expr)}")

    def _check_odot(self, expr: ast.BinOp) -> None:
        """(T-ODot): the comparison result must coincide in the original,
        aligned and shadow executions."""
        n1, n2 = self.distances(expr.left)
        n3, n4 = self.distances(expr.right)
        if all(is_zero(d) for d in (n1, n2, n3, n4)):
            return
        base = expr
        aligned = ast.BinOp(
            expr.op,
            simplify(ast.BinOp("+", expr.left, n1)),
            simplify(ast.BinOp("+", expr.right, n3)),
        )
        shadow = ast.BinOp(
            expr.op,
            simplify(ast.BinOp("+", expr.left, n2)),
            simplify(ast.BinOp("+", expr.right, n4)),
        )
        goal = ast.BinOp("&&", ast.BinOp("==", base, aligned), ast.BinOp("==", base, shadow))
        premises = preconditions.instantiate(self.psi, [goal])
        if not self.validity.is_valid(goal, premises):
            raise ShadowDPTypeError(
                f"comparison {pretty_expr(expr)} may differ between executions "
                f"(T-ODot constraint not valid)",
                reason="odot",
            )

    def is_boolean(self, expr: ast.Expr) -> bool:
        """Syntactic kind test (used to dispatch assignment rules)."""
        if isinstance(expr, (ast.BoolLit, ast.Not)):
            return True
        if isinstance(expr, ast.Var):
            entry = self.env.get(expr.name)
            return entry is not None and entry.kind == BOOL and not entry.is_list
        if isinstance(expr, ast.BinOp):
            return expr.op in ast.BOOL_OPS or expr.op in ast.COMPARATORS
        if isinstance(expr, ast.Ternary):
            return self.is_boolean(expr.then) and self.is_boolean(expr.orelse)
        if isinstance(expr, ast.Index):
            if isinstance(expr.base, ast.Var):
                entry = self.env.get(expr.base.name)
                return entry is not None and entry.kind == BOOL and entry.is_list
        return False
