"""Handling of the global invariant ``Psi`` (function preconditions).

Preconditions quantify over query indices (``forall i :: -1 <= q̂°[i] <=
1``).  The solver is quantifier-free, so before any validity query the
quantifiers are instantiated at every index term that occurs in the
query — the standard e-matching-with-syntactic-triggers recipe, which is
complete for the array-reads-only use the type system makes of ``Psi``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.lang import ast


def split_conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    """Flatten top-level conjunction structure."""
    if isinstance(expr, ast.BinOp) and expr.op == "&&":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    if expr == ast.TRUE:
        return []
    return [expr]


def index_terms(exprs: Iterable[ast.Expr]) -> Set[ast.Expr]:
    """All index expressions used to read a list or hat-list anywhere."""
    found: Set[ast.Expr] = set()
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Index):
                found.add(node.index)
    return found


def instantiate(psi: ast.Expr, queries: Sequence[ast.Expr], extra_indices: Iterable[ast.Expr] = ()) -> List[ast.Expr]:
    """Ground instances of ``psi`` relevant to ``queries``.

    Non-quantified conjuncts pass through unchanged.  Each ``forall``
    conjunct is instantiated at every index term occurring in the queries
    (plus ``extra_indices``); if there are none, the quantified conjunct
    is dropped (it cannot influence a query that reads no list).
    """
    indices = index_terms(queries) | set(extra_indices)
    premises: List[ast.Expr] = []
    for conjunct in split_conjuncts(psi):
        premises.extend(_instances(conjunct, indices))
    return premises


def _instances(conjunct: ast.Expr, indices: Set[ast.Expr]) -> List[ast.Expr]:
    """Instantiate (possibly nested) quantifiers at every index term."""
    if not isinstance(conjunct, ast.ForAll):
        return [conjunct]
    out: List[ast.Expr] = []
    for index in indices:
        body = ast.substitute(conjunct.body, {ast.Var(conjunct.var): index})
        for inner in split_conjuncts(body):
            out.extend(_instances(inner, indices))
    return out
