"""Command typing and transformation (paper Fig. 4, bottom half).

The checker runs a forward dataflow pass over the program's CFG
(:class:`~repro.ir.CFGWalker`): the flow-sensitive typing environment
and the program counter ``pc`` are the block-entry facts, branch arms
are analysed independently and *joined* at the CFG's merge points
(rule T-If's environment join plus the ⇛ transition commands), and each
loop's fixpoint iterates that loop's body sub-CFG until its environment
stabilises.  Alongside the facts it emits the instrumented
probabilistic program ``c′`` of Section 5: the original commands plus

* ``assert`` statements pinning the aligned execution to the original
  control flow (rules T-If / T-While),
* hat-variable updates maintaining dynamically tracked distances
  (instrumentation rule ⇛ and the well-formedness promotions), and
* the shadow execution ``⟦c, Γ⟧†`` where the shadow run may diverge.

A program whose sampling annotations never select the shadow execution
(all selectors ``°``) is checked in *aligned-only* mode: the shadow
analysis is skipped entirely, ``pc`` stays ⊥, and the system degenerates
to LightDP exactly as Section 7 describes.  This is also what lets
Numerical SVT sample inside a branch (its Fig. 10 annotations are all
``°``): rule (T-Laplace) requires ``pc = ⊥``, which aligned-only mode
preserves across branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import preconditions
from repro.core.environment import BOOL, NUM, TypeEnv, VarEntry, env_from_function
from repro.core.errors import ShadowDPTypeError
from repro.core.expr_rules import ExprTyper
from repro.core.instrumentation import PC_HIGH, PC_LOW, transition_commands
from repro.core.shadow import shadow_command, versioned_expr
from repro.core.simplify import is_zero, simplify, simplify_under
from repro.ir import CFGWalker, ast_to_cfg, statement_kind
from repro.ir.build import region_to_ast
from repro.ir.cfg import CFG, Block, Branch, LoopHeader
from repro.ir.passes import selector_conditions
from repro.lang import ast
from repro.lang.pretty import pretty_expr
from repro.solver.interface import ValidityChecker

_MAX_FIXPOINT_ITERATIONS = 20


@dataclass
class CheckedProgram:
    """The result of type checking: the instrumented program ``c′``.

    ``body`` still contains :class:`~repro.lang.ast.Sample` commands; the
    second transformation stage (:mod:`repro.target.transform`) lowers
    them to ``havoc`` plus privacy-cost updates.
    """

    function: ast.FunctionDef
    body: ast.Command
    final_env: TypeEnv
    aligned_only: bool
    solver_queries: int = 0
    solver_cache_hits: int = 0

    @property
    def name(self) -> str:
        return self.function.name


def uses_shadow_selector(program) -> bool:
    """True when any sampling annotation can pick the shadow execution.

    Accepts a :class:`~repro.ir.cfg.CFG` or a raw command.
    """
    cfg = program if isinstance(program, CFG) else ast_to_cfg(program)
    for stmt in cfg.walk_statements():
        if statement_kind(stmt) == "sample" and ast.selector_uses_shadow(stmt.selector):
            return True
    return False


#: The walker state: instrumented commands so far, the typing
#: environment at this point, and the program counter.
_State = Tuple[Tuple[ast.Command, ...], TypeEnv, str]


class TypeChecker(CFGWalker):
    """Checks one function (Section 4) and emits its transformed body.

    A forward pass over the function's CFG: ``visit_<kind>`` methods are
    the per-statement transfer functions (they return the instrumented
    statement plus the updated environment), ``on_branch`` implements
    rule T-If at the CFG join, and ``on_loop`` implements T-While's
    fixpoint over the loop's body sub-CFG.
    """

    def __init__(self, function: ast.FunctionDef, lightdp_mode: bool = False) -> None:
        self.function = function
        self.psi = function.precondition
        self.validity = ValidityChecker()
        self.lightdp_mode = lightdp_mode
        self.cfg = ast_to_cfg(function.body)
        self.aligned_only = not uses_shadow_selector(self.cfg)
        # During loop-fixpoint iterations the environment is not yet
        # stable, so annotations referencing hat variables that are only
        # promoted later look ill-typed; validity-style checks are
        # suppressed ("lenient") until the env converges, then the body
        # is re-checked strictly.
        self.lenient = False

    # -- public API --------------------------------------------------------------

    def check(self) -> CheckedProgram:
        if self.lightdp_mode and not self.aligned_only:
            raise ShadowDPTypeError(
                "LightDP baseline: sampling annotations may not select the "
                "shadow execution (paper Section 7)",
                reason="lightdp-shadow",
            )
        env = env_from_function(self.function)
        body, final_env = self._check_region(self.cfg, self.cfg.entry, None, env, PC_LOW)
        return CheckedProgram(
            function=self.function,
            body=body,
            final_env=final_env,
            aligned_only=self.aligned_only,
            solver_queries=self.validity.queries,
            solver_cache_hits=self.validity.cache_hits,
        )

    # -- helpers -------------------------------------------------------------------

    def _typer(self, env: TypeEnv) -> ExprTyper:
        return ExprTyper(env, self.psi, self.validity)

    def _premises(self, *queries: ast.Expr) -> List[ast.Expr]:
        return preconditions.instantiate(self.psi, queries)

    def _provably(self, goal: ast.Expr) -> bool:
        goal = simplify(goal)
        if goal == ast.TRUE:
            return True
        if goal == ast.FALSE:
            return False
        return self.validity.is_valid(goal, self._premises(goal))

    # -- the dataflow pass ---------------------------------------------------------

    def _check_region(
        self, cfg: CFG, start: int, stop: Optional[int], env: TypeEnv, pc: str
    ) -> Tuple[ast.Command, TypeEnv]:
        """Run the pass over one region; the instrumented command plus
        the environment at the region's end."""
        cmds, out_env, _ = self.run_region(cfg, start, stop, ((), env, pc))
        return ast.seq(*cmds), out_env

    def _emit(self, state: _State, checked: ast.Command, env: TypeEnv) -> _State:
        cmds, _, pc = state
        return cmds + (checked,), env, pc

    # -- statement transfer functions (the T-rules) ----------------------------------

    def visit_assign(self, stmt: ast.Assign, state: _State) -> _State:
        _, env, pc = state
        checked, env = self._check_assign(stmt, env, pc)
        return self._emit(state, checked, env)

    def visit_sample(self, stmt: ast.Sample, state: _State) -> _State:
        _, env, pc = state
        checked, env = self._check_sample(stmt, env, pc)
        return self._emit(state, checked, env)

    def visit_return_(self, stmt: ast.Return, state: _State) -> _State:
        _, env, pc = state
        checked, env = self._check_return(stmt, env, pc)
        return self._emit(state, checked, env)

    def visit_skip(self, stmt: ast.Skip, state: _State) -> _State:
        return state

    def visit_assert_(self, stmt: ast.Assert, state: _State) -> _State:
        return self._reject_target_only(stmt)

    def visit_assume(self, stmt: ast.Assume, state: _State) -> _State:
        return self._reject_target_only(stmt)

    def visit_havoc(self, stmt: ast.Havoc, state: _State) -> _State:
        return self._reject_target_only(stmt)

    def _reject_target_only(self, stmt: ast.Command) -> _State:
        raise ShadowDPTypeError(
            f"{type(stmt).__name__} is a target-language command",
            reason="target-only-command",
        )

    def generic_visit(self, stmt: ast.Command, *args):
        raise ShadowDPTypeError(f"unknown command {stmt!r}")

    # -- (T-Asgn) ------------------------------------------------------------------------

    def _check_assign(self, cmd: ast.Assign, env: TypeEnv, pc: str) -> Tuple[ast.Command, TypeEnv]:
        typer = self._typer(env)

        # Hat variables may not be assigned in source programs.
        if "^" in cmd.name:
            raise ShadowDPTypeError(
                f"distance variable {cmd.name!r} cannot be assigned directly",
                reason="hat-assignment",
            )

        entry = env.get(cmd.name)
        if (entry is not None and entry.is_list) or isinstance(cmd.expr, ast.Cons):
            return self._check_list_assign(cmd, env, typer)
        if typer.is_boolean(cmd.expr):
            return self._check_bool_assign(cmd, env, pc, typer)
        return self._check_num_assign(cmd, env, pc, typer)

    def _check_list_assign(self, cmd: ast.Assign, env: TypeEnv, typer: ExprTyper) -> Tuple[ast.Command, TypeEnv]:
        entry = env.get(cmd.name)
        if entry is None or not entry.is_list:
            raise ShadowDPTypeError(
                f"list value assigned to non-list variable {cmd.name!r}",
                reason="list-kind-mismatch",
            )
        if not isinstance(cmd.expr, ast.Cons):
            raise ShadowDPTypeError(
                f"only `head :: {cmd.name}` list updates are supported",
                reason="list-update-shape",
            )
        head, tail = cmd.expr.head, cmd.expr.tail
        if tail != ast.Var(cmd.name):
            raise ShadowDPTypeError(
                f"list update must extend the list itself: expected "
                f"`... :: {cmd.name}`, got `... :: {pretty_expr(tail)}`",
                reason="list-update-shape",
            )
        # (T-Cons): the head must have the declared element type.
        if entry.kind == BOOL:
            typer.check_boolean(head)
        else:
            aligned, shadow = typer.distances(head)
            self._require_distance(aligned, entry.aligned, cmd, "aligned")
            self._require_distance(shadow, entry.shadow, cmd, "shadow")
        # Element distances are invariant, so the environment is unchanged;
        # list values carry no scalar shadow distance (see shadow.py), so
        # no high-pc instrumentation is needed either.
        return cmd, env

    def _require_distance(self, actual: ast.Expr, declared: ast.Distance, cmd: ast.Assign, which: str) -> None:
        if ast.is_star(declared):
            # A starred/don't-care element distance places no constraint
            # on appended heads (paper return types like list num⟨0,−⟩).
            return
        goal = ast.BinOp("==", actual, declared)
        if self.lenient:
            return
        if not self._provably(goal):
            raise ShadowDPTypeError(
                f"in `{cmd.name} := {pretty_expr(cmd.expr)}`: head has {which} "
                f"distance {pretty_expr(actual)}, list elements require "
                f"{pretty_expr(declared)}",
                reason="cons-distance",
            )

    def _check_bool_assign(self, cmd: ast.Assign, env: TypeEnv, pc: str, typer: ExprTyper) -> Tuple[ast.Command, TypeEnv]:
        typer.check_boolean(cmd.expr)
        entry = env.get(cmd.name)
        if entry is not None and (entry.kind != BOOL or entry.is_list):
            raise ShadowDPTypeError(
                f"variable {cmd.name!r} changes kind to bool", reason="kind-change"
            )
        if pc == PC_HIGH and not self.aligned_only:
            # bool carries no ∗ distance, so under a diverged shadow
            # execution the assigned value must provably coincide with its
            # shadow version.
            shadow_value = versioned_expr(cmd.expr, env, ast.SHADOW)
            if simplify(cmd.expr) != shadow_value and not self._provably(
                ast.BinOp("==", cmd.expr, shadow_value)
            ):
                raise ShadowDPTypeError(
                    f"boolean {cmd.name!r} assigned under diverged shadow "
                    f"execution with possibly different shadow value",
                    reason="bool-under-high-pc",
                )
        return cmd, env.set(cmd.name, VarEntry(BOOL))

    def _check_num_assign(self, cmd: ast.Assign, env: TypeEnv, pc: str, typer: ExprTyper) -> Tuple[ast.Command, TypeEnv]:
        name = cmd.name
        entry = env.get(name)
        if entry is not None and (entry.kind != NUM or entry.is_list):
            raise ShadowDPTypeError(
                f"variable {name!r} changes kind to num", reason="kind-change"
            )
        aligned, shadow = typer.distances(cmd.expr)
        prefix: List[ast.Command] = []

        # Well-formedness: after this assignment no tracked distance may
        # mention `name`.  Freeze offending distances into hat variables
        # *before* the assignment (Section 4.3.1, "Well-Formedness").
        env, freeze = self._freeze_dependents(env, name, exclude=(name,))
        prefix.extend(freeze)

        high_pc_shadow = pc == PC_HIGH and not self.aligned_only
        if high_pc_shadow:
            # The shadow execution did not run this assignment: keep the
            # shadow value  x + x̂†  constant across it.
            old_shadow = (
                env.shadow_expr(name) if entry is not None else None
            )
            if old_shadow is None:
                raise ShadowDPTypeError(
                    f"variable {name!r} first assigned under a diverged "
                    f"shadow execution",
                    reason="fresh-under-high-pc",
                )
            preserved = simplify(
                ast.BinOp("-", ast.BinOp("+", ast.Var(name), old_shadow), cmd.expr)
            )
            prefix.append(ast.Assign(ast.hat_name(name, ast.SHADOW), preserved))
            new_shadow: ast.Distance = ast.STAR
        else:
            new_shadow = shadow

        # If the new aligned distance mentions the assigned variable, it
        # refers to the pre-assignment value: freeze it too.
        new_aligned: ast.Distance = aligned
        if name in ast.free_vars(aligned):
            prefix.append(ast.Assign(ast.hat_name(name, ast.ALIGNED), aligned))
            new_aligned = ast.STAR
        if not high_pc_shadow and not ast.is_star(new_shadow) and name in ast.free_vars(new_shadow):
            prefix.append(ast.Assign(ast.hat_name(name, ast.SHADOW), new_shadow))
            new_shadow = ast.STAR

        env = env.set(name, VarEntry(NUM, new_aligned, new_shadow))
        return ast.seq(*prefix, cmd), env

    def _freeze_dependents(
        self, env: TypeEnv, name: str, exclude: Tuple[str, ...]
    ) -> Tuple[TypeEnv, List[ast.Command]]:
        """Promote to ``*`` every distance that mentions ``name``."""
        commands: List[ast.Command] = []
        for other in env:
            if other in exclude:
                continue
            entry = env.get(other)
            if entry.kind != NUM:
                continue
            aligned, shadow = entry.aligned, entry.shadow
            changed = False
            if not ast.is_star(aligned) and name in ast.free_vars(aligned):
                if entry.is_list:
                    raise ShadowDPTypeError(
                        f"list {other!r} distance depends on assigned variable {name!r}",
                        reason="list-promotion",
                    )
                commands.append(ast.Assign(ast.hat_name(other, ast.ALIGNED), simplify(aligned)))
                aligned = ast.STAR
                changed = True
            if not ast.is_star(shadow) and name in ast.free_vars(shadow):
                if entry.is_list:
                    raise ShadowDPTypeError(
                        f"list {other!r} distance depends on assigned variable {name!r}",
                        reason="list-promotion",
                    )
                commands.append(ast.Assign(ast.hat_name(other, ast.SHADOW), simplify(shadow)))
                shadow = ast.STAR
                changed = True
            if changed:
                env = env.set(other, entry.with_distances(aligned, shadow))
        return env, commands

    # -- (T-Laplace) -------------------------------------------------------------------------

    def _check_sample(self, cmd: ast.Sample, env: TypeEnv, pc: str) -> Tuple[ast.Command, TypeEnv]:
        if pc == PC_HIGH and not self.aligned_only:
            raise ShadowDPTypeError(
                "sampling requires pc = ⊥: the shadow execution must draw "
                "the same sample (rule T-Laplace)",
                reason="sample-under-high-pc",
            )
        typer = self._typer(env)

        # The scale is public data: distances ⟨0,0⟩.
        scale_aligned, scale_shadow = typer.distances(cmd.scale)
        if not (is_zero(scale_aligned) and is_zero(scale_shadow)):
            raise ShadowDPTypeError(
                f"sampling scale {pretty_expr(cmd.scale)} must have zero distance",
                reason="private-scale",
            )

        # Injectivity of the alignment η ↦ η + n_η (rule T-Laplace).
        self._check_injectivity(cmd, env)

        # Well-formedness: distances may not mention the resampled η.
        env, freeze = self._freeze_dependents(env, cmd.name, exclude=(cmd.name,))

        # Γ′ = λx.⟨S(⟨n°, n†⟩), n†⟩ — the selector rebuilds every aligned
        # distance from the aligned/shadow pair at the sampling point.
        selector = cmd.selector
        pure_aligned = not ast.selector_uses_shadow(selector)
        if not pure_aligned:
            self._check_starred_lists_alignable(env)
        new_env = env
        for name in env:
            if name == cmd.name:
                continue
            entry = env.get(name)
            if entry.kind != NUM:
                continue
            if entry.is_list:
                if pure_aligned:
                    continue
                if ast.is_star(entry.aligned) and ast.is_star(entry.shadow):
                    # Ψ guarantees the hat arrays coincide (checked above),
                    # so selecting either version leaves the type unchanged.
                    continue
                selected = simplify(selector.apply(entry.aligned, entry.shadow))
                new_env = new_env.set(name, entry.with_distances(selected, entry.shadow))
                continue
            aligned = env.aligned_expr(name)
            shadow = env.shadow_expr(name)
            selected = simplify(selector.apply(aligned, shadow))
            shadow_dist = entry.shadow
            new_env = new_env.set(name, entry.with_distances(selected, shadow_dist))

        new_env = new_env.set(
            cmd.name, VarEntry(NUM, simplify(cmd.align), ast.ZERO, random=True)
        )
        return ast.seq(*freeze, cmd), new_env

    def _check_injectivity(self, cmd: ast.Sample, env: TypeEnv) -> None:
        eta = ast.Var(cmd.name)
        eta1, eta2 = ast.Var(f"{cmd.name}%1"), ast.Var(f"{cmd.name}%2")
        aligned_sample = ast.BinOp("+", eta, cmd.align)
        lhs = ast.substitute(aligned_sample, {eta: eta1})
        rhs = ast.substitute(aligned_sample, {eta: eta2})
        goal = ast.BinOp(
            "||",
            ast.BinOp("!=", lhs, rhs),
            ast.BinOp("==", eta1, eta2),
        )
        if self.lenient:
            return
        if not self._provably(goal):
            raise ShadowDPTypeError(
                f"alignment {pretty_expr(cmd.align)} for {cmd.name!r} is not "
                f"injective (rule T-Laplace)",
                reason="injectivity",
            )

    def _check_starred_lists_alignable(self, env: TypeEnv) -> None:
        """When a selector can pick the shadow version, the hat arrays of
        starred lists must provably coincide (``Ψ ⇒ q̂°[k] = q̂†[k]``)."""
        for name in env:
            entry = env.get(name)
            if not (entry.is_list and entry.kind == NUM):
                continue
            if not (ast.is_star(entry.aligned) and ast.is_star(entry.shadow)):
                continue
            k = ast.Var("%k")
            goal = ast.BinOp(
                "==",
                ast.Index(ast.Hat(name, ast.ALIGNED), k),
                ast.Index(ast.Hat(name, ast.SHADOW), k),
            )
            premises = preconditions.instantiate(self.psi, [goal], extra_indices=[k])
            if not self.validity.is_valid(goal, premises):
                raise ShadowDPTypeError(
                    f"shadow selector used but Ψ does not pin {name}^o = {name}^s",
                    reason="list-shadow-mismatch",
                )

    # -- (T-If): join at the CFG merge point -----------------------------------------------------

    def _update_pc(self, pc: str, env: TypeEnv, cond: ast.Expr) -> str:
        """``updPC``: ⊥ survives only if the shadow run provably takes the
        same branch."""
        if self.aligned_only:
            return PC_LOW
        if pc == PC_HIGH:
            return PC_HIGH
        shadow_cond = versioned_expr(cond, env, ast.SHADOW)
        if shadow_cond == simplify(cond):
            return PC_LOW
        goal = ast.BinOp("==", cond, shadow_cond)
        premises = self._premises(goal)
        if self.validity.is_valid(goal, premises):
            return PC_LOW
        return PC_HIGH

    def on_branch(self, cfg: CFG, block: Block, term: Branch, join: int, state: _State) -> _State:
        cmds, env, pc = state
        pc_inner = self._update_pc(pc, env, term.cond)
        aligned_cond = versioned_expr(term.cond, env, ast.ALIGNED)

        env_then = env.map_distances(lambda d: simplify_under(d, term.cond, True))
        env_else = env.map_distances(lambda d: simplify_under(d, term.cond, False))
        then_checked, env1 = self._check_region(cfg, term.then, join, env_then, pc_inner)
        if term.orelse == join:
            else_checked, env2 = ast.Skip(), env_else
        else:
            else_checked, env2 = self._check_region(cfg, term.orelse, join, env_else, pc_inner)

        joined = env1.join(env2)
        fix_then = transition_commands(env1, joined, pc_inner)
        fix_else = transition_commands(env2, joined, pc_inner)

        assert_then = self._branch_assert(aligned_cond, term.cond, True)
        assert_else = self._branch_assert(ast.Not(aligned_cond), term.cond, False)

        if pc == PC_HIGH or pc_inner == PC_LOW or self.aligned_only:
            shadow_part: ast.Command = ast.Skip()
        else:
            then_src = region_to_ast(cfg, term.then, join)
            else_src = (
                ast.Skip() if term.orelse == join else region_to_ast(cfg, term.orelse, join)
            )
            shadow_part = shadow_command(ast.If(term.cond, then_src, else_src), joined)

        result = ast.seq(
            ast.If(
                term.cond,
                ast.seq(assert_then, then_checked, fix_then),
                ast.seq(assert_else, else_checked, fix_else),
            ),
            shadow_part,
        )
        return cmds + (result,), joined, pc

    @staticmethod
    def _branch_assert(aligned_cond: ast.Expr, cond: ast.Expr, truth: bool) -> ast.Command:
        expr = simplify_under(aligned_cond, cond, truth)
        if expr == ast.TRUE:
            return ast.Skip()
        return ast.Assert(expr)

    # -- (T-While): fixpoint over the loop's body sub-CFG ------------------------------------------------

    def on_loop(self, cfg: CFG, block: Block, term: LoopHeader, state: _State) -> _State:
        cmds, env, pc = state
        pc_inner = self._update_pc(pc, env, term.cond)
        body_cfg = term.body

        # Variables whose hat variables appear in the loop's sampling
        # annotations or invariants are promoted to * up front (with the
        # corresponding hat initialisation emitted before the loop, like
        # Fig. 11/12's `sum^o := 0`).  Otherwise the first fixpoint
        # iteration sees the annotation referencing a hat that does not
        # exist yet and spuriously promotes downstream variables — and
        # the join is monotone, so the damage would be permanent.
        env_entry = env
        env = self._pre_promote_annotation_hats(term, env)

        # Fixpoint construction of Section 4.3.1: iterate the body until
        # the joined environment stabilises (lattice height 2 ⇒ fast).
        loop_env = env
        was_lenient = self.lenient
        self.lenient = True
        try:
            for _ in range(_MAX_FIXPOINT_ITERATIONS):
                body_in = loop_env.map_distances(lambda d: simplify_under(d, term.cond, True))
                _, body_env = self._check_region(body_cfg, body_cfg.entry, None, body_in, pc_inner)
                joined = body_env.join(env)
                if joined == loop_env:
                    break
                loop_env = joined
            else:
                raise ShadowDPTypeError(
                    "loop distance fixpoint did not converge", reason="fixpoint"
                )
        finally:
            self.lenient = was_lenient
        # Strict pass over the stabilised environment: this is the run
        # whose solver checks count and whose output is emitted.
        body_in = loop_env.map_distances(lambda d: simplify_under(d, term.cond, True))
        body_checked, body_env = self._check_region(body_cfg, body_cfg.entry, None, body_in, pc_inner)

        entry_fix = transition_commands(env_entry, loop_env, pc_inner)
        body_fix = transition_commands(body_env, loop_env, pc_inner)
        guard_assert = ast.Assert(versioned_expr(term.cond, loop_env, ast.ALIGNED))

        if pc == PC_HIGH or pc_inner == PC_LOW or self.aligned_only:
            shadow_part: ast.Command = ast.Skip()
        else:
            from repro.ir.build import cfg_to_ast

            shadow_part = shadow_command(ast.While(term.cond, cfg_to_ast(body_cfg)), loop_env)

        result = ast.seq(
            entry_fix,
            ast.While(term.cond, ast.seq(guard_assert, body_checked, body_fix), term.invariants),
            shadow_part,
        )
        return cmds + (result,), loop_env, pc

    def _pre_promote_annotation_hats(self, term: LoopHeader, env: TypeEnv) -> TypeEnv:
        """Promote scalars whose hats are referenced by the loop's
        sampling annotations or invariants before the fixpoint starts."""
        referenced: set = set()
        exprs: List[ast.Expr] = list(term.invariants)
        for stmt in term.body.walk_statements():
            if statement_kind(stmt) == "sample":
                exprs.append(stmt.align)
                exprs.extend(selector_conditions(stmt.selector))
        for expr in exprs:
            for hat in ast.hat_vars(expr):
                referenced.add((hat.base, hat.version))
        for base, version in sorted(referenced):
            entry = env.get(base)
            if entry is None or entry.kind != NUM or entry.is_list:
                continue
            aligned, shadow = entry.aligned, entry.shadow
            if version == ast.ALIGNED and not ast.is_star(aligned):
                aligned = ast.STAR
            if version == ast.SHADOW and not ast.is_star(shadow):
                shadow = ast.STAR
            env = env.set(base, entry.with_distances(aligned, shadow))
        return env

    # -- (T-Return) -----------------------------------------------------------------------------------

    def _check_return(self, cmd: ast.Return, env: TypeEnv, pc: str) -> Tuple[ast.Command, TypeEnv]:
        if pc == PC_HIGH:
            raise ShadowDPTypeError("return inside a shadow-diverged branch", reason="return-under-high-pc")
        typer = self._typer(env)
        expr = cmd.expr
        if isinstance(expr, ast.Var) and (entry := env.get(expr.name)) and entry.is_list:
            # Returned lists: elements must be aligned at distance 0.
            if entry.kind == NUM and not (
                not ast.is_star(entry.aligned) and is_zero(entry.aligned)
            ):
                raise ShadowDPTypeError(
                    f"returned list {expr.name!r} has non-zero aligned element distance",
                    reason="return-distance",
                )
            return cmd, env
        if typer.is_boolean(expr):
            typer.check_boolean(expr)
            return cmd, env
        aligned, _shadow = typer.distances(expr)
        if not is_zero(aligned) and not self._provably(ast.BinOp("==", aligned, ast.ZERO)):
            raise ShadowDPTypeError(
                f"returned expression {pretty_expr(expr)} has aligned distance "
                f"{pretty_expr(aligned)}, expected 0 (rule T-Return)",
                reason="return-distance",
            )
        return cmd, env


def check_function(function: ast.FunctionDef, lightdp_mode: bool = False) -> CheckedProgram:
    """Type check ``function`` and produce its instrumented body."""
    return TypeChecker(function, lightdp_mode=lightdp_mode).check()
