"""The instrumentation rule ``Γ1, Γ2, pc ⇛ c′`` (paper Fig. 4, bottom).

When the environment join promotes a variable's distance from a tracked
expression ``n`` to ``*``, the dynamic hat variable must be initialised
with the value the type system tracked statically: ``x̂° := n`` (and
``x̂† := n`` when ``pc = ⊥``).  Trivial self-assignments like
``x̂° := x̂°`` are elided.
"""

from __future__ import annotations

from typing import List

from repro.core.environment import NUM, TypeEnv
from repro.core.errors import ShadowDPTypeError
from repro.core.simplify import simplify
from repro.lang import ast

PC_LOW = "low"  # the paper's ⊥: shadow execution takes the same branch
PC_HIGH = "high"  # the paper's ⊤: shadow execution may diverge


def transition_commands(env_from: TypeEnv, env_to: TypeEnv, pc: str) -> ast.Command:
    """Commands realising ``env_from ⇛ env_to`` (requires ``env_from ⊑ env_to``).

    For every variable whose aligned (resp. shadow) distance is promoted
    to ``*``, emit ``x̂° := n`` (resp. ``x̂† := n``) where ``n`` is the
    previously tracked distance.  Under ``pc = ⊤`` only aligned distances
    are written — the shadow execution's state must not be touched by
    code the shadow run might not execute (paper rule ⇛).
    """
    aligned_updates: List[ast.Command] = []
    shadow_updates: List[ast.Command] = []
    for name in env_to:
        before = env_from.get(name)
        after = env_to.get(name)
        if before is None or after is None or before.kind != NUM:
            continue
        if before.is_list:
            if _promoted(before.aligned, after.aligned) or _promoted(before.shadow, after.shadow):
                raise ShadowDPTypeError(
                    f"list {name!r} requires per-element dynamic distances "
                    f"(unsupported promotion)",
                    reason="list-promotion",
                )
            continue
        if _promoted(before.aligned, after.aligned):
            value = simplify(before.aligned)
            if value != ast.Hat(name, ast.ALIGNED):
                aligned_updates.append(ast.Assign(ast.hat_name(name, ast.ALIGNED), value))
        if _promoted(before.shadow, after.shadow) and pc == PC_LOW:
            value = simplify(before.shadow)
            if value != ast.Hat(name, ast.SHADOW):
                shadow_updates.append(ast.Assign(ast.hat_name(name, ast.SHADOW), value))
    return ast.seq(*aligned_updates, *shadow_updates)


def _promoted(before: ast.Distance, after: ast.Distance) -> bool:
    return ast.is_star(after) and not ast.is_star(before)
