"""Expression simplification.

The type checker and transformer lean on this module for three paper
behaviours:

* the *branch-condition optimization* of Section 4.3.1 ("at Line 4, η has
  (aligned) distance Ω ? 2 : 0 ... simplified to 2 in the true branch and
  0 in the false branch") — :func:`simplify_under`;
* readable privacy-cost updates (Fig. 1 line 6, Fig. 6 line 6), which
  need ``|Ω ? 2 : 0| / (2/ε)`` to become ``Ω ? ε : 0`` —
  the ternary/abs/division rewrites in :func:`simplify`;
* syntactic distance equality for the environment join and for detecting
  trivial instrumentation like ``x̂° := x̂°``.

All rewrites are semantics-preserving over the reals (division rewrites
assume the divisor is nonzero, which the sampling scale ``Lap r``
guarantees for ``r``; ShadowDP programs never divide by zero on purpose).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Optional

from repro.lang import ast


#: Node-keyed memo table: expression -> its simplified form.  AST nodes
#: are immutable frozen dataclasses, so the map is sound; simplification
#: is idempotent, so results are stored as fixpoints of themselves.  The
#: table is cleared wholesale when it grows past ``_MEMO_LIMIT`` (the
#: verification workload plateaus far below it).
_MEMO: dict = {}
_MEMO_LIMIT = 1 << 16


def simplify(expr: ast.Expr) -> ast.Expr:
    """Bottom-up simplification to a small canonical form (memoized)."""
    if isinstance(expr, (ast.Real, ast.BoolLit, ast.Var, ast.Hat)):
        return expr
    cached = _MEMO.get(expr)
    if cached is not None:
        return cached
    result = _simplify_uncached(expr)
    if len(_MEMO) >= _MEMO_LIMIT:
        _MEMO.clear()
    _MEMO[expr] = result
    _MEMO[result] = result
    return result


def _simplify_uncached(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.Neg):
        return _neg(simplify(expr.operand))
    if isinstance(expr, ast.Not):
        return _not(simplify(expr.operand))
    if isinstance(expr, ast.Abs):
        return _abs(simplify(expr.operand))
    if isinstance(expr, ast.BinOp):
        return _binop(expr.op, simplify(expr.left), simplify(expr.right))
    if isinstance(expr, ast.Ternary):
        return _ternary(simplify(expr.cond), simplify(expr.then), simplify(expr.orelse))
    if isinstance(expr, ast.Cons):
        return ast.Cons(simplify(expr.head), simplify(expr.tail))
    if isinstance(expr, ast.Index):
        return ast.Index(simplify(expr.base), simplify(expr.index))
    if isinstance(expr, ast.ForAll):
        return ast.ForAll(expr.var, simplify(expr.body))
    raise TypeError(f"simplify: unknown node {expr!r}")


def simplify_under(expr: ast.Expr, assumption: ast.Expr, truth: bool) -> ast.Expr:
    """Simplify ``expr`` assuming the boolean ``assumption`` has ``truth``.

    Replacement is purely syntactic: sub-expressions equal to
    ``assumption`` (after simplification) become the constant, and
    sub-expressions equal to its negation become the opposite constant.
    This is exactly the paper's branch-condition optimization, and it is
    sound because the checker only applies it inside the corresponding
    branch.
    """
    assumption = simplify(assumption)
    mapping = {
        assumption: ast.BoolLit(truth),
        _not(assumption): ast.BoolLit(not truth),
    }
    replaced = _replace_bool(simplify(expr), mapping)
    return simplify(replaced)


def _replace_bool(expr: ast.Expr, mapping: Mapping[ast.Expr, ast.Expr]) -> ast.Expr:
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, (ast.Real, ast.BoolLit, ast.Var, ast.Hat)):
        return expr
    if isinstance(expr, ast.Neg):
        return ast.Neg(_replace_bool(expr.operand, mapping))
    if isinstance(expr, ast.Not):
        return ast.Not(_replace_bool(expr.operand, mapping))
    if isinstance(expr, ast.Abs):
        return ast.Abs(_replace_bool(expr.operand, mapping))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, _replace_bool(expr.left, mapping), _replace_bool(expr.right, mapping))
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            _replace_bool(expr.cond, mapping),
            _replace_bool(expr.then, mapping),
            _replace_bool(expr.orelse, mapping),
        )
    if isinstance(expr, ast.Cons):
        return ast.Cons(_replace_bool(expr.head, mapping), _replace_bool(expr.tail, mapping))
    if isinstance(expr, ast.Index):
        return ast.Index(_replace_bool(expr.base, mapping), _replace_bool(expr.index, mapping))
    if isinstance(expr, ast.ForAll):
        return ast.ForAll(expr.var, _replace_bool(expr.body, mapping))
    raise TypeError(f"_replace_bool: unknown node {expr!r}")


# ---------------------------------------------------------------------------
# Node-local rewrites
# ---------------------------------------------------------------------------


def _const(expr: ast.Expr) -> Optional[Fraction]:
    if isinstance(expr, ast.Real):
        return expr.value
    return None


def _neg(operand: ast.Expr) -> ast.Expr:
    value = _const(operand)
    if value is not None:
        return ast.Real(-value)
    if isinstance(operand, ast.Neg):
        return operand.operand
    if isinstance(operand, ast.Ternary):
        return _ternary(operand.cond, _neg(operand.then), _neg(operand.orelse))
    return ast.Neg(operand)


def _not(operand: ast.Expr) -> ast.Expr:
    if isinstance(operand, ast.BoolLit):
        return ast.BoolLit(not operand.value)
    if isinstance(operand, ast.Not):
        return operand.operand
    return ast.Not(operand)


def _abs(operand: ast.Expr) -> ast.Expr:
    value = _const(operand)
    if value is not None:
        return ast.Real(abs(value))
    if isinstance(operand, ast.Neg):
        return _abs(operand.operand)
    if isinstance(operand, ast.Abs):
        return operand
    if isinstance(operand, ast.Ternary):
        # |c ? a : b| = c ? |a| : |b| — this is what turns the cost term
        # |Ω ? 2 : 0| into Ω ? 2 : 0.
        return _ternary(operand.cond, _abs(operand.then), _abs(operand.orelse))
    return ast.Abs(operand)


def _ternary(cond: ast.Expr, then: ast.Expr, orelse: ast.Expr) -> ast.Expr:
    if isinstance(cond, ast.BoolLit):
        return then if cond.value else orelse
    if then == orelse:
        return then
    if isinstance(cond, ast.Not):
        return _ternary(cond.operand, orelse, then)
    return ast.Ternary(cond, then, orelse)


def _binop(op: str, left: ast.Expr, right: ast.Expr) -> ast.Expr:
    lc, rc = _const(left), _const(right)

    if op in ("+", "-", "*", "/"):
        return _arith(op, left, right, lc, rc)
    if op in ast.COMPARATORS:
        return _comparison(op, left, right, lc, rc)
    if op == "&&":
        if isinstance(left, ast.BoolLit):
            return right if left.value else ast.FALSE
        if isinstance(right, ast.BoolLit):
            return left if right.value else ast.FALSE
        if left == right:
            return left
        return ast.BinOp("&&", left, right)
    if op == "||":
        if isinstance(left, ast.BoolLit):
            return ast.TRUE if left.value else right
        if isinstance(right, ast.BoolLit):
            return ast.TRUE if right.value else left
        if left == right:
            return left
        return ast.BinOp("||", left, right)
    raise TypeError(f"_binop: unknown operator {op!r}")


def _arith(op: str, left: ast.Expr, right: ast.Expr, lc, rc) -> ast.Expr:
    if lc is not None and rc is not None:
        if op == "+":
            return ast.Real(lc + rc)
        if op == "-":
            return ast.Real(lc - rc)
        if op == "*":
            return ast.Real(lc * rc)
        if rc != 0:
            return ast.Real(lc / rc)

    if op in ("+", "-"):
        cancelled = _cancel_additive(op, left, right)
        if cancelled is not None:
            return cancelled

    if op == "+":
        if lc == 0:
            return right
        if rc == 0:
            return left
    elif op == "-":
        if rc == 0:
            return left
        if left == right:
            return ast.ZERO
        if lc == 0:
            return _neg(right)
    elif op == "*":
        if lc == 0 or rc == 0:
            return ast.ZERO
        if lc == 1:
            return right
        if rc == 1:
            return left
    elif op == "/":
        if lc == 0:
            return ast.ZERO
        if rc == 1:
            return left
        # a / (b / c) = a * c / b  (the sampling scale rewrite that turns
        # |n| / (2/eps) into |n| * eps / 2).
        if isinstance(right, ast.BinOp) and right.op == "/":
            return simplify(
                ast.BinOp("/", ast.BinOp("*", left, right.right), right.left)
            )
        # (k * e) / c = (k/c) * e for constants k, c — this collapses the
        # cost term (2 * eps) / 2 to eps.
        if rc is not None and isinstance(left, ast.BinOp) and left.op == "*":
            inner_l, inner_r = _const(left.left), _const(left.right)
            if inner_l is not None:
                return _binop("*", ast.Real(inner_l / rc), left.right)
            if inner_r is not None:
                return _binop("*", left.left, ast.Real(inner_r / rc))

    # Distribute over ternaries with the *same* guard, or when only one
    # side is a ternary and the other is simple, push the operation in.
    # This keeps distances and privacy costs in guarded normal form.
    if isinstance(left, ast.Ternary) and isinstance(right, ast.Ternary) and left.cond == right.cond:
        return _ternary(
            left.cond,
            _binop(op, left.then, right.then),
            _binop(op, left.orelse, right.orelse),
        )
    if isinstance(left, ast.Ternary) and _is_simple(right):
        return _ternary(left.cond, _binop(op, left.then, right), _binop(op, left.orelse, right))
    if isinstance(right, ast.Ternary) and _is_simple(left) and op in ("*", "+"):
        return _ternary(right.cond, _binop(op, left, right.then), _binop(op, left, right.orelse))

    return ast.BinOp(op, left, right)


def _additive_terms(expr: ast.Expr, sign: int, out: list) -> None:
    """Flatten a +/-/Neg chain into signed atomic terms."""
    if isinstance(expr, ast.BinOp) and expr.op == "+":
        _additive_terms(expr.left, sign, out)
        _additive_terms(expr.right, sign, out)
    elif isinstance(expr, ast.BinOp) and expr.op == "-":
        _additive_terms(expr.left, sign, out)
        _additive_terms(expr.right, -sign, out)
    elif isinstance(expr, ast.Neg):
        _additive_terms(expr.operand, -sign, out)
    else:
        out.append((sign, expr))


def _cancel_additive(op: str, left: ast.Expr, right: ast.Expr):
    """Cancel equal terms of opposite sign across an additive chain.

    Returns the simplified expression, or None when nothing cancels (so
    the caller keeps the original shape — this keeps the emitted code
    close to the paper's figures instead of fully renormalising it).
    """
    terms: list = []
    _additive_terms(left, 1, terms)
    _additive_terms(right, 1 if op == "+" else -1, terms)

    cancelled = False
    kept: list = []
    for sign, term in terms:
        for k, (other_sign, other_term) in enumerate(kept):
            if other_term == term and other_sign == -sign:
                del kept[k]
                cancelled = True
                break
        else:
            kept.append((sign, term))
    if not cancelled:
        return None

    constant = Fraction(0)
    rest = []
    for sign, term in kept:
        value = _const(term)
        if value is not None:
            constant += value if sign > 0 else -value
        else:
            rest.append((sign, term))
    result: Optional[ast.Expr] = ast.Real(constant) if constant != 0 or not rest else None
    for sign, term in rest:
        if result is None:
            result = term if sign > 0 else _neg(term)
        else:
            result = ast.BinOp("+" if sign > 0 else "-", result, term)
    return result if result is not None else ast.ZERO


def _is_simple(expr: ast.Expr) -> bool:
    """Cheap expressions worth duplicating into ternary branches."""
    if isinstance(expr, (ast.Real, ast.Var, ast.Hat)):
        return True
    if isinstance(expr, ast.Index):
        return _is_simple(expr.base) and _is_simple(expr.index)
    if isinstance(expr, (ast.Neg, ast.Abs)):
        return _is_simple(expr.operand)
    if isinstance(expr, ast.BinOp) and expr.op in ("*", "/", "+", "-"):
        return _is_simple(expr.left) and _is_simple(expr.right)
    return False


def _comparison(op: str, left: ast.Expr, right: ast.Expr, lc, rc) -> ast.Expr:
    if lc is not None and rc is not None:
        table = {
            "<": lc < rc,
            "<=": lc <= rc,
            ">": lc > rc,
            ">=": lc >= rc,
            "==": lc == rc,
            "!=": lc != rc,
        }
        return ast.BoolLit(table[op])
    if op in ("==", "<=", ">=") and left == right:
        return ast.TRUE
    if op in ("!=", "<", ">") and left == right:
        return ast.FALSE
    return ast.BinOp(op, left, right)


def is_zero(expr: ast.Expr) -> bool:
    """True when an expression simplifies to the literal 0."""
    return simplify(expr) == ast.ZERO
