"""The ShadowDP language: abstract syntax, concrete syntax and printing.

This subpackage implements Figure 3 of the paper (the source language) plus
the target-language extensions of Section 4.4 (``havoc``, ``assert`` and
``assume``).  The pieces are:

``repro.lang.ast``
    Immutable AST node definitions for expressions, commands, types,
    distances, selectors and whole functions.

``repro.lang.lexer`` / ``repro.lang.parser``
    A hand-written lexer and recursive-descent parser for the concrete
    syntax used by the case studies (see ``repro.algorithms``).

``repro.lang.pretty``
    A pretty printer producing concrete syntax that round-trips through
    the parser.

``repro.lang.builder``
    Small combinator helpers for constructing ASTs programmatically.
"""

from repro.lang import ast
from repro.lang.lexer import Lexer, Token, LexError
from repro.lang.parser import Parser, ParseError, parse_function, parse_expr, parse_command
from repro.lang.pretty import pretty_expr, pretty_command, pretty_function, pretty_type

__all__ = [
    "ast",
    "Lexer",
    "Token",
    "LexError",
    "Parser",
    "ParseError",
    "parse_function",
    "parse_expr",
    "parse_command",
    "pretty_expr",
    "pretty_command",
    "pretty_function",
    "pretty_type",
]
