"""Recursive-descent parser for the ShadowDP concrete syntax.

Grammar (informal)::

    function  := "function" IDENT "(" params ")"
                 "returns" param
                 ("precondition" expr ";")?
                 ("costbound" expr ";")?
                 ("define" IDENT "=" expr ";")*
                 block
    params    := param ("," param)*
    param     := IDENT ":" type
    type      := "num" ("<" dist "," dist ">")? | "bool" | "list" type
    dist      := "*" | "-" | expr
    block     := "{" cmd* "}"
    cmd       := "skip" ";"
               | IDENT ":=" "Lap" "(" expr ")" "," selector "," expr ";"
               | IDENT ":=" expr ";"
               | "if" "(" expr ")" block ("else" (block | if-cmd))?
               | "while" "(" expr ")" ("invariant" expr ";")* block
               | "return" expr ";"
               | "assert" "(" expr ")" ";"
               | "assume" "(" expr ")" ";"
               | "havoc" IDENT ";"
    selector  := "aligned" | "shadow" | expr "?" selector ":" selector

Expression precedence, loosest to tightest: ``?:``, ``||``, ``&&``,
``::`` (right associative), comparisons (non-associative), ``+ -``,
``* /``, unary ``- !``, postfix indexing, atoms.

``define`` clauses are hygienic textual macros: every later occurrence of
the defined name (in the body, annotations and invariants) is replaced by
the definition.  The case studies use them to name the branch condition
``Omega`` exactly as the paper's figures do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import ast
from repro.lang.lexer import Lexer, Token


class ParseError(ValueError):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} at line {token.line}, column {token.column} (got {token!r})")
        self.token = token


class Parser:
    """A single-use parser over one source string."""

    def __init__(self, source: str) -> None:
        self._tokens = list(Lexer(source).tokens())
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, value: object = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _match(self, kind: str, value: object = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: object = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}", token)
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._expect("IDENT")
        return str(token.value)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        """Entry point for a full expression (including ``forall``)."""
        if self._check("KEYWORD", "forall"):
            self._advance()
            var = self._expect_ident()
            self._expect("OP", "::")
            body = self.parse_expr()
            return ast.ForAll(var, body)
        return self._ternary()

    def _ternary(self) -> ast.Expr:
        cond = self._or()
        if self._match("OP", "?"):
            then = self._ternary()
            self._expect("OP", ":")
            orelse = self._ternary()
            return ast.Ternary(cond, then, orelse)
        return cond

    def _or(self) -> ast.Expr:
        left = self._and()
        while self._match("OP", "||"):
            right = self._and()
            left = ast.BinOp("||", left, right)
        return left

    def _and(self) -> ast.Expr:
        left = self._cons()
        while self._match("OP", "&&"):
            right = self._cons()
            left = ast.BinOp("&&", left, right)
        return left

    def _cons(self) -> ast.Expr:
        head = self._comparison()
        if self._match("OP", "::"):
            tail = self._cons()
            return ast.Cons(head, tail)
        return head

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        for op in ("<=", ">=", "==", "!=", "<", ">"):
            if self._check("OP", op):
                self._advance()
                right = self._additive()
                return ast.BinOp(op, left, right)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self._match("OP", "+"):
                left = ast.BinOp("+", left, self._multiplicative())
            elif self._match("OP", "-"):
                left = ast.BinOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            if self._match("OP", "*"):
                left = ast.BinOp("*", left, self._unary())
            elif self._match("OP", "/"):
                right = self._unary()
                # Fold rational literals (`1 / 2` denotes the constant 1/2,
                # which is also how the pretty printer emits non-integers).
                if isinstance(left, ast.Real) and isinstance(right, ast.Real) and right.value != 0:
                    left = ast.Real(left.value / right.value)
                else:
                    left = ast.BinOp("/", left, right)
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._match("OP", "-"):
            operand = self._unary()
            # Fold negative literals so `-1` denotes the constant -1.
            if isinstance(operand, ast.Real):
                return ast.Real(-operand.value)
            return ast.Neg(operand)
        if self._match("OP", "!"):
            return ast.Not(self._unary())
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        node = self._atom()
        while self._match("OP", "["):
            index = self.parse_expr()
            self._expect("OP", "]")
            node = ast.Index(node, index)
        return node

    def _atom(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            return ast.Real(token.value)
        if token.kind == "KEYWORD" and token.value == "true":
            self._advance()
            return ast.TRUE
        if token.kind == "KEYWORD" and token.value == "false":
            self._advance()
            return ast.FALSE
        if token.kind == "KEYWORD" and token.value == "abs":
            self._advance()
            self._expect("OP", "(")
            inner = self.parse_expr()
            self._expect("OP", ")")
            return ast.Abs(inner)
        if token.kind == "HAT":
            self._advance()
            base, version = token.value
            return ast.Hat(base, version)
        if token.kind == "IDENT":
            self._advance()
            return ast.Var(str(token.value))
        if self._match("OP", "("):
            inner = self.parse_expr()
            self._expect("OP", ")")
            return inner
        raise ParseError("expected an expression", token)

    # -- selectors ----------------------------------------------------------

    def parse_selector(self) -> ast.Selector:
        if self._match("KEYWORD", "aligned"):
            return ast.SELECT_ALIGNED
        if self._match("KEYWORD", "shadow"):
            return ast.SELECT_SHADOW
        cond = self._or()
        self._expect("OP", "?")
        then = self.parse_selector()
        self._expect("OP", ":")
        orelse = self.parse_selector()
        return ast.SelectCond(cond, then, orelse)

    # -- types --------------------------------------------------------------

    def parse_type(self) -> ast.Type:
        token = self._peek()
        if self._match("KEYWORD", "bool"):
            return ast.BoolType()
        if self._match("KEYWORD", "list"):
            return ast.ListType(self.parse_type())
        if self._match("KEYWORD", "num"):
            if not self._match("OP", "<"):
                return ast.NumType(ast.ZERO, ast.ZERO)
            aligned = self._parse_distance()
            self._expect("OP", ",")
            shadow = self._parse_distance()
            self._expect("OP", ">")
            return ast.NumType(aligned, shadow)
        raise ParseError("expected a type", token)

    def _parse_distance(self) -> ast.Distance:
        if self._match("OP", "*"):
            return ast.STAR
        # A lone `-` (immediately followed by `,` or `>`) is the paper's
        # "don't care" distance, which we model as STAR.
        if self._check("OP", "-") and self._peek(1).value in (",", ">"):
            self._advance()
            return ast.STAR
        return self._additive()

    # -- commands -----------------------------------------------------------

    def parse_block(self) -> ast.Command:
        self._expect("OP", "{")
        commands: List[ast.Command] = []
        while not self._check("OP", "}"):
            commands.append(self.parse_command())
        self._expect("OP", "}")
        return ast.seq(*commands)

    def parse_command(self) -> ast.Command:
        token = self._peek()
        if self._match("KEYWORD", "skip"):
            self._expect("OP", ";")
            return ast.Skip()
        if self._match("KEYWORD", "return"):
            expr = self.parse_expr()
            self._expect("OP", ";")
            return ast.Return(expr)
        if self._match("KEYWORD", "assert"):
            self._expect("OP", "(")
            expr = self.parse_expr()
            self._expect("OP", ")")
            self._expect("OP", ";")
            return ast.Assert(expr)
        if self._match("KEYWORD", "assume"):
            self._expect("OP", "(")
            expr = self.parse_expr()
            self._expect("OP", ")")
            self._expect("OP", ";")
            return ast.Assume(expr)
        if self._match("KEYWORD", "havoc"):
            name = self._expect_ident()
            self._expect("OP", ";")
            return ast.Havoc(name)
        if self._match("KEYWORD", "if"):
            return self._if_tail()
        if self._match("KEYWORD", "while"):
            self._expect("OP", "(")
            cond = self.parse_expr()
            self._expect("OP", ")")
            invariants: List[ast.Expr] = []
            while self._match("KEYWORD", "invariant"):
                invariants.append(self.parse_expr())
                self._expect("OP", ";")
            body = self.parse_block()
            return ast.While(cond, body, tuple(invariants))
        if token.kind == "HAT":
            # Instrumented programs assign to hat variables: `x^o := e;`.
            self._advance()
            base, version = token.value
            self._expect("OP", ":=")
            expr = self.parse_expr()
            self._expect("OP", ";")
            return ast.Assign(ast.hat_name(base, version), expr)
        if token.kind == "IDENT":
            name = self._expect_ident()
            self._expect("OP", ":=")
            if self._check("KEYWORD", "Lap"):
                self._advance()
                self._expect("OP", "(")
                scale = self.parse_expr()
                self._expect("OP", ")")
                self._expect("OP", ",")
                selector = self.parse_selector()
                self._expect("OP", ",")
                align = self.parse_expr()
                self._expect("OP", ";")
                return ast.Sample(name, scale, selector, align)
            expr = self.parse_expr()
            self._expect("OP", ";")
            return ast.Assign(name, expr)
        raise ParseError("expected a command", token)

    def _if_tail(self) -> ast.Command:
        self._expect("OP", "(")
        cond = self.parse_expr()
        self._expect("OP", ")")
        then = self.parse_block()
        orelse: ast.Command = ast.Skip()
        if self._match("KEYWORD", "else"):
            if self._match("KEYWORD", "if"):
                orelse = self._if_tail()
            else:
                orelse = self.parse_block()
        return ast.If(cond, then, orelse)

    # -- functions ----------------------------------------------------------

    def parse_function(self) -> ast.FunctionDef:
        self._expect("KEYWORD", "function")
        name = self._expect_ident()
        self._expect("OP", "(")
        params: List[ast.Parameter] = []
        if not self._check("OP", ")"):
            params.append(self._parse_param())
            while self._match("OP", ","):
                params.append(self._parse_param())
        self._expect("OP", ")")
        self._expect("KEYWORD", "returns")
        ret = self._parse_param()

        precondition: ast.Expr = ast.TRUE
        if self._match("KEYWORD", "precondition"):
            precondition = self.parse_expr()
            self._expect("OP", ";")

        cost_bound: ast.Expr = ast.Var("eps")
        if self._match("KEYWORD", "costbound"):
            cost_bound = self.parse_expr()
            self._expect("OP", ";")

        defines: Dict[str, ast.Expr] = {}
        while self._match("KEYWORD", "define"):
            macro_name = self._expect_ident()
            self._expect("OP", "=")
            defines[macro_name] = self.parse_expr()
            self._expect("OP", ";")

        body = self.parse_block()
        self._expect("EOF")

        function = ast.FunctionDef(
            name=name,
            params=tuple(params),
            ret_name=ret.name,
            ret_type=ret.type,
            precondition=precondition,
            body=body,
            cost_bound=cost_bound,
        )
        if defines:
            function = _expand_macros(function, defines)
        return function

    def _parse_param(self) -> ast.Parameter:
        name = self._expect_ident()
        self._expect("OP", ":")
        return ast.Parameter(name, self.parse_type())


# ---------------------------------------------------------------------------
# Macro expansion
# ---------------------------------------------------------------------------


def _expand_macros(function: ast.FunctionDef, defines: Dict[str, ast.Expr]) -> ast.FunctionDef:
    """Substitute ``define`` macros throughout a function.

    Macros may reference earlier macros; expansion is iterated until fixed
    point (definitions are required to be non-recursive).
    """
    mapping: Dict[ast.Expr, ast.Expr] = {}
    for macro, definition in defines.items():
        expanded = definition
        for _ in range(len(defines) + 1):
            new = ast.substitute(expanded, mapping)
            if new == expanded:
                break
            expanded = new
        mapping[ast.Var(macro)] = expanded

    def fix_expr(expr: ast.Expr) -> ast.Expr:
        return ast.substitute(expr, mapping)

    def fix_cmd(cmd: ast.Command) -> ast.Command:
        if isinstance(cmd, ast.Skip):
            return cmd
        if isinstance(cmd, ast.Assign):
            return ast.Assign(cmd.name, fix_expr(cmd.expr))
        if isinstance(cmd, ast.Sample):
            return ast.Sample(
                cmd.name,
                fix_expr(cmd.scale),
                ast.substitute_selector(cmd.selector, mapping),
                fix_expr(cmd.align),
            )
        if isinstance(cmd, ast.Seq):
            return ast.Seq(tuple(fix_cmd(c) for c in cmd.commands))
        if isinstance(cmd, ast.If):
            return ast.If(fix_expr(cmd.cond), fix_cmd(cmd.then), fix_cmd(cmd.orelse))
        if isinstance(cmd, ast.While):
            return ast.While(fix_expr(cmd.cond), fix_cmd(cmd.body), tuple(fix_expr(i) for i in cmd.invariants))
        if isinstance(cmd, ast.Return):
            return ast.Return(fix_expr(cmd.expr))
        if isinstance(cmd, ast.Havoc):
            return cmd
        if isinstance(cmd, ast.Assert):
            return ast.Assert(fix_expr(cmd.expr))
        if isinstance(cmd, ast.Assume):
            return ast.Assume(fix_expr(cmd.expr))
        raise TypeError(f"unknown command {cmd!r}")

    return ast.FunctionDef(
        name=function.name,
        params=function.params,
        ret_name=function.ret_name,
        ret_type=function.ret_type,
        precondition=fix_expr(function.precondition),
        body=fix_cmd(function.body),
        cost_bound=fix_expr(function.cost_bound),
    )


# ---------------------------------------------------------------------------
# Public helpers
# ---------------------------------------------------------------------------


def parse_function(source: str) -> ast.FunctionDef:
    """Parse a complete ShadowDP function definition."""
    return Parser(source).parse_function()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (useful in tests and the CLI)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    parser._expect("EOF")
    return expr


def parse_command(source: str) -> ast.Command:
    """Parse a command sequence (wrap in braces for a block)."""
    parser = Parser(source)
    if parser._check("OP", "{"):
        cmd = parser.parse_block()
    else:
        commands = []
        while not parser._check("EOF"):
            commands.append(parser.parse_command())
        cmd = ast.seq(*commands)
    parser._expect("EOF")
    return cmd
