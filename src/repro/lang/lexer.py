"""A hand-written lexer for the ShadowDP concrete syntax.

The concrete syntax follows the paper's figures as closely as ASCII allows:

* ``x^o`` and ``x^s`` stand for the hat variables ``x̂°`` and ``x̂†``;
* ``aligned`` / ``shadow`` stand for the selector versions ``°`` / ``†``;
* ``:=`` is assignment, ``::`` is list cons, and ``?:`` is the ternary.

Comments run from ``#`` or ``//`` to the end of the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, List


class LexError(ValueError):
    """Raised on malformed input, with a line/column position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of ``NUMBER``, ``IDENT``, ``HAT``, ``KEYWORD``, ``OP``
    or ``EOF``.  ``value`` holds the decoded payload: a ``Fraction`` for
    numbers, the identifier text for ``IDENT``/``KEYWORD``, a
    ``(base, version)`` pair for ``HAT`` and the operator text for ``OP``.
    """

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


KEYWORDS = frozenset(
    {
        "function",
        "returns",
        "precondition",
        "costbound",
        "define",
        "while",
        "invariant",
        "if",
        "else",
        "skip",
        "return",
        "true",
        "false",
        "Lap",
        "aligned",
        "shadow",
        "forall",
        "assert",
        "assume",
        "havoc",
        "abs",
        "list",
        "num",
        "bool",
    }
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    ":=",
    "::",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "?",
    ":",
    ";",
    ",",
    "!",
    "=",
)


class Lexer:
    """Streaming tokenizer over a source string."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "#" or (ch == "/" and self._peek(1) == "/"):
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_number(self) -> Token:
        line, column = self._line, self._column
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        return Token("NUMBER", Fraction(text), line, column)

    def _lex_word(self) -> Token:
        line, column = self._line, self._column
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        # A hat suffix turns `q^o` into a HAT token for q-hat-aligned.
        if self._peek() == "^":
            version = self._peek(1)
            if version not in ("o", "s"):
                raise self._error(f"bad hat suffix ^{version!r} (expected ^o or ^s)")
            after = self._peek(2)
            if after.isalnum() or after == "_":
                raise self._error("hat suffix must be exactly ^o or ^s")
            self._advance(2)
            return Token("HAT", (text, version), line, column)
        if text in KEYWORDS:
            return Token("KEYWORD", text, line, column)
        return Token("IDENT", text, line, column)

    def next_token(self) -> Token:
        """Return the next token (``EOF`` at end of input)."""
        self._skip_trivia()
        line, column = self._line, self._column
        if self._pos >= len(self._source):
            return Token("EOF", None, line, column)
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_word()
        for op in OPERATORS:
            if self._source.startswith(op, self._pos):
                self._advance(len(op))
                return Token("OP", op, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def tokens(self) -> Iterator[Token]:
        """Iterate all tokens, ending with a single ``EOF``."""
        while True:
            token = self.next_token()
            yield token
            if token.kind == "EOF":
                return


def tokenize(source: str) -> List[Token]:
    """Tokenize a whole source string into a list ending with ``EOF``."""
    return list(Lexer(source).tokens())
