"""Combinator helpers for building ShadowDP ASTs in Python code.

These shorthands keep golden tests and programmatic program construction
readable; they are a thin layer over :mod:`repro.lang.ast`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from repro.lang import ast

Number = Union[int, float, Fraction, str]


def num(value: Number) -> ast.Real:
    """A rational literal from an int, Fraction or exact string."""
    return ast.Real(Fraction(value))


def var(name: str) -> ast.Var:
    return ast.Var(name)


def hat(name: str, version: str = ast.ALIGNED) -> ast.Hat:
    return ast.Hat(name, version)


def coerce(value: Union[ast.Expr, Number]) -> ast.Expr:
    """Coerce a Python number into a literal, passing expressions through."""
    if isinstance(value, ast.Expr):
        return value
    return num(value)


def _binop(op: str, left, right) -> ast.BinOp:
    return ast.BinOp(op, coerce(left), coerce(right))


def add(left, right) -> ast.BinOp:
    return _binop("+", left, right)


def sub(left, right) -> ast.BinOp:
    return _binop("-", left, right)


def mul(left, right) -> ast.BinOp:
    return _binop("*", left, right)


def div(left, right) -> ast.BinOp:
    return _binop("/", left, right)


def lt(left, right) -> ast.BinOp:
    return _binop("<", left, right)


def le(left, right) -> ast.BinOp:
    return _binop("<=", left, right)


def gt(left, right) -> ast.BinOp:
    return _binop(">", left, right)


def ge(left, right) -> ast.BinOp:
    return _binop(">=", left, right)


def eq(left, right) -> ast.BinOp:
    return _binop("==", left, right)


def ne(left, right) -> ast.BinOp:
    return _binop("!=", left, right)


def and_(*parts) -> ast.Expr:
    exprs = [coerce(p) for p in parts]
    if not exprs:
        return ast.TRUE
    result = exprs[0]
    for part in exprs[1:]:
        result = ast.BinOp("&&", result, part)
    return result


def or_(*parts) -> ast.Expr:
    exprs = [coerce(p) for p in parts]
    if not exprs:
        return ast.FALSE
    result = exprs[0]
    for part in exprs[1:]:
        result = ast.BinOp("||", result, part)
    return result


def not_(operand) -> ast.Not:
    return ast.Not(coerce(operand))


def neg(operand) -> ast.Neg:
    return ast.Neg(coerce(operand))


def abs_(operand) -> ast.Abs:
    return ast.Abs(coerce(operand))


def ite(cond, then, orelse) -> ast.Ternary:
    return ast.Ternary(coerce(cond), coerce(then), coerce(orelse))


def index(base, idx) -> ast.Index:
    return ast.Index(coerce(base), coerce(idx))


def cons(head, tail) -> ast.Cons:
    return ast.Cons(coerce(head), coerce(tail))


def forall(name: str, body) -> ast.ForAll:
    return ast.ForAll(name, coerce(body))


def assign(name: str, expr) -> ast.Assign:
    return ast.Assign(name, coerce(expr))


def sample(name: str, scale, selector: ast.Selector, align) -> ast.Sample:
    return ast.Sample(name, coerce(scale), selector, coerce(align))


def if_(cond, then: ast.Command, orelse: ast.Command = None) -> ast.If:
    return ast.If(coerce(cond), then, orelse if orelse is not None else ast.Skip())


def while_(cond, body: ast.Command, invariants=()) -> ast.While:
    return ast.While(coerce(cond), body, tuple(coerce(i) for i in invariants))


def ret(expr) -> ast.Return:
    return ast.Return(coerce(expr))


def select_cond(cond, then: ast.Selector, orelse: ast.Selector) -> ast.SelectCond:
    return ast.SelectCond(coerce(cond), then, orelse)
