"""Abstract syntax for ShadowDP (paper Figure 3) and the target language.

All nodes are immutable (frozen dataclasses), hashable and comparable by
structure, which lets the type checker use syntactic equality of distance
expressions when joining typing environments, and lets tests compare
transformed programs against golden ASTs directly.

Naming conventions used throughout the code base:

* ``aligned`` corresponds to the paper's ``°`` (circle) version — the
  execution on the adjacent database whose randomness has been aligned.
* ``shadow`` corresponds to the paper's ``†`` (dagger) version — the
  execution on the adjacent database that reuses the original noise.
* A *hat* variable ``Hat("x", ALIGNED)`` is the paper's ``x̂°`` — the
  dynamically tracked distance of ``x`` for the aligned execution; in the
  concrete syntax it is written ``x^o`` (and ``x^s`` for ``x̂†``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator, Mapping, Optional, Tuple, Union

# ---------------------------------------------------------------------------
# Version tags
# ---------------------------------------------------------------------------

ALIGNED = "o"
SHADOW = "s"
VERSIONS = (ALIGNED, SHADOW)

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions, used by generic traversals."""
        return ()


@dataclass(frozen=True)
class Real(Expr):
    """A rational literal.  All arithmetic in the pipeline is exact."""

    value: Fraction

    def __post_init__(self) -> None:
        if not isinstance(self.value, Fraction):
            object.__setattr__(self, "value", Fraction(self.value))

    def __repr__(self) -> str:
        return f"Real({self.value})"


@dataclass(frozen=True)
class BoolLit(Expr):
    """A boolean literal ``true`` or ``false``."""

    value: bool


@dataclass(frozen=True)
class Var(Expr):
    """A normal or random program variable.

    The AST does not distinguish ``NVars`` from ``RVars`` (paper Fig. 3);
    the type checker tracks which names were bound by sampling commands.
    """

    name: str


@dataclass(frozen=True)
class Hat(Expr):
    """A distance-tracking variable ``x̂°`` (version ``ALIGNED``) or ``x̂†``.

    These are invisible in source programs except inside preconditions and
    sampling annotations; the type system introduces them when a distance
    is promoted to ``*`` (paper Section 4.3.1).
    """

    base: str
    version: str

    def __post_init__(self) -> None:
        if self.version not in VERSIONS:
            raise ValueError(f"bad hat version {self.version!r}")


def hat_name(base: str, version: str) -> str:
    """The canonical memory/assignment name of a hat variable (``x^o``)."""
    return f"{base}^{version}"


@dataclass(frozen=True)
class Neg(Expr):
    """Arithmetic negation ``-e``."""

    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation ``!e``."""

    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Abs(Expr):
    """Absolute value ``abs(e)``.

    Not part of the source syntax of Fig. 3; it appears in target programs
    for the privacy-cost update ``v_eps := ... + |n_eta| / r`` (Fig. 5) and
    in the rewrite assertions of Section 6.2.2.
    """

    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)


# Operator sets (paper Fig. 3: linear ops, other ops, comparators).
LINEAR_OPS = ("+", "-")
OTHER_OPS = ("*", "/")
COMPARATORS = ("<", "<=", ">", ">=", "==", "!=")
BOOL_OPS = ("&&", "||")
ALL_BINOPS = LINEAR_OPS + OTHER_OPS + COMPARATORS + BOOL_OPS


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation.  ``op`` is one of ``ALL_BINOPS``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ALL_BINOPS:
            raise ValueError(f"bad binary operator {self.op!r}")

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Ternary(Expr):
    """The numeric/boolean choice ``cond ? then : orelse``."""

    cond: Expr
    then: Expr
    orelse: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


@dataclass(frozen=True)
class Cons(Expr):
    """List extension ``head :: tail`` (paper ``e1 :: e2``)."""

    head: Expr
    tail: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.head, self.tail)


@dataclass(frozen=True)
class Index(Expr):
    """List indexing ``base[index]``."""

    base: Expr
    index: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.base, self.index)


@dataclass(frozen=True)
class ForAll(Expr):
    """A universally quantified formula ``forall x :: body``.

    Only allowed in function preconditions, where it expresses the
    adjacency relation over whole query lists (e.g. Fig. 1's
    ``forall i >= 0. -1 <= q̂°[i] <= 1``).
    """

    var: str
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


# ---------------------------------------------------------------------------
# Convenience literals
# ---------------------------------------------------------------------------

ZERO = Real(Fraction(0))
ONE = Real(Fraction(1))
TRUE = BoolLit(True)
FALSE = BoolLit(False)


# ---------------------------------------------------------------------------
# Distances and types
# ---------------------------------------------------------------------------


class Star:
    """The ``*`` distance: tracked dynamically through hat variables.

    A singleton — use the module-level ``STAR``.
    """

    _instance: Optional["Star"] = None

    def __new__(cls) -> "Star":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "STAR"


STAR = Star()

#: A distance is either a numeric expression or ``STAR`` (paper Fig. 3).
Distance = Union[Expr, Star]


def is_star(d: Distance) -> bool:
    """True when a distance is the dynamically-tracked ``*``."""
    return isinstance(d, Star)


class Type:
    """Base class for ShadowDP types."""

    __slots__ = ()


@dataclass(frozen=True)
class NumType(Type):
    """``num<d_aligned, d_shadow>`` — a real with two distances."""

    aligned: Distance = ZERO
    shadow: Distance = ZERO


@dataclass(frozen=True)
class BoolType(Type):
    """``bool`` — always at distance ``<0,0>``."""


@dataclass(frozen=True)
class ListType(Type):
    """``list t`` — a list whose elements all have type ``t``."""

    elem: Type


# ---------------------------------------------------------------------------
# Selectors (paper Fig. 3: S ::= e ? S1 : S2 | k)
# ---------------------------------------------------------------------------


class Selector:
    """Base class for sampling-annotation selectors."""

    __slots__ = ()

    def apply(self, aligned: Expr, shadow: Expr) -> Expr:
        """The select function ``S(<e1, e2>)`` of Figure 4."""
        raise NotImplementedError


@dataclass(frozen=True)
class SelectLeaf(Selector):
    """A constant selector: the aligned (``°``) or shadow (``†``) version."""

    version: str

    def __post_init__(self) -> None:
        if self.version not in VERSIONS:
            raise ValueError(f"bad selector version {self.version!r}")

    def apply(self, aligned: Expr, shadow: Expr) -> Expr:
        return aligned if self.version == ALIGNED else shadow


@dataclass(frozen=True)
class SelectCond(Selector):
    """A conditional selector ``e ? S1 : S2``."""

    cond: Expr
    then: Selector
    orelse: Selector

    def apply(self, aligned: Expr, shadow: Expr) -> Expr:
        left = self.then.apply(aligned, shadow)
        right = self.orelse.apply(aligned, shadow)
        if left == right:
            return left
        return Ternary(self.cond, left, right)


SELECT_ALIGNED = SelectLeaf(ALIGNED)
SELECT_SHADOW = SelectLeaf(SHADOW)


def selector_uses_shadow(sel: Selector) -> bool:
    """True when any leaf of the selector picks the shadow execution.

    LightDP is exactly the restriction of ShadowDP where this is never the
    case (paper Section 7); ``repro.baselines.lightdp`` rejects programs
    whose selectors use the shadow execution.
    """
    if isinstance(sel, SelectLeaf):
        return sel.version == SHADOW
    if isinstance(sel, SelectCond):
        return selector_uses_shadow(sel.then) or selector_uses_shadow(sel.orelse)
    raise TypeError(f"not a selector: {sel!r}")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


class Command:
    """Base class for all command nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Command):
    """The no-op command."""


@dataclass(frozen=True)
class Assign(Command):
    """Assignment ``x := e`` to a normal variable."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class Sample(Command):
    """The sampling command ``eta := Lap(scale), selector, align``.

    ``selector`` and ``align`` are the programmer annotations of Section 3.1;
    they have no effect on the semantics and only guide the type system.
    """

    name: str
    scale: Expr
    selector: Selector
    align: Expr


@dataclass(frozen=True)
class Seq(Command):
    """Sequential composition of zero or more commands."""

    commands: Tuple[Command, ...] = ()

    def __post_init__(self) -> None:
        # Flatten nested sequences so Seq((Seq((a,)), b)) == Seq((a, b)).
        flat: list[Command] = []
        for cmd in self.commands:
            if isinstance(cmd, Seq):
                flat.extend(cmd.commands)
            elif isinstance(cmd, Skip):
                continue
            else:
                flat.append(cmd)
        object.__setattr__(self, "commands", tuple(flat))


@dataclass(frozen=True)
class If(Command):
    """Branching ``if (e) { c1 } else { c2 }``."""

    cond: Expr
    then: Command
    orelse: Command = field(default_factory=Skip)


@dataclass(frozen=True)
class While(Command):
    """Looping ``while (e) { c }``.

    ``invariants`` carries optional programmer-supplied loop invariants
    used by the Hoare-mode verifier (the paper supplies these manually to
    CPAChecker when its own invariant inference fails, Section 6.2).
    """

    cond: Expr
    body: Command
    invariants: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Return(Command):
    """``return e`` — by convention the last command of a function."""

    expr: Expr


# Target-language extensions (paper Section 4.4 / Appendix E).


@dataclass(frozen=True)
class Havoc(Command):
    """``havoc x`` — set ``x`` to an arbitrary real (target language only)."""

    name: str


@dataclass(frozen=True)
class Assert(Command):
    """``assert(e)`` — proof obligation inserted by the type system."""

    expr: Expr


@dataclass(frozen=True)
class Assume(Command):
    """``assume(e)`` — verifier-facing assumption (target language only)."""

    expr: Expr


# ---------------------------------------------------------------------------
# Functions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Parameter:
    """A typed function parameter."""

    name: str
    type: Type


@dataclass(frozen=True)
class FunctionDef:
    """A complete ShadowDP function.

    Attributes
    ----------
    name:
        Function name.
    params:
        Typed parameters; their types carry the adjacency distances.
    ret_name / ret_type:
        The declared return variable and its type (listed below the
        signature in the paper's figures).
    precondition:
        The global invariant ``Psi``: sensitivity assumptions over the hat
        variables of starred parameters.
    body:
        The function body (a command).
    cost_bound:
        The privacy budget the transformed program must respect, i.e. the
        right-hand side of the final ``assert(v_eps <= bound)``.  Defaults
        to the variable ``eps``; SmartSum uses ``2 * eps`` (Appendix C.3).
    """

    name: str
    params: Tuple[Parameter, ...]
    ret_name: str
    ret_type: Type
    precondition: Expr
    body: Command
    cost_bound: Expr = Var("eps")

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def param(self, name: str) -> Parameter:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Generic traversals
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def free_vars(expr: Expr) -> frozenset:
    """The free ``Var`` names of an expression (bound quantifier vars excluded)."""
    names: set = set()
    bound: set = set()

    def go(e: Expr) -> None:
        if isinstance(e, Var):
            if e.name not in bound:
                names.add(e.name)
        elif isinstance(e, ForAll):
            already = e.var in bound
            bound.add(e.var)
            go(e.body)
            if not already:
                bound.discard(e.var)
        else:
            for child in e.children():
                go(child)

    go(expr)
    return frozenset(names)


def hat_vars(expr: Expr) -> frozenset:
    """All ``Hat`` nodes occurring in an expression."""
    return frozenset(node for node in walk(expr) if isinstance(node, Hat))


def substitute(expr: Expr, mapping: Mapping[Expr, Expr]) -> Expr:
    """Capture-avoiding simultaneous substitution of whole sub-expressions.

    ``mapping`` keys may be any expression nodes (typically ``Var`` or
    ``Hat``); every occurrence is replaced structurally.
    """
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, (Real, BoolLit, Var, Hat)):
        return expr
    if isinstance(expr, Neg):
        return Neg(substitute(expr.operand, mapping))
    if isinstance(expr, Not):
        return Not(substitute(expr.operand, mapping))
    if isinstance(expr, Abs):
        return Abs(substitute(expr.operand, mapping))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Ternary):
        return Ternary(
            substitute(expr.cond, mapping),
            substitute(expr.then, mapping),
            substitute(expr.orelse, mapping),
        )
    if isinstance(expr, Cons):
        return Cons(substitute(expr.head, mapping), substitute(expr.tail, mapping))
    if isinstance(expr, Index):
        return Index(substitute(expr.base, mapping), substitute(expr.index, mapping))
    if isinstance(expr, ForAll):
        shadowed = {k: v for k, v in mapping.items() if not (isinstance(k, Var) and k.name == expr.var)}
        return ForAll(expr.var, substitute(expr.body, shadowed))
    raise TypeError(f"substitute: unknown expression node {expr!r}")


def substitute_selector(sel: Selector, mapping: Mapping[Expr, Expr]) -> Selector:
    """Apply :func:`substitute` inside selector conditions."""
    if isinstance(sel, SelectLeaf):
        return sel
    if isinstance(sel, SelectCond):
        return SelectCond(
            substitute(sel.cond, mapping),
            substitute_selector(sel.then, mapping),
            substitute_selector(sel.orelse, mapping),
        )
    raise TypeError(f"not a selector: {sel!r}")


def command_iter(cmd: Command) -> Iterator[Command]:
    """Yield ``cmd`` and every sub-command, pre-order."""
    stack = [cmd]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Seq):
            stack.extend(reversed(node.commands))
        elif isinstance(node, If):
            stack.append(node.orelse)
            stack.append(node.then)
        elif isinstance(node, While):
            stack.append(node.body)


def assigned_vars(cmd: Command) -> frozenset:
    """``Asgnd(c)``: names assigned (or sampled, or havocked) anywhere in ``cmd``."""
    names: set = set()
    for node in command_iter(cmd):
        if isinstance(node, Assign):
            names.add(node.name)
        elif isinstance(node, (Sample, Havoc)):
            names.add(node.name)
    return frozenset(names)


def seq(*commands: Command) -> Command:
    """Build a command from parts, collapsing ``Skip`` and nested ``Seq``."""
    node = Seq(tuple(commands))
    if not node.commands:
        return Skip()
    if len(node.commands) == 1:
        return node.commands[0]
    return node
