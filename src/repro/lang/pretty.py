"""Pretty printer for ShadowDP ASTs.

The output is valid concrete syntax: for every expression, command and
function ``parse(pretty(x)) == x`` (tested property, see
``tests/lang/test_roundtrip.py``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.lang import ast

# Precedence levels, matching the parser (higher binds tighter).
_PREC_TERNARY = 1
_PREC_OR = 2
_PREC_AND = 3
_PREC_CONS = 4
_PREC_CMP = 5
_PREC_ADD = 6
_PREC_MUL = 7
_PREC_UNARY = 8
_PREC_POSTFIX = 9
_PREC_ATOM = 10

_BINOP_PREC = {
    "||": _PREC_OR,
    "&&": _PREC_AND,
    "<": _PREC_CMP,
    "<=": _PREC_CMP,
    ">": _PREC_CMP,
    ">=": _PREC_CMP,
    "==": _PREC_CMP,
    "!=": _PREC_CMP,
    "+": _PREC_ADD,
    "-": _PREC_ADD,
    "*": _PREC_MUL,
    "/": _PREC_MUL,
}


def _format_fraction(value: Fraction) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    # Emit an exact division so the parser reconstructs the same Fraction.
    return f"{value.numerator} / {value.denominator}"


def pretty_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render an expression, parenthesising only where precedence requires."""
    text, prec = _render(expr)
    if prec < parent_prec:
        return f"({text})"
    return text


def _render(expr: ast.Expr) -> tuple:
    if isinstance(expr, ast.Real):
        if expr.value < 0:
            # `-1 / 2` reads as a division chain, so keep MUL precedence
            # for non-integers to force parentheses where needed.
            prec = _PREC_MUL if expr.value.denominator != 1 else _PREC_UNARY
            return f"-{_format_fraction(-expr.value)}", prec
        if expr.value.denominator != 1:
            return _format_fraction(expr.value), _PREC_MUL
        return _format_fraction(expr.value), _PREC_ATOM
    if isinstance(expr, ast.BoolLit):
        return ("true" if expr.value else "false"), _PREC_ATOM
    if isinstance(expr, ast.Var):
        return expr.name, _PREC_ATOM
    if isinstance(expr, ast.Hat):
        return f"{expr.base}^{expr.version}", _PREC_ATOM
    if isinstance(expr, ast.Neg):
        inner = pretty_expr(expr.operand, _PREC_UNARY + 1)
        return f"-{inner}", _PREC_UNARY
    if isinstance(expr, ast.Not):
        inner = pretty_expr(expr.operand, _PREC_UNARY + 1)
        return f"!{inner}", _PREC_UNARY
    if isinstance(expr, ast.Abs):
        return f"abs({pretty_expr(expr.operand)})", _PREC_ATOM
    if isinstance(expr, ast.BinOp):
        prec = _BINOP_PREC[expr.op]
        if expr.op in ast.COMPARATORS:
            # Comparisons are non-associative: parenthesise nested ones.
            left = pretty_expr(expr.left, prec + 1)
            right = pretty_expr(expr.right, prec + 1)
        else:
            left = pretty_expr(expr.left, prec)
            right = pretty_expr(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if isinstance(expr, ast.Ternary):
        cond = pretty_expr(expr.cond, _PREC_OR)
        then = pretty_expr(expr.then, _PREC_TERNARY)
        orelse = pretty_expr(expr.orelse, _PREC_TERNARY)
        return f"{cond} ? {then} : {orelse}", _PREC_TERNARY
    if isinstance(expr, ast.Cons):
        head = pretty_expr(expr.head, _PREC_CONS + 1)
        tail = pretty_expr(expr.tail, _PREC_CONS)
        return f"{head} :: {tail}", _PREC_CONS
    if isinstance(expr, ast.Index):
        base = pretty_expr(expr.base, _PREC_POSTFIX)
        return f"{base}[{pretty_expr(expr.index)}]", _PREC_POSTFIX
    if isinstance(expr, ast.ForAll):
        return f"forall {expr.var} :: {pretty_expr(expr.body)}", _PREC_TERNARY
    raise TypeError(f"pretty_expr: unknown node {expr!r}")


def pretty_distance(d: ast.Distance) -> str:
    if ast.is_star(d):
        return "*"
    return pretty_expr(d)


def pretty_type(t: ast.Type) -> str:
    if isinstance(t, ast.BoolType):
        return "bool"
    if isinstance(t, ast.ListType):
        return f"list {pretty_type(t.elem)}"
    if isinstance(t, ast.NumType):
        if t.aligned == ast.ZERO and t.shadow == ast.ZERO:
            return "num<0,0>"
        return f"num<{pretty_distance(t.aligned)},{pretty_distance(t.shadow)}>"
    raise TypeError(f"pretty_type: unknown type {t!r}")


def pretty_selector(sel: ast.Selector) -> str:
    if isinstance(sel, ast.SelectLeaf):
        return "aligned" if sel.version == ast.ALIGNED else "shadow"
    if isinstance(sel, ast.SelectCond):
        cond = pretty_expr(sel.cond, _PREC_OR)
        return f"{cond} ? {pretty_selector(sel.then)} : {pretty_selector(sel.orelse)}"
    raise TypeError(f"pretty_selector: unknown selector {sel!r}")


def pretty_command(cmd: ast.Command, indent: int = 0) -> str:
    """Render a command with 4-space indentation."""
    lines = _command_lines(cmd, indent)
    return "\n".join(lines)


def _command_lines(cmd: ast.Command, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(cmd, ast.Skip):
        return [f"{pad}skip;"]
    if isinstance(cmd, ast.Assign):
        return [f"{pad}{cmd.name} := {pretty_expr(cmd.expr)};"]
    if isinstance(cmd, ast.Sample):
        scale = pretty_expr(cmd.scale)
        selector = pretty_selector(cmd.selector)
        align = pretty_expr(cmd.align, _PREC_TERNARY)
        return [f"{pad}{cmd.name} := Lap({scale}), {selector}, {align};"]
    if isinstance(cmd, ast.Seq):
        lines: List[str] = []
        for part in cmd.commands:
            lines.extend(_command_lines(part, indent))
        if not lines:
            lines = [f"{pad}skip;"]
        return lines
    if isinstance(cmd, ast.If):
        lines = [f"{pad}if ({pretty_expr(cmd.cond)}) {{"]
        lines.extend(_command_lines(cmd.then, indent + 1))
        if isinstance(cmd.orelse, ast.Skip) or (
            isinstance(cmd.orelse, ast.Seq) and not cmd.orelse.commands
        ):
            lines.append(f"{pad}}}")
        else:
            lines.append(f"{pad}}} else {{")
            lines.extend(_command_lines(cmd.orelse, indent + 1))
            lines.append(f"{pad}}}")
        return lines
    if isinstance(cmd, ast.While):
        lines = [f"{pad}while ({pretty_expr(cmd.cond)})"]
        for inv in cmd.invariants:
            lines.append(f"{pad}invariant {pretty_expr(inv)};")
        lines.append(f"{pad}{{")
        lines.extend(_command_lines(cmd.body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(cmd, ast.Return):
        return [f"{pad}return {pretty_expr(cmd.expr)};"]
    if isinstance(cmd, ast.Havoc):
        return [f"{pad}havoc {cmd.name};"]
    if isinstance(cmd, ast.Assert):
        return [f"{pad}assert({pretty_expr(cmd.expr)});"]
    if isinstance(cmd, ast.Assume):
        return [f"{pad}assume({pretty_expr(cmd.expr)});"]
    raise TypeError(f"pretty_command: unknown node {cmd!r}")


def pretty_function(function: ast.FunctionDef) -> str:
    """Render a full function definition."""
    params = ", ".join(f"{p.name}: {pretty_type(p.type)}" for p in function.params)
    lines = [f"function {function.name}({params})"]
    lines.append(f"returns {function.ret_name}: {pretty_type(function.ret_type)}")
    if function.precondition != ast.TRUE:
        lines.append(f"precondition {pretty_expr(function.precondition)};")
    if function.cost_bound != ast.Var("eps"):
        lines.append(f"costbound {pretty_expr(function.cost_bound)};")
    lines.append("{")
    lines.extend(_command_lines(function.body, 1))
    lines.append("}")
    return "\n".join(lines)
