"""The generic visitors, structured interpreter and pass manager.

Everything that used to be a per-layer ``isinstance`` ladder over
command nodes lives here exactly once:

* :func:`statement_kind` / :class:`StatementVisitor` — single dispatch
  point for simple statements.  Consumers subclass the visitor and
  implement ``visit_assign`` / ``visit_sample`` / … ; unknown kinds fall
  through to ``generic_visit``.
* :func:`map_expr` — a generic bottom-up expression rebuilder (the one
  expression traversal the symbolic executor, lowering and liveness all
  share).
* :class:`CFGWalker` — the structured interpreter over a
  :class:`~repro.ir.cfg.CFG`: linear statements dispatch through the
  visitor, and control flow calls the ``on_branch`` / ``on_loop`` hooks
  with the join block / loop header, so consumers write *semantics*
  (what a branch join or a loop means for their state) and never
  traversal.
* :func:`map_statements` — CFG rewrite: statement → statement(s),
  recursing into loop bodies; the shape of every lowering/cleanup pass.
* :class:`PassManager` / :class:`ProgramIR` — named passes over a
  program's CFG with the pass trail recorded for stage accounting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.ir.cfg import CFG, Block, Branch, Exit, IRError, Jump, LoopHeader
from repro.lang import ast

# ---------------------------------------------------------------------------
# Statement dispatch
# ---------------------------------------------------------------------------

#: The canonical statement-kind names, used to resolve visitor methods.
STATEMENT_KINDS: Dict[type, str] = {
    ast.Skip: "skip",
    ast.Assign: "assign",
    ast.Sample: "sample",
    ast.Havoc: "havoc",
    ast.Assert: "assert_",
    ast.Assume: "assume",
    ast.Return: "return_",
    ast.Seq: "seq",
    ast.If: "if_",
    ast.While: "while_",
}


def statement_kind(stmt: ast.Command) -> str:
    """The kind name of a command node (raises for non-commands)."""
    try:
        return STATEMENT_KINDS[type(stmt)]
    except KeyError:
        raise IRError(f"unknown command node {stmt!r}") from None


class StatementVisitor:
    """Kind-table dispatch for statements: ``visit_<kind>(stmt, *args)``.

    The one generic statement visitor of the IR; subclasses override
    only the kinds they care about.
    """

    def visit(self, stmt: ast.Command, *args):
        method = getattr(self, f"visit_{statement_kind(stmt)}", None)
        if method is None:
            return self.generic_visit(stmt, *args)
        return method(stmt, *args)

    def generic_visit(self, stmt: ast.Command, *args):
        raise IRError(f"{type(self).__name__} cannot handle {type(stmt).__name__}")


def selector_conditions(selector: ast.Selector) -> List[ast.Expr]:
    """Every branch condition inside a sampling-annotation selector."""
    out: List[ast.Expr] = []
    stack = [selector]
    while stack:
        sel = stack.pop()
        if isinstance(sel, ast.SelectCond):
            out.append(sel.cond)
            stack.extend([sel.then, sel.orelse])
    return out


def statement_reads(stmt: ast.Command) -> Tuple[ast.Expr, ...]:
    """The expressions a simple statement evaluates.

    This is the read-set at statement granularity — what liveness and
    demand analyses consume.  ``havoc`` reads nothing; a sampling
    command reads its scale, alignment and selector conditions.
    """
    if isinstance(stmt, ast.Assign):
        return (stmt.expr,)
    if isinstance(stmt, (ast.Assert, ast.Assume, ast.Return)):
        return (stmt.expr,)
    if isinstance(stmt, ast.Sample):
        return (stmt.scale, stmt.align, *selector_conditions(stmt.selector))
    if isinstance(stmt, (ast.Havoc, ast.Skip)):
        return ()
    raise IRError(f"not a simple statement: {stmt!r}")


# ---------------------------------------------------------------------------
# Generic expression rebuilding
# ---------------------------------------------------------------------------


def map_expr(expr: ast.Expr, fn: Callable[[ast.Expr], Optional[ast.Expr]]) -> ast.Expr:
    """Rebuild ``expr`` bottom-up, letting ``fn`` replace whole nodes.

    ``fn`` is consulted first at every node: a non-``None`` result is
    taken verbatim (no further descent); ``None`` means "recurse".  The
    rebuild is fully generic over the frozen-dataclass AST, so new
    expression nodes need no new traversal code anywhere.
    """
    replaced = fn(expr)
    if replaced is not None:
        return replaced
    values = []
    changed = False
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, ast.Expr):
            new = map_expr(value, fn)
            changed = changed or new is not value
            values.append(new)
        else:
            values.append(value)
    if not changed:
        return expr
    return type(expr)(*values)


# ---------------------------------------------------------------------------
# The structured CFG interpreter
# ---------------------------------------------------------------------------


class CFGWalker(StatementVisitor):
    """Drive an analysis or transformation over a CFG, structurally.

    ``run_region`` threads an opaque ``state`` through one level of the
    graph: statements dispatch through :class:`StatementVisitor` (each
    ``visit_<kind>(stmt, state)`` returns the next state), a branch
    calls ``on_branch(cfg, block, term, join, state)`` and resumes at
    the join, a loop calls ``on_loop(cfg, block, term, state)`` and
    resumes at the loop exit.  Subclasses implement the hooks — usually
    by calling :meth:`run_region` on the arms or the loop's body
    sub-CFG — and never write traversal order themselves.
    """

    def run(self, cfg: CFG, state):
        return self.run_region(cfg, cfg.entry, None, state)

    def run_region(self, cfg: CFG, start: int, stop: Optional[int], state):
        bid: Optional[int] = start
        while bid is not None and bid != stop:
            block = cfg.block(bid)
            for stmt in block.stmts:
                state = self.visit(stmt, state)
            term = block.term
            if isinstance(term, Jump):
                bid = term.target
            elif isinstance(term, Branch):
                join = cfg.join_of(block.id)
                state = self.on_branch(cfg, block, term, join, state)
                bid = join
            elif isinstance(term, LoopHeader):
                state = self.on_loop(cfg, block, term, state)
                bid = term.after
            elif isinstance(term, Exit):
                bid = None
            else:
                raise IRError(f"unknown terminator {term!r}")
        return state

    # -- control-flow hooks --------------------------------------------------

    def on_branch(self, cfg: CFG, block: Block, term: Branch, join: int, state):
        raise IRError(f"{type(self).__name__} does not handle branches")

    def on_loop(self, cfg: CFG, block: Block, term: LoopHeader, state):
        raise IRError(f"{type(self).__name__} does not handle loops")


# ---------------------------------------------------------------------------
# CFG rewriting
# ---------------------------------------------------------------------------

#: A statement rewriter: one statement in, a replacement out — either a
#: single statement, a sequence of statements, or ``None`` to drop it.
StatementRewrite = Callable[[ast.Command], Union[ast.Command, Sequence[ast.Command], None]]


def map_statements(cfg: CFG, fn: StatementRewrite) -> CFG:
    """A new CFG with ``fn`` applied to every statement, loops included.

    Block ids, terminators and the region structure are preserved, so
    passes compose and the result still round-trips through
    :func:`repro.ir.build.cfg_to_ast`.
    """
    out = CFG()
    out.entry = cfg.entry
    out._next_id = cfg._next_id
    for bid, block in cfg.blocks.items():
        stmts: List[ast.Command] = []
        for stmt in block.stmts:
            replaced = fn(stmt)
            if replaced is None:
                continue
            if isinstance(replaced, ast.Command):
                stmts.append(replaced)
            else:
                stmts.extend(replaced)
        term = block.term
        if isinstance(term, LoopHeader):
            term = LoopHeader(
                cond=term.cond,
                body=map_statements(term.body, fn),
                after=term.after,
                invariants=term.invariants,
            )
        out.blocks[bid] = Block(bid, stmts, term)
    return out


# ---------------------------------------------------------------------------
# Constant-guard folding
# ---------------------------------------------------------------------------


def fold_constant_guards(cfg: CFG, fold_loops: bool = False) -> CFG:
    """Fold branches whose guard is trivially true/false into jumps.

    Parameter binding (the unroll regime's ``size=4, N=2`` substitution)
    leaves literally-constant branch guards behind; folding them before
    symbolic execution means statically-dead arms are never walked and
    dead obligations are never generated.  Loop bodies are folded
    recursively.  ``fold_loops`` additionally removes loops whose guard
    is constant-false — sound for unrolling, but **not** in invariant
    mode, where entry/preservation obligations are emitted even for a
    loop that never runs (Houdini may inject candidates into any loop,
    so annotation-free loops are not exempt).

    Block ids and the region structure of the surviving graph are
    preserved (dead blocks stay in the graph, unreachable), so the
    result composes with every other pass and walker.
    """
    from repro.core.simplify import simplify

    out = cfg.copy()
    for block in out.blocks.values():
        term = block.term
        if isinstance(term, Branch):
            cond = simplify(term.cond)
            if cond == ast.TRUE:
                block.term = Jump(term.then)
            elif cond == ast.FALSE:
                block.term = Jump(term.orelse)
        elif isinstance(term, LoopHeader):
            if fold_loops and simplify(term.cond) == ast.FALSE:
                block.term = Jump(term.after)
                continue
            body = fold_constant_guards(term.body, fold_loops)
            block.term = LoopHeader(
                cond=term.cond,
                body=body,
                after=term.after,
                invariants=term.invariants,
            )
    return out


# ---------------------------------------------------------------------------
# Program IR and the pass manager
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgramIR:
    """One program's CFG plus provenance: which passes produced it."""

    function: ast.FunctionDef
    cfg: CFG
    passes: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.function.name

    def with_cfg(self, cfg: CFG, pass_name: str) -> "ProgramIR":
        return ProgramIR(self.function, cfg, self.passes + (pass_name,))

    def stats(self) -> Dict[str, object]:
        """CFG statistics plus the pass trail, for stage accounting."""
        stats: Dict[str, object] = dict(self.cfg.stats())
        stats["passes"] = list(self.passes)
        return stats


class PassManager:
    """Run a fixed sequence of named CFG passes over a :class:`ProgramIR`."""

    def __init__(self, passes: Iterable[Tuple[str, Callable[[CFG], CFG]]] = ()) -> None:
        self.passes: List[Tuple[str, Callable[[CFG], CFG]]] = list(passes)

    def add(self, name: str, fn: Callable[[CFG], CFG]) -> "PassManager":
        self.passes.append((name, fn))
        return self

    def run(self, ir: ProgramIR) -> ProgramIR:
        for name, fn in self.passes:
            ir = ir.with_cfg(fn(ir.cfg), name)
        return ir
