"""Unified CFG-based program IR.

One control-flow-graph representation shared by every front/middle-end
layer of the pipeline: the shadow type checker walks it as a forward
dataflow problem, target lowering and dead-store elimination are rewrite
passes over it, and the symbolic executor runs it block by block with
explicit store merging at join nodes.  The per-layer ``isinstance``
ladders over the raw AST that each of those files used to carry live
here exactly once (:mod:`repro.ir.passes`).

Layout
------
:mod:`repro.ir.cfg`
    Basic blocks, terminators (:class:`Jump` / :class:`Branch` /
    :class:`LoopHeader` / :class:`Exit`), and the :class:`CFG` container
    with edge queries, reverse-post-order traversal, join-point
    computation and graph statistics.  Loops are hierarchical: a loop
    header block carries its invariant annotations and owns the body as
    a sub-CFG, which is what lets the verifier treat each loop as its
    own unit in both unroll and invariant modes.
:mod:`repro.ir.build`
    The AST → CFG lowering and its verified inverse ``cfg_to_ast`` (the
    round-trip is pinned by property tests over every registry program).
:mod:`repro.ir.passes`
    The single generic statement/expression visitor
    (:class:`StatementVisitor`, :func:`map_expr`), the structured
    interpreter :class:`CFGWalker` that consumers subclass, CFG rewrite
    helpers (:func:`map_statements`) and the :class:`PassManager`.
"""

from repro.ir.cfg import CFG, Block, Branch, Exit, Jump, LoopHeader
from repro.ir.build import ast_to_cfg, cfg_to_ast
from repro.ir.passes import (
    CFGWalker,
    PassManager,
    ProgramIR,
    StatementVisitor,
    fold_constant_guards,
    map_expr,
    map_statements,
    statement_kind,
    statement_reads,
)

__all__ = [
    "CFG",
    "Block",
    "Branch",
    "CFGWalker",
    "Exit",
    "Jump",
    "LoopHeader",
    "PassManager",
    "ProgramIR",
    "StatementVisitor",
    "ast_to_cfg",
    "cfg_to_ast",
    "fold_constant_guards",
    "map_expr",
    "map_statements",
    "statement_kind",
    "statement_reads",
]
