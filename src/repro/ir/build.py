"""AST ↔ CFG conversion.

``ast_to_cfg`` lowers a structured :class:`~repro.lang.ast.Command` into
basic blocks: straight-line commands accumulate into the current block,
an ``if`` ends it with a :class:`~repro.ir.cfg.Branch` whose arms
reconverge at a fresh join block, and a ``while`` becomes a dedicated
:class:`~repro.ir.cfg.LoopHeader` block owning its body as a sub-CFG.

``cfg_to_ast`` is the verified inverse: it re-derives the structured
program from the graph alone (joins via :meth:`CFG.join_of`, loops from
their headers).  The round-trip ``cfg_to_ast(ast_to_cfg(c))`` equals
``c`` up to the :func:`repro.lang.ast.seq` normal form — nested ``Seq``
flattening and ``skip`` elision — which the pretty-printer already
quotients away; property tests pin this over every registry program.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.cfg import CFG, Block, Branch, Exit, IRError, Jump, LoopHeader
from repro.lang import ast

# ---------------------------------------------------------------------------
# AST → CFG
# ---------------------------------------------------------------------------


def ast_to_cfg(cmd: ast.Command) -> CFG:
    """Lower a structured command into a basic-block CFG."""
    cfg = CFG()
    current = cfg.new_block()
    cfg.entry = current.id
    current = _lower(cfg, current, cmd)
    current.term = Exit()
    return cfg


def _lower(cfg: CFG, current: Block, cmd: ast.Command) -> Block:
    """Append ``cmd`` after ``current``; return the block control ends in."""
    if isinstance(cmd, ast.Skip):
        return current
    if isinstance(cmd, ast.Seq):
        for part in cmd.commands:
            current = _lower(cfg, current, part)
        return current
    if isinstance(cmd, ast.If):
        return _lower_if(cfg, current, cmd)
    if isinstance(cmd, ast.While):
        return _lower_while(cfg, current, cmd)
    current.append(cmd)
    return current


def _lower_if(cfg: CFG, current: Block, cmd: ast.If) -> Block:
    then_entry = cfg.new_block()
    then_exit = _lower(cfg, then_entry, cmd.then)
    empty_else = isinstance(cmd.orelse, ast.Skip) or (
        isinstance(cmd.orelse, ast.Seq) and not cmd.orelse.commands
    )
    if empty_else:
        join = cfg.new_block()
        current.term = Branch(cmd.cond, then_entry.id, join.id)
    else:
        else_entry = cfg.new_block()
        else_exit = _lower(cfg, else_entry, cmd.orelse)
        join = cfg.new_block()
        current.term = Branch(cmd.cond, then_entry.id, else_entry.id)
        else_exit.term = Jump(join.id)
    then_exit.term = Jump(join.id)
    return join


def _lower_while(cfg: CFG, current: Block, cmd: ast.While) -> Block:
    header = cfg.new_block()
    current.term = Jump(header.id)
    after = cfg.new_block()
    header.term = LoopHeader(
        cond=cmd.cond,
        body=ast_to_cfg(cmd.body),
        after=after.id,
        invariants=tuple(cmd.invariants),
    )
    return after


# ---------------------------------------------------------------------------
# CFG → AST
# ---------------------------------------------------------------------------


def cfg_to_ast(cfg: CFG) -> ast.Command:
    """Reconstruct the structured command a CFG denotes."""
    return region_to_ast(cfg, cfg.entry, None)


def region_to_ast(cfg: CFG, start: int, stop: Optional[int]) -> ast.Command:
    """The structured command for the region ``[start, stop)``.

    ``stop`` is an exclusive region boundary (a join block or loop exit
    owned by an enclosing construct); ``None`` means run to the exit.
    """
    parts: List[ast.Command] = []
    bid: Optional[int] = start
    while bid is not None and bid != stop:
        block = cfg.block(bid)
        parts.extend(block.stmts)
        term = block.term
        if isinstance(term, Jump):
            bid = term.target
        elif isinstance(term, Branch):
            join = cfg.join_of(block.id)
            then_cmd = region_to_ast(cfg, term.then, join)
            else_cmd = (
                ast.Skip() if term.orelse == join else region_to_ast(cfg, term.orelse, join)
            )
            parts.append(ast.If(term.cond, then_cmd, else_cmd))
            bid = join
        elif isinstance(term, LoopHeader):
            parts.append(ast.While(term.cond, cfg_to_ast(term.body), term.invariants))
            bid = term.after
        elif isinstance(term, Exit):
            bid = None
        else:
            raise IRError(f"unknown terminator {term!r}")
    return ast.seq(*parts)
