"""Basic-block control-flow graph for ShadowDP programs.

A :class:`CFG` is a set of :class:`Block`\\ s, each holding a list of
*simple* statements (assignments, sampling, havoc, assert/assume,
return — the straight-line subset of :mod:`repro.lang.ast`) and exactly
one terminator:

* :class:`Jump` — unconditional edge to another block;
* :class:`Branch` — two-way conditional; structured lowering guarantees
  both arms reconverge at a unique *join block* (:meth:`CFG.join_of`);
* :class:`LoopHeader` — a loop: the guard, the programmer-supplied
  invariant annotations, the loop *body as its own sub-CFG*, and the
  block control falls to when the guard fails.  Keeping bodies
  hierarchical gives every consumer a per-loop sub-CFG for free — the
  checker's fixpoint iterates it, the symbolic executor unrolls it or
  havocs over it — while the graph at any one level stays acyclic;
* :class:`Exit` — function exit.

``Return`` is deliberately a plain statement, not a terminator: in the
paper's language ``return e`` is by convention the last command and has
no early-exit semantics (the symbolic executor falls through it), so
giving it an edge would misrepresent the source semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Union

from repro.lang import ast

#: Statement node types a basic block may hold.
SIMPLE_STATEMENTS = (
    ast.Assign,
    ast.Sample,
    ast.Havoc,
    ast.Assert,
    ast.Assume,
    ast.Return,
)


class IRError(ValueError):
    """Raised for malformed CFGs (unknown blocks, non-simple statements)."""


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Jump:
    """Unconditional transfer to ``target``."""

    target: int


@dataclass(frozen=True)
class Branch:
    """Two-way conditional: ``cond ? then : orelse``.

    Structured lowering guarantees both arms reach a common join block;
    an empty arm points directly at the join.
    """

    cond: ast.Expr
    then: int
    orelse: int


@dataclass(frozen=True)
class LoopHeader:
    """A loop header: guard, invariant annotations, body sub-CFG, exit.

    The back edge is implicit — the body sub-CFG's exit re-enters this
    header.  ``after`` is the unique loop-exit block at this level.
    """

    cond: ast.Expr
    body: "CFG"
    after: int
    invariants: Tuple[ast.Expr, ...] = ()


@dataclass(frozen=True)
class Exit:
    """Function exit; the owning block is the CFG's exit block."""


Terminator = Union[Jump, Branch, LoopHeader, Exit]


# ---------------------------------------------------------------------------
# Blocks and the graph
# ---------------------------------------------------------------------------


@dataclass
class Block:
    """One basic block: straight-line statements plus a terminator."""

    id: int
    stmts: List[ast.Command] = field(default_factory=list)
    term: Terminator = Exit()

    def append(self, stmt: ast.Command) -> None:
        if not isinstance(stmt, SIMPLE_STATEMENTS):
            raise IRError(f"not a simple statement: {stmt!r}")
        self.stmts.append(stmt)


class CFG:
    """A function-level (or loop-body) control-flow graph."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry: int = 0
        self._next_id: int = 0
        self._joins: Dict[int, int] = {}

    # -- construction --------------------------------------------------------

    def new_block(self) -> Block:
        block = Block(self._next_id)
        self.blocks[block.id] = block
        self._next_id += 1
        return block

    def copy(self) -> "CFG":
        """A copy whose statement lists are fresh (safe to mutate).

        Terminators — including loop-body sub-CFGs — are immutable and
        shared; this is what single-block insertions (``init-cost``,
        ``budget-assert``) need without rebuilding the whole hierarchy.
        """
        out = CFG()
        out.entry = self.entry
        out._next_id = self._next_id
        for bid, block in self.blocks.items():
            out.blocks[bid] = Block(bid, list(block.stmts), block.term)
        return out

    # -- queries -------------------------------------------------------------

    def block(self, bid: int) -> Block:
        try:
            return self.blocks[bid]
        except KeyError:
            raise IRError(f"no block {bid} in CFG") from None

    def exit_id(self) -> int:
        for block in self.blocks.values():
            if isinstance(block.term, Exit):
                return block.id
        raise IRError("CFG has no exit block")

    def successors(self, bid: int) -> Tuple[int, ...]:
        """Same-level successor block ids (loop bodies are nested)."""
        term = self.block(bid).term
        if isinstance(term, Jump):
            return (term.target,)
        if isinstance(term, Branch):
            return (term.then, term.orelse)
        if isinstance(term, LoopHeader):
            return (term.after,)
        return ()

    def predecessors(self, bid: int) -> Tuple[int, ...]:
        return tuple(
            other for other in sorted(self.blocks) if bid in self.successors(other)
        )

    def rpo(self) -> List[int]:
        """Reverse post-order of this level's DAG, from the entry."""
        seen: set = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            if bid in seen:
                return
            seen.add(bid)
            for succ in self.successors(bid):
                visit(succ)
            order.append(bid)

        visit(self.entry)
        return list(reversed(order))

    def reachable_from(self, bid: int) -> frozenset:
        """All same-level blocks reachable from ``bid`` (inclusive)."""
        seen: set = set()
        stack = [bid]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.successors(current))
        return frozenset(seen)

    def join_of(self, branch_block: int) -> int:
        """The join block where a :class:`Branch`'s arms reconverge.

        Within one level the graph is a structured DAG, so a
        breadth-first walk from the else-arm meets the then-arm's
        reachable set first at exactly the join: every block of a nested
        region is reachable from only its own arm.  The graph is fixed
        after construction, so the answer is memoized per branch — the
        walkers re-enter branches once per loop unrolling / fixpoint
        iteration.
        """
        cached = self._joins.get(branch_block)
        if cached is not None:
            return cached
        term = self.block(branch_block).term
        if not isinstance(term, Branch):
            raise IRError(f"block {branch_block} is not a branch")
        then_side = self.reachable_from(term.then)
        frontier = [term.orelse]
        seen: set = set()
        while frontier:
            current = frontier.pop(0)
            if current in then_side:
                self._joins[branch_block] = current
                return current
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.successors(current))
        raise IRError(f"branch at block {branch_block} has no join point")

    # -- whole-program iteration ---------------------------------------------

    def walk_blocks(self) -> Iterator[Tuple["CFG", Block]]:
        """Every block, recursing into loop-body sub-CFGs, in block order."""
        for bid in sorted(self.blocks):
            block = self.blocks[bid]
            yield self, block
            if isinstance(block.term, LoopHeader):
                yield from block.term.body.walk_blocks()

    def walk_statements(self) -> Iterator[ast.Command]:
        """Every simple statement in the program, loop bodies included."""
        for _, block in self.walk_blocks():
            yield from block.stmts

    def loop_headers(self) -> Iterator[Tuple[Block, LoopHeader]]:
        """Every loop header in the program, outermost first."""
        for _, block in self.walk_blocks():
            if isinstance(block.term, LoopHeader):
                yield block, block.term

    def assigned_names(self) -> frozenset:
        """Names written anywhere: assigned, sampled, or havocked.

        Matches :func:`repro.lang.ast.assigned_vars` on the program this
        CFG was built from.
        """
        names: set = set()
        for stmt in self.walk_statements():
            if isinstance(stmt, (ast.Assign, ast.Sample, ast.Havoc)):
                names.add(stmt.name)
        return frozenset(names)

    # -- statistics ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Block/edge/loop counts over the whole hierarchy.

        A loop header contributes three structural edges — into the
        body, the implicit back edge, and the loop exit — on top of its
        body sub-CFG's own counts.
        """
        blocks = edges = loops = 0
        for cfg, block in self.walk_blocks():
            blocks += 1
            term = block.term
            if isinstance(term, Jump):
                edges += 1
            elif isinstance(term, Branch):
                edges += 2
            elif isinstance(term, LoopHeader):
                loops += 1
                edges += 3
        return {"blocks": blocks, "edges": edges, "loops": loops}

    def __repr__(self) -> str:
        stats = self.stats()
        return f"CFG(blocks={stats['blocks']}, edges={stats['edges']}, loops={stats['loops']})"


def dump(cfg: CFG, indent: str = "") -> str:
    """A human-readable listing of the CFG (``repro ir FILE``)."""
    from repro.lang.pretty import pretty_command, pretty_expr

    lines: List[str] = []
    for bid in sorted(cfg.blocks):
        block = cfg.blocks[bid]
        entry = " (entry)" if bid == cfg.entry else ""
        lines.append(f"{indent}bb{bid}{entry}:")
        for stmt in block.stmts:
            for text in pretty_command(stmt).splitlines():
                lines.append(f"{indent}    {text}")
        term = block.term
        if isinstance(term, Jump):
            lines.append(f"{indent}    goto bb{term.target}")
        elif isinstance(term, Branch):
            lines.append(
                f"{indent}    branch {pretty_expr(term.cond)} "
                f"? bb{term.then} : bb{term.orelse}"
            )
        elif isinstance(term, LoopHeader):
            header = f"{indent}    loop {pretty_expr(term.cond)} -> bb{term.after} when false"
            lines.append(header)
            for inv in term.invariants:
                lines.append(f"{indent}        invariant {pretty_expr(inv)}")
            lines.append(f"{indent}        body:")
            lines.append(dump(term.body, indent + "        "))
        else:
            lines.append(f"{indent}    exit")
    return "\n".join(lines)
