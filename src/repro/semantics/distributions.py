"""Sampling primitives.

Only the Laplace distribution is needed (the paper leaves other noise
distributions, e.g. Exponential for ExpMech, as future work — Section 8).
Sampling goes through the inverse CDF so any ``random.Random``-style
uniform source works, which keeps tests reproducible without numpy.
"""

from __future__ import annotations

import math
from typing import Protocol


class UniformSource(Protocol):
    def random(self) -> float:  # pragma: no cover — protocol
        ...


def laplace_sample(rng: UniformSource, scale: float) -> float:
    """One draw from Laplace(0, scale) via inverse-CDF transform."""
    if scale <= 0:
        raise ValueError(f"Laplace scale must be positive, got {scale}")
    u = rng.random() - 0.5
    # Guard the log against u = ±0.5 exactly.
    magnitude = max(1e-300, 1.0 - 2.0 * abs(u))
    return -scale * math.copysign(1.0, u) * math.log(magnitude)


def laplace_pdf(x: float, scale: float) -> float:
    """The density of Laplace(0, scale) at ``x``."""
    if scale <= 0:
        raise ValueError(f"Laplace scale must be positive, got {scale}")
    return math.exp(-abs(x) / scale) / (2.0 * scale)
