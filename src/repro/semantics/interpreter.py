"""A concrete interpreter for ShadowDP source, instrumented and target
programs (the semantics of Section 3.2, Appendix A and Appendix E).

Memories map variable names (including hat names like ``bq^s``) to
floats, booleans or tuples (lists).  Noise comes from a pluggable
:class:`NoiseSource`, so the same interpreter runs real randomized
executions (``RandomNoise``), deterministic replays (``FixedNoise``),
and target-program executions where ``havoc`` consumes the same stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.lang import ast
from repro.lang.pretty import pretty_expr
from repro.semantics.distributions import laplace_sample

Value = Union[float, bool, Tuple]
Memory = Dict[str, Value]


class RuntimeFailure(RuntimeError):
    """A failed assertion or an evaluation error during interpretation."""


class NoiseSource:
    """Supplies the value of each sampling/havoc command in order."""

    def draw(self, scale: float) -> float:  # pragma: no cover — interface
        raise NotImplementedError


class RandomNoise(NoiseSource):
    """Laplace noise from a seeded PRNG; records the drawn values."""

    def __init__(self, rng: Optional[random.Random] = None, seed: Optional[int] = None) -> None:
        self.rng = rng or random.Random(seed)
        self.drawn: List[float] = []

    def draw(self, scale: float) -> float:
        value = laplace_sample(self.rng, scale)
        self.drawn.append(value)
        return value


class FixedNoise(NoiseSource):
    """Replays a predetermined noise vector (scales are ignored)."""

    def __init__(self, values) -> None:
        self.values = list(values)
        self.position = 0

    def draw(self, scale: float) -> float:
        if self.position >= len(self.values):
            raise RuntimeFailure(
                f"noise vector exhausted after {self.position} draws"
            )
        value = self.values[self.position]
        self.position += 1
        return value


@dataclass
class SampleEvent:
    """One sampling/havoc occurrence, for alignment bookkeeping."""

    name: str
    value: float
    scale: Optional[float]


class Interpreter:
    """Evaluates commands over a mutable memory."""

    def __init__(self, noise: Optional[NoiseSource] = None, check_asserts: bool = True) -> None:
        self.noise = noise or RandomNoise(seed=0)
        self.check_asserts = check_asserts
        self.samples: List[SampleEvent] = []
        #: called after each Sample with (command, memory) — the
        #: relational validator hooks alignment tracking in here.
        self.on_sample: Optional[Callable[[ast.Sample, Memory], None]] = None

    # -- expressions --------------------------------------------------------

    def eval(self, expr: ast.Expr, memory: Memory) -> Value:
        if isinstance(expr, ast.Real):
            return float(expr.value)
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Var):
            return self._load(expr.name, memory)
        if isinstance(expr, ast.Hat):
            return self._load(ast.hat_name(expr.base, expr.version), memory)
        if isinstance(expr, ast.Neg):
            return -self.eval(expr.operand, memory)
        if isinstance(expr, ast.Not):
            return not self.eval(expr.operand, memory)
        if isinstance(expr, ast.Abs):
            return abs(self.eval(expr.operand, memory))
        if isinstance(expr, ast.BinOp):
            return self._binop(expr, memory)
        if isinstance(expr, ast.Ternary):
            if self.eval(expr.cond, memory):
                return self.eval(expr.then, memory)
            return self.eval(expr.orelse, memory)
        if isinstance(expr, ast.Cons):
            head = self.eval(expr.head, memory)
            tail = self.eval(expr.tail, memory)
            if not isinstance(tail, tuple):
                raise RuntimeFailure(f"cons onto non-list in {pretty_expr(expr)}")
            return (head,) + tail
        if isinstance(expr, ast.Index):
            base = self.eval(expr.base, memory)
            index = self.eval(expr.index, memory)
            if not isinstance(base, tuple):
                raise RuntimeFailure(f"indexing a non-list in {pretty_expr(expr)}")
            i = int(index)
            if i < 0 or i >= len(base):
                raise RuntimeFailure(
                    f"index {i} out of bounds (length {len(base)}) in {pretty_expr(expr)}"
                )
            return base[i]
        raise RuntimeFailure(f"cannot evaluate {expr!r}")

    def _load(self, name: str, memory: Memory) -> Value:
        if name not in memory:
            raise RuntimeFailure(f"variable {name!r} read before assignment")
        return memory[name]

    def _binop(self, expr: ast.BinOp, memory: Memory) -> Value:
        op = expr.op
        if op == "&&":
            return bool(self.eval(expr.left, memory)) and bool(self.eval(expr.right, memory))
        if op == "||":
            return bool(self.eval(expr.left, memory)) or bool(self.eval(expr.right, memory))
        left = self.eval(expr.left, memory)
        right = self.eval(expr.right, memory)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise RuntimeFailure(f"division by zero in {pretty_expr(expr)}")
            return left / right
        table = {
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
            "==": left == right,
            "!=": left != right,
        }
        return table[op]

    # -- commands -----------------------------------------------------------

    def exec(self, cmd: ast.Command, memory: Memory) -> Optional[Value]:
        """Execute ``cmd`` in-place; returns the ``return`` value if hit."""
        if isinstance(cmd, ast.Skip):
            return None
        if isinstance(cmd, ast.Seq):
            for part in cmd.commands:
                result = self.exec(part, memory)
                if result is not None:
                    return result
            return None
        if isinstance(cmd, ast.Assign):
            memory[cmd.name] = self.eval(cmd.expr, memory)
            return None
        if isinstance(cmd, ast.Sample):
            scale = float(self.eval(cmd.scale, memory))
            value = self.noise.draw(scale)
            memory[cmd.name] = value
            self.samples.append(SampleEvent(cmd.name, value, scale))
            if self.on_sample is not None:
                self.on_sample(cmd, memory)
            return None
        if isinstance(cmd, ast.Havoc):
            value = self.noise.draw(1.0)
            memory[cmd.name] = value
            self.samples.append(SampleEvent(cmd.name, value, None))
            return None
        if isinstance(cmd, ast.If):
            branch = cmd.then if self.eval(cmd.cond, memory) else cmd.orelse
            return self.exec(branch, memory)
        if isinstance(cmd, ast.While):
            steps = 0
            while self.eval(cmd.cond, memory):
                result = self.exec(cmd.body, memory)
                if result is not None:
                    return result
                steps += 1
                if steps > 1_000_000:
                    raise RuntimeFailure("loop exceeded 1,000,000 iterations")
            return None
        if isinstance(cmd, ast.Return):
            return self.eval(cmd.expr, memory)
        if isinstance(cmd, ast.Assert):
            if self.check_asserts and not self.eval(cmd.expr, memory):
                raise RuntimeFailure(f"assertion failed: {pretty_expr(cmd.expr)}")
            return None
        if isinstance(cmd, ast.Assume):
            return None
        raise RuntimeFailure(f"cannot execute {cmd!r}")


def initial_memory(function: ast.FunctionDef, inputs: Dict[str, Value]) -> Memory:
    """Build the starting memory: parameters plus empty return lists."""
    memory: Memory = {}
    for param in function.params:
        if param.name not in inputs:
            raise RuntimeFailure(f"missing input for parameter {param.name!r}")
        value = inputs[param.name]
        if isinstance(value, list):
            value = tuple(value)
        memory[param.name] = value
    if isinstance(function.ret_type, ast.ListType):
        memory.setdefault(function.ret_name, ())
    return memory


def run_function(
    function: ast.FunctionDef,
    inputs: Dict[str, Value],
    noise: Optional[NoiseSource] = None,
    body: Optional[ast.Command] = None,
    check_asserts: bool = True,
) -> Tuple[Value, Interpreter]:
    """Run a function on concrete inputs; returns (result, interpreter).

    ``body`` overrides the executed command (used to run the instrumented
    body ``c′`` while keeping the function's signature for memory setup).
    """
    interpreter = Interpreter(noise=noise, check_asserts=check_asserts)
    memory = initial_memory(function, inputs)
    result = interpreter.exec(body if body is not None else function.body, memory)
    return result, interpreter
