"""Executable semantics for ShadowDP programs.

* :mod:`repro.semantics.distributions` — exact-style sampling helpers
  (Laplace via inverse CDF) shared by the interpreter and the empirical
  estimator.
* :mod:`repro.semantics.interpreter` — the denotational semantics of
  Section 3.2 / Appendix A made executable: runs source *or* instrumented
  programs on concrete memories, drawing noise from a pluggable source.
* :mod:`repro.semantics.relational` — an executable reading of the
  soundness theorem (Section 5): runs the instrumented program, rebuilds
  the randomness alignment ``f(H)`` from the sampling annotations
  (including the shadow-execution resets), replays the *aligned* run on
  the adjacent database, and checks that outputs coincide while the
  accumulated privacy cost stays within budget.
"""

from repro.semantics.distributions import laplace_sample, laplace_pdf
from repro.semantics.interpreter import (
    Interpreter,
    RandomNoise,
    FixedNoise,
    RuntimeFailure,
    run_function,
)
from repro.semantics.relational import AlignmentReport, validate_alignment, adjacent_memory

__all__ = [
    "laplace_sample",
    "laplace_pdf",
    "Interpreter",
    "RandomNoise",
    "FixedNoise",
    "RuntimeFailure",
    "run_function",
    "AlignmentReport",
    "validate_alignment",
    "adjacent_memory",
]
