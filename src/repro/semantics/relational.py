"""An executable reading of the soundness theorem (paper Section 5).

For a checked program, a concrete input memory, a concrete adjacency
witness (the hat arrays / initial distances) and a concrete noise vector
``H``, the validator:

1. runs the *instrumented* body ``c′`` on the extended memory with noise
   ``H``, resolving each sampling annotation at runtime — this yields
   the randomness alignment ``f(H)`` (a per-sample offset ``n_η``, where
   a selector choosing the shadow execution *resets* all earlier offsets
   to zero, because the shadow run reuses the original noise), and the
   accumulated privacy cost ``Σ |offset_k| / r_k``;
2. runs the *source* body on the adjacent memory (inputs shifted by
   their declared distances) with the aligned noise ``f(H)``;
3. checks the two properties Theorem 2 promises: the aligned run
   produces the **same output**, and the privacy cost is **at most** the
   declared budget.

Property tests drive this over random inputs and noise for every case
study — a semantic end-to-end validation that the type system's
alignments are real alignments, not just solver-accepted formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.checker import CheckedProgram
from repro.lang import ast
from repro.semantics.interpreter import (
    FixedNoise,
    Interpreter,
    Memory,
    RuntimeFailure,
    Value,
    initial_memory,
    run_function,
)


@dataclass
class AlignmentReport:
    """Outcome of one relational validation run."""

    original_output: Value
    aligned_output: Value
    noise: Tuple[float, ...]
    aligned_noise: Tuple[float, ...]
    cost: float
    budget: float

    @property
    def outputs_match(self) -> bool:
        return _values_equal(self.original_output, self.aligned_output)

    @property
    def within_budget(self) -> bool:
        return self.cost <= self.budget + 1e-9

    @property
    def ok(self) -> bool:
        return self.outputs_match and self.within_budget


def _values_equal(a: Value, b: Value, tol: float = 1e-6) -> bool:
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(_values_equal(x, y, tol) for x, y in zip(a, b))
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    return abs(float(a) - float(b)) <= tol


def adjacent_memory(function: ast.FunctionDef, inputs: Dict[str, Value], hats: Dict[str, Value]) -> Dict[str, Value]:
    """The adjacent input memory: every value shifted by its aligned
    distance (parameters with star distances read their hat arrays)."""
    adjacent: Dict[str, Value] = {}
    for param in function.params:
        value = inputs[param.name]
        typ = param.type
        if isinstance(typ, ast.ListType) and isinstance(typ.elem, ast.NumType):
            if ast.is_star(typ.elem.aligned):
                offsets = hats.get(ast.hat_name(param.name, ast.ALIGNED), ())
                value = tuple(
                    v + (offsets[i] if i < len(offsets) else 0.0)
                    for i, v in enumerate(value)
                )
        elif isinstance(typ, ast.NumType) and not ast.is_star(typ.aligned):
            if typ.aligned != ast.ZERO:
                shift = Interpreter().eval(typ.aligned, dict(inputs))
                value = value + shift
        adjacent[param.name] = tuple(value) if isinstance(value, list) else value
    return adjacent


def validate_alignment(
    checked: CheckedProgram,
    inputs: Dict[str, Value],
    hats: Dict[str, Value],
    noise: List[float],
    budget_expr: Optional[ast.Expr] = None,
) -> AlignmentReport:
    """Run the three-step validation described in the module docstring.

    ``hats`` supplies the adjacency witness: entries like ``"q^o"`` and
    ``"q^s"`` map to offset tuples for starred list parameters.  They
    must satisfy the function's precondition; callers generate them from
    the adjacency relation.
    """
    function = checked.function

    # Step 1: instrumented run on the original memory, tracking offsets.
    # Runtime asserts are disabled: for a buggy program the aligned-branch
    # assertion *will* fail, and the observable consequence we want to
    # report is the output divergence of step 2, not a crash.
    interpreter = Interpreter(noise=FixedNoise(noise), check_asserts=False)
    offsets: List[float] = []
    scales: List[float] = []

    def track(cmd: ast.Sample, memory: Memory) -> None:
        chosen = _resolve_selector(cmd.selector, interpreter, memory)
        if chosen == ast.SHADOW:
            # The shadow run reuses the original noise: all previous
            # samples align by the identity from here on.
            for k in range(len(offsets)):
                offsets[k] = 0.0
        offsets.append(float(interpreter.eval(cmd.align, memory)))
        scales.append(interpreter.samples[-1].scale)

    interpreter.on_sample = track
    memory = initial_memory(function, inputs)
    for name, value in hats.items():
        memory[name] = tuple(value) if isinstance(value, list) else value
    original_output = interpreter.exec(checked.body, memory)

    aligned_noise = [h + d for h, d in zip(noise, offsets)]
    # A buggy program's aligned run may diverge and draw extra samples;
    # align those by the identity so the replay can proceed.
    aligned_noise += list(noise[len(offsets):])
    cost = sum(abs(d) / s for d, s in zip(offsets, scales))

    # Step 2: source run on the adjacent memory with aligned noise.
    adjacent = adjacent_memory(function, inputs, hats)
    try:
        aligned_output, _ = run_function(
            function, adjacent, noise=FixedNoise(aligned_noise), check_asserts=False
        )
    except RuntimeFailure:
        # Total divergence (e.g. ran out of noise): report a mismatch.
        aligned_output = "<diverged>"

    # Step 3: compare against the budget.
    budget_memory = dict(memory)
    budget = float(
        Interpreter().eval(budget_expr if budget_expr is not None else function.cost_bound, budget_memory)
    )
    return AlignmentReport(
        original_output=original_output,
        aligned_output=aligned_output,
        noise=tuple(noise[: len(offsets)]),
        aligned_noise=tuple(aligned_noise),
        cost=cost,
        budget=budget,
    )


def _resolve_selector(selector: ast.Selector, interpreter: Interpreter, memory: Memory) -> str:
    if isinstance(selector, ast.SelectLeaf):
        return selector.version
    if isinstance(selector, ast.SelectCond):
        if interpreter.eval(selector.cond, memory):
            return _resolve_selector(selector.then, interpreter, memory)
        return _resolve_selector(selector.orelse, interpreter, memory)
    raise RuntimeFailure(f"bad selector {selector!r}")
