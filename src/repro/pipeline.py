"""The staged verification pipeline.

The ShadowDP pipeline is a fixed sequence of six named stages::

    parse ──▶ check ──▶ lower_ir ──▶ lower ──▶ optimize ──▶ verify

* ``parse``    — concrete syntax → :class:`~repro.lang.ast.FunctionDef`
* ``check``    — the flow-sensitive shadow type system →
  :class:`~repro.core.checker.CheckedProgram` (instrumented body)
* ``lower_ir`` — the instrumented body lowered onto the shared
  basic-block CFG → :class:`~repro.ir.ProgramIR`; every later
  transformation is a pass over this graph
* ``lower``    — Fig. 5 transformation to the non-probabilistic target
  language (CFG rewrite passes) →
  :class:`~repro.target.transform.TargetProgram`
* ``optimize`` — dead hat-store elimination (CFG liveness pass) →
  ``TargetProgram``
* ``verify``   — obligation generation (block-by-block symbolic
  execution) + SMT discharge →
  :class:`~repro.verify.verifier.VerificationOutcome`

:class:`Pipeline` runs the stages individually or end-to-end, records a
:class:`StageResult` per stage (artifact, wall-clock seconds, solver
queries), and memoizes every stage on the SHA-256 of the source text
(plus the verification-config fingerprint for ``verify``), so repeated
runs — different bindings over one program, batch sweeps, annotation
search — skip all unchanged prefix work.  :meth:`Pipeline.run_many`
batches a whole algorithm registry through one shared cache.

The one-shot :func:`repro.pipeline` facade from earlier releases remains
as a thin wrapper (see :mod:`repro.__init__`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.checker import CheckedProgram, check_function
from repro.ir import PassManager, ProgramIR, ast_to_cfg, fold_constant_guards
from repro.lang import ast
from repro.lang.parser import parse_function
from repro.lang.pretty import pretty_function
from repro.solver.context import QueryCache
from repro.target.transform import TargetProgram, to_target
from repro.verify.discharge import EventSink
from repro.verify.verifier import (
    VerificationConfig,
    VerificationOutcome,
    verify_target,
)

#: The stage names, in execution order.
STAGES: Tuple[str, ...] = ("parse", "check", "lower_ir", "lower", "optimize", "verify")

#: A pipeline input: concrete syntax, or an already-parsed function.
Program = Union[str, ast.FunctionDef]


class PipelineError(ValueError):
    """Raised for unknown stage names or malformed pipeline inputs."""


@dataclass
class StageResult:
    """One stage's outcome: the artifact plus accounting.

    ``seconds`` is the wall-clock cost of *producing* the artifact (0.0
    when it came out of the memo cache); ``solver_queries`` counts the
    SMT queries the stage issued (only ``check`` and ``verify`` consult
    the solver) and ``solver_cache_hits`` how many of those were answered
    from the shared query cache.  ``solver_stats`` carries the full
    incremental-solver counter set (solve calls, context pushes/pops,
    discharge parallelism) for stages that report it.
    """

    stage: str
    artifact: Any
    seconds: float
    solver_queries: int = 0
    cached: bool = False
    solver_cache_hits: int = 0
    solver_stats: Optional[Dict[str, int]] = None
    ir_stats: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "stage": self.stage,
            "seconds": round(self.seconds, 6),
            "solver_queries": self.solver_queries,
            "solver_cache_hits": self.solver_cache_hits,
            "cached": self.cached,
        }
        if self.solver_stats is not None:
            data["solver_stats"] = dict(self.solver_stats)
        if self.ir_stats is not None:
            data["ir"] = dict(self.ir_stats)
        return data


def _ir_stats_of(artifact: Any) -> Optional[Dict[str, Any]]:
    """CFG statistics for artifacts that are (or carry) a ProgramIR."""
    if isinstance(artifact, ProgramIR):
        return artifact.stats()
    ir = getattr(artifact, "ir", None)
    if isinstance(ir, ProgramIR):
        return ir.stats()
    return None


@dataclass
class PipelineRun:
    """Everything one program's trip through the pipeline produced."""

    source: str
    source_hash: str
    stages: Dict[str, StageResult] = field(default_factory=dict)

    # -- artifact accessors --------------------------------------------------

    def artifact(self, stage: str) -> Any:
        result = self.stages.get(stage)
        return result.artifact if result is not None else None

    @property
    def function(self) -> Optional[ast.FunctionDef]:
        return self.artifact("parse")

    @property
    def checked(self) -> Optional[CheckedProgram]:
        return self.artifact("check")

    @property
    def ir(self) -> Optional[ProgramIR]:
        """The checked body's CFG-based IR (the ``lower_ir`` artifact)."""
        return self.artifact("lower_ir")

    @property
    def target(self) -> Optional[TargetProgram]:
        """The optimized target when available, else the raw lowering."""
        optimized = self.artifact("optimize")
        return optimized if optimized is not None else self.artifact("lower")

    @property
    def outcome(self) -> Optional[VerificationOutcome]:
        return self.artifact("verify")

    @property
    def verified(self) -> Optional[bool]:
        outcome = self.outcome
        return None if outcome is None else outcome.verified

    @property
    def name(self) -> str:
        function = self.function
        return function.name if function is not None else "<unparsed>"

    # -- accounting ----------------------------------------------------------

    @property
    def seconds(self) -> float:
        return sum(r.seconds for r in self.stages.values())

    @property
    def solver_queries(self) -> int:
        return sum(r.solver_queries for r in self.stages.values())

    @property
    def solver_cache_hits(self) -> int:
        return sum(r.solver_cache_hits for r in self.stages.values())

    def describe(self) -> str:
        parts = []
        for name in STAGES:
            result = self.stages.get(name)
            if result is None:
                continue
            suffix = " (cached)" if result.cached else f" {result.seconds:.3f}s"
            parts.append(f"{name}{suffix}")
        verdict = ""
        if self.outcome is not None:
            verdict = " — " + self.outcome.describe()
        return f"{self.name}: " + " → ".join(parts) + verdict

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "source_sha256": self.source_hash,
            "stages": [self.stages[s].to_dict() for s in STAGES if s in self.stages],
            "seconds": round(self.seconds, 6),
            "solver_queries": self.solver_queries,
            "solver_cache_hits": self.solver_cache_hits,
        }
        outcome = self.outcome
        if outcome is not None:
            data["verified"] = outcome.verified
            data["obligations_total"] = outcome.obligations_total
            data["failures"] = [f.describe() for f in outcome.failures]
        return data


def source_hash(source: str) -> str:
    """The memoization key of a program: SHA-256 of its source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _config_fingerprint(config: VerificationConfig) -> str:
    """A stable cache key component for a verification configuration.

    Solver-strategy settings (``incremental``, ``jobs``) are part of the
    key even though they cannot change the verdict: a rerun requested
    with different solver settings is usually after the *statistics*
    (cache hits, solve calls, parallel speedup), which a memoized
    artifact from a different strategy would silently misreport.
    """
    return repr(
        (
            config.mode,
            sorted(config.bindings.items()),
            config.assumptions,
            config.unroll_limit,
            config.extra_invariants,
            config.use_lemmas,
            config.collect_models,
            config.incremental,
            config.jobs,
            getattr(config.backend, "name", config.backend),
            config.fail_fast,
            config.profile,
            # The persistent store changes what a run *does* (lookups,
            # write-backs, reported StoreStats), so runs against
            # different stores must not share a memo entry.
            getattr(config.store, "path", config.store),
            # Witnessed runs report certificate counts and validate
            # warm hits — different observable behaviour, own entry.
            config.witness,
        )
    )


class Pipeline:
    """A configured, memoizing instance of the five-stage pipeline.

    Parameters
    ----------
    config:
        Default :class:`VerificationConfig` for the ``verify`` stage;
        per-call configs override it.
    memoize:
        When True (default) stage artifacts are cached keyed on the
        source hash, so re-running any prefix of the pipeline on an
        unchanged program is free.  ``parse``/``check``/``lower_ir``/
        ``lower``/``optimize`` are config-independent; ``verify`` additionally
        keys on the config fingerprint, so sweeping bindings over one
        program re-verifies but never re-checks.

    Cache hits and misses are tallied per stage in :attr:`cache_hits` /
    :attr:`cache_misses`.

    Below the stage memo sits a second, finer cache: one shared
    :class:`QueryCache` (:attr:`query_cache`) threaded through every
    ``verify`` stage this pipeline runs, so identical solver queries
    recur for free across programs, bindings and batch sweeps
    (:meth:`run_many`).

    **Thread safety.**  A memoizing pipeline may be shared by concurrent
    callers (``repro serve`` runs one per daemon, with requests on a
    worker pool): the stage memo is locked and **single-flight** —
    concurrent identical stage productions run *once*; the other callers
    block and receive the memoized result as a hit, exactly as if they
    had arrived after it serially.  Combined with the single-flight
    :class:`QueryCache`, verdicts and counters of a concurrent request
    mix are the same as a serial replay of those requests.
    """

    def __init__(
        self,
        config: Optional[VerificationConfig] = None,
        memoize: bool = True,
        query_cache: Optional[QueryCache] = None,
    ) -> None:
        self.config = config or VerificationConfig()
        self.memoize = memoize
        self.query_cache = query_cache if query_cache is not None else QueryCache()
        self._cache: Dict[Tuple[str, str, str], StageResult] = {}
        self._lock = threading.Lock()
        #: Stage productions currently in flight → event waiters block on.
        self._flights: Dict[Tuple[str, str, str], threading.Event] = {}
        self.cache_hits: Dict[str, int] = {name: 0 for name in STAGES}
        self.cache_misses: Dict[str, int] = {name: 0 for name in STAGES}

    # -- cache plumbing ------------------------------------------------------

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            flights = list(self._flights.values())
            self._flights.clear()
        # Waiters wake, find no entry, and the first of them takes over
        # each flight.
        for flight in flights:
            flight.set()

    def memo_stats(self) -> Dict[str, Any]:
        """A snapshot of the stage-memo counters (for ``repro serve`` status)."""
        with self._lock:
            return {
                "entries": len(self._cache),
                "in_flight": len(self._flights),
                "hits": dict(self.cache_hits),
                "misses": dict(self.cache_misses),
            }

    def _memo(self, stage: str, key: str, extra: str, produce) -> StageResult:
        cache_key = (stage, key, extra)
        if not self.memoize:
            with self._lock:
                self.cache_misses[stage] += 1
            return self._produce(stage, produce)
        while True:
            with self._lock:
                hit = self._cache.get(cache_key)
                if hit is not None:
                    self.cache_hits[stage] += 1
                    # A hit issues no solver queries and takes no time:
                    # both are the marginal cost of *this* run, not of
                    # the cached artifact.  CFG shape, by contrast, is a
                    # property of the artifact.
                    return StageResult(
                        stage, hit.artifact, 0.0, 0, cached=True, ir_stats=hit.ir_stats
                    )
                flight = self._flights.get(cache_key)
                if flight is None:
                    # We own this key's single flight: produce below.
                    self._flights[cache_key] = threading.Event()
                    self.cache_misses[stage] += 1
                    break
            # Another caller is already producing this exact stage
            # artifact; wait for it and take the memoized result.
            flight.wait()
        try:
            result = self._produce(stage, produce)
        except BaseException:
            # Release the flight without a result (cancelled or failed
            # production): waiters wake and the first retakes the key.
            self._release_flight(cache_key)
            raise
        with self._lock:
            self._cache[cache_key] = result
        self._release_flight(cache_key)
        return result

    def _release_flight(self, cache_key: Tuple[str, str, str]) -> None:
        with self._lock:
            flight = self._flights.pop(cache_key, None)
        if flight is not None:
            flight.set()

    @staticmethod
    def _produce(stage: str, produce) -> StageResult:
        start = time.perf_counter()
        produced = produce()
        artifact, queries = produced[0], produced[1]
        stats = produced[2] if len(produced) > 2 else None
        return StageResult(
            stage,
            artifact,
            time.perf_counter() - start,
            queries,
            solver_cache_hits=(stats or {}).get("cache_hits", 0),
            solver_stats=stats,
            ir_stats=_ir_stats_of(artifact),
        )

    # -- stage bodies --------------------------------------------------------

    def _parse(self, key: str, source: str) -> StageResult:
        return self._memo("parse", key, "", lambda: (parse_function(source), 0))

    def _check(self, key: str, function: ast.FunctionDef) -> StageResult:
        def produce():
            checked = check_function(function)
            stats = {
                "queries": checked.solver_queries,
                "cache_hits": checked.solver_cache_hits,
            }
            return checked, checked.solver_queries, stats

        return self._memo("check", key, "", produce)

    #: The named CFG passes ``lower_ir`` runs after building the graph;
    #: recorded on the artifact's pass trail (``ir_stats["passes"]``).
    IR_PASSES: Tuple[Tuple[str, Any], ...] = (
        ("fold-constant-guards", fold_constant_guards),
    )

    def _lower_ir(self, key: str, checked: CheckedProgram) -> StageResult:
        def produce():
            ir = ProgramIR(checked.function, ast_to_cfg(checked.body))
            ir = PassManager(self.IR_PASSES).run(ir)
            return ir, 0

        return self._memo("lower_ir", key, "", produce)

    def _lower(self, key: str, checked: CheckedProgram, ir: ProgramIR) -> StageResult:
        return self._memo(
            "lower", key, "", lambda: (to_target(checked, optimize=False, ir=ir), 0)
        )

    def _optimize(self, key: str, target: TargetProgram) -> StageResult:
        return self._memo("optimize", key, "", lambda: (target.optimized(), 0))

    def _verify(
        self,
        key: str,
        target: TargetProgram,
        config: VerificationConfig,
        on_event: EventSink = None,
    ) -> StageResult:
        def produce():
            outcome = verify_target(
                target, config, cache=self.query_cache, on_event=on_event
            )
            return outcome, outcome.solver_queries, outcome.solver_stats()

        return self._memo("verify", key, _config_fingerprint(config), produce)

    # -- public API ----------------------------------------------------------

    def run(
        self,
        program: Program,
        config: Optional[VerificationConfig] = None,
        stop_after: str = "verify",
        profile: Optional[bool] = None,
        on_event: EventSink = None,
    ) -> PipelineRun:
        """Run the pipeline through ``stop_after`` (inclusive).

        ``program`` is either ShadowDP concrete syntax or an
        already-parsed :class:`~repro.lang.ast.FunctionDef` (useful for
        programmatically constructed candidates, e.g. annotation
        inference); in the latter case the ``parse`` stage is recorded
        as instantaneous and memoization keys on the pretty-printed
        form, which round-trips through the parser.

        ``profile=True`` attaches the inner-loop solver counters
        (pivots, propagations, conflicts, restarts, interned-node hits…)
        to the ``verify`` stage's ``solver_stats`` under a ``"profile"``
        key (see :class:`repro.solver.profile.SolverProfile`).

        ``on_event`` receives the ``verify`` stage's typed
        :class:`~repro.verify.discharge.DischargeEvent` stream as units
        are scheduled and obligations discharged (no events fire when
        the stage comes out of the memo cache).  Combine with
        ``config.fail_fast`` to stop discharging at the first
        refutation.
        """
        if stop_after not in STAGES:
            raise PipelineError(
                f"unknown stage {stop_after!r}; expected one of {', '.join(STAGES)}"
            )
        config = config or self.config
        if profile is not None and profile != config.profile:
            config = dataclasses.replace(config, profile=profile)

        if isinstance(program, ast.FunctionDef):
            source = pretty_function(program)
            key = source_hash(source)
            run = PipelineRun(source=source, source_hash=key)
            run.stages["parse"] = self._memo(
                "parse", key, "", lambda: (program, 0)
            )
        elif isinstance(program, str):
            source = program
            key = source_hash(source)
            run = PipelineRun(source=source, source_hash=key)
            run.stages["parse"] = self._parse(key, source)
        else:
            raise PipelineError(
                f"pipeline input must be source text or a FunctionDef, got {type(program).__name__}"
            )
        if stop_after == "parse":
            return run

        run.stages["check"] = self._check(key, run.stages["parse"].artifact)
        if stop_after == "check":
            return run

        run.stages["lower_ir"] = self._lower_ir(key, run.stages["check"].artifact)
        if stop_after == "lower_ir":
            return run

        run.stages["lower"] = self._lower(
            key, run.stages["check"].artifact, run.stages["lower_ir"].artifact
        )
        if stop_after == "lower":
            return run

        run.stages["optimize"] = self._optimize(key, run.stages["lower"].artifact)
        if stop_after == "optimize":
            return run

        run.stages["verify"] = self._verify(
            key, run.stages["optimize"].artifact, config, on_event
        )
        return run

    def run_stage(self, program: Program, stage: str, config: Optional[VerificationConfig] = None) -> StageResult:
        """Run one named stage (and, via the cache, its prerequisites)."""
        return self.run(program, config=config, stop_after=stage).stages[stage]

    def run_many(
        self,
        programs: Iterable[Any],
        config: Optional[VerificationConfig] = None,
        stop_after: str = "verify",
        on_event: EventSink = None,
        stop_on_failure: bool = False,
    ) -> List[PipelineRun]:
        """Batch a collection of programs through one shared cache.

        Items may be source strings, ``FunctionDef``s, or algorithm
        specs (anything with a ``.source`` attribute, e.g.
        :class:`repro.algorithms.spec.AlgorithmSpec`).  For specs with
        no explicit ``config`` argument, a per-spec unroll-mode
        configuration is derived from ``fixed_bindings`` and
        ``assumptions`` — the registry's Table-1 regime.

        ``on_event`` streams every program's discharge events;
        ``stop_on_failure`` ends the batch at the first refuted program
        (pair it with ``config.fail_fast`` to also stop that program's
        own discharge at its first refutation).
        """
        runs: List[PipelineRun] = []
        for item in programs:
            item_config = config
            program: Program
            if isinstance(item, (str, ast.FunctionDef)):
                program = item
            elif hasattr(item, "source"):
                program = item.source
                if item_config is None:
                    item_config = spec_config(item)
            else:
                raise PipelineError(
                    f"run_many items must be sources, FunctionDefs or specs, got {type(item).__name__}"
                )
            run = self.run(
                program, config=item_config, stop_after=stop_after, on_event=on_event
            )
            runs.append(run)
            if stop_on_failure and run.verified is False:
                break
        return runs


def spec_config(spec: Any, unroll_limit: int = 16) -> VerificationConfig:
    """The unroll-regime configuration an algorithm spec describes.

    Mirrors Table 1's "fix ε" rows: concrete loop bounds from
    ``fixed_bindings`` plus the spec's parameter assumptions.
    """
    return VerificationConfig(
        mode="unroll",
        bindings=dict(getattr(spec, "fixed_bindings", {}) or {}),
        assumptions=tuple(spec.assumption_exprs()) if hasattr(spec, "assumption_exprs") else (),
        unroll_limit=unroll_limit,
    )
