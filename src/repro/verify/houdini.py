"""Houdini-style conjunctive invariant inference.

The classic algorithm: start from a pool of candidate invariants, check
all entry/preservation obligations, drop every candidate that fails, and
repeat until the surviving set is inductive.  The survivors are then
used for a full invariant-mode verification including the program's
assertions.

Loop *peeling* (executing the first iteration outside the loop) is
available because several alignment invariants only hold from the first
iteration onward — e.g. Report Noisy Max needs ``1 ≤ b̂q° ∧ -1 ≤ b̂q† ≤ 1``,
which is false in the initial state but established by iteration one.
With one peel, the pool below suffices to verify Report Noisy Max with
*no manual invariants at all*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.simplify import simplify
from repro.lang import ast
from repro.solver.context import QueryCache
from repro.target.transform import COST_VAR, TargetProgram
from repro.verify.discharge import EventSink, RoundFinished
from repro.verify.verifier import (
    ObligationChecker,
    VerificationConfig,
    VerificationOutcome,
    ObligationFailure,
    bind_command,
    bind_expr,
    _bind_psi,
)
from repro.verify.vcgen import Obligation, VCGenerator

_MAX_ROUNDS = 64


@dataclass
class HoudiniResult:
    """Surviving invariants plus the final verification outcome.

    ``solver_stats`` aggregates the whole run — pruning rounds *and*
    final verification — while ``outcome`` carries the final
    verification's own accounting."""

    invariants: Tuple[ast.Expr, ...]
    outcome: VerificationOutcome
    rounds: int
    candidates_tried: int
    solver_stats: Dict[str, int] = field(default_factory=dict)


def peel_loops(cmd: ast.Command, times: int) -> ast.Command:
    """Unroll the first ``times`` iterations of every loop into guards."""
    if times <= 0:
        return cmd
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[peel_loops(c, times) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(cmd.cond, peel_loops(cmd.then, times), peel_loops(cmd.orelse, times))
    if isinstance(cmd, ast.While):
        inner: ast.Command = cmd
        for _ in range(times):
            inner = ast.If(cmd.cond, ast.seq(cmd.body, inner))
        return inner
    return cmd


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def default_candidates(target: TargetProgram, bindings: Dict = None) -> List[ast.Expr]:
    """A template pool fitted to ShadowDP target programs.

    Shapes: privacy-cost bounds (``v_eps <= bound``, half bound, and
    ``base + counter·increment`` forms built from the cost increments
    actually occurring in the program), hat-variable interval bounds
    (distances of sensitivity-1 queries live in small integer ranges),
    and counter bounds harvested from loop guards.
    """
    body = bind_command(target.body, bindings or {})
    bound = bind_expr(target.cost_bound, bindings or {})
    candidates: List[ast.Expr] = []
    veps = ast.Var(COST_VAR)

    candidates.append(ast.BinOp("<=", veps, bound))
    candidates.append(ast.BinOp("<=", veps, ast.BinOp("/", bound, ast.Real(2))))
    candidates.append(ast.BinOp(">=", veps, ast.ZERO))

    counters = _counters(body)
    increments = _cost_increments(body)
    for counter in sorted(counters):
        candidates.append(ast.BinOp(">=", ast.Var(counter), ast.ZERO))
        for limit in _guard_limits(body, counter):
            candidates.append(ast.BinOp("<=", ast.Var(counter), limit))
        for base in [ast.ZERO] + increments:
            for step in increments:
                candidates.append(
                    ast.BinOp(
                        "<=",
                        veps,
                        ast.BinOp("+", base, ast.BinOp("*", ast.Var(counter), step)),
                    )
                )

    for hat in sorted(_hat_names(body)):
        base, _, version = hat.rpartition("^")
        node = ast.Hat(base, version)
        for low, high in [(-1, 1), (-2, 2)]:
            candidates.append(ast.BinOp(">=", node, ast.Real(low)))
            candidates.append(ast.BinOp("<=", node, ast.Real(high)))
        candidates.append(ast.BinOp(">=", node, ast.ONE))
        candidates.append(ast.BinOp("<=", node, ast.ZERO))
        candidates.append(ast.BinOp(">=", node, ast.ZERO))

    # Deduplicate, preserving order.
    seen: Set[ast.Expr] = set()
    unique = []
    for cand in candidates:
        cand = simplify(cand)
        if cand not in seen and cand != ast.TRUE:
            seen.add(cand)
            unique.append(cand)
    return unique


def _counters(cmd: ast.Command) -> Set[str]:
    """Variables incremented by a constant inside loops (i, count, ...)."""
    found: Set[str] = set()
    for node in ast.command_iter(cmd):
        if isinstance(node, ast.Assign) and isinstance(node.expr, ast.BinOp):
            expr = node.expr
            if expr.op == "+" and expr.left == ast.Var(node.name) and isinstance(expr.right, ast.Real):
                found.add(node.name)
    return found


def _guard_limits(cmd: ast.Command, counter: str) -> List[ast.Expr]:
    """Upper limits ``counter < L`` appearing in loop guards → ``counter <= L``."""
    limits: List[ast.Expr] = []
    for node in ast.command_iter(cmd):
        if isinstance(node, ast.While):
            for part in _conjuncts(node.cond):
                if (
                    isinstance(part, ast.BinOp)
                    and part.op in ("<", "<=")
                    and part.left == ast.Var(counter)
                ):
                    limits.append(part.right)
    return limits


def _conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinOp) and expr.op == "&&":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _cost_increments(cmd: ast.Command) -> List[ast.Expr]:
    """The terms ever added to ``v_eps`` (ternary arms flattened)."""
    increments: List[ast.Expr] = []

    def addends(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Ternary):
            addends(expr.then)
            addends(expr.orelse)
            return
        if isinstance(expr, ast.BinOp) and expr.op == "+":
            addends(expr.left)
            addends(expr.right)
            return
        if expr == ast.Var(COST_VAR) or expr == ast.ZERO:
            return
        if expr not in increments:
            increments.append(expr)

    for node in ast.command_iter(cmd):
        if isinstance(node, ast.Assign) and node.name == COST_VAR:
            addends(node.expr)
    return increments


def _hat_names(cmd: ast.Command) -> Set[str]:
    names: Set[str] = set()
    for node in ast.command_iter(cmd):
        if isinstance(node, ast.Assign) and "^" in node.name and "[" not in node.name:
            names.add(node.name)
    return names


# ---------------------------------------------------------------------------
# The Houdini loop
# ---------------------------------------------------------------------------


def _is_candidate_obligation(obligation: Obligation) -> bool:
    """Entry/preservation obligations of Houdini-injected candidates.

    Program-annotated invariants are not pruned."""
    if obligation.tag not in ("invariant-entry", "invariant-preserved"):
        return False
    label = obligation.label
    return isinstance(label, tuple) and label[0] == "extra"


def infer_invariants(
    target: TargetProgram,
    config: Optional[VerificationConfig] = None,
    candidates: Optional[Sequence[ast.Expr]] = None,
    peel: int = 1,
    cache: Optional[QueryCache] = None,
    on_event: EventSink = None,
) -> HoudiniResult:
    """Run Houdini and verify the program with the surviving invariants.

    One :class:`QueryCache` spans the whole run: obligations whose goal
    and premises survive from one pruning round to the next (loop-entry
    obligations of surviving candidates in particular) are answered
    once, and the final full verification replays the last round's
    queries out of the cache instead of re-solving them.

    Pruning rounds and the final verification discharge through the
    first-class API (:mod:`repro.verify.discharge`): the configured
    backend schedules the obligation units, and ``on_event`` receives
    the typed :class:`DischargeEvent` stream — unit/obligation events
    from every discharge plus a :class:`RoundFinished` per pruning
    round.
    """
    config = config or VerificationConfig(mode="invariant")
    pool = list(candidates) if candidates is not None else default_candidates(target, config.bindings)
    total = len(pool)

    body = peel_loops(bind_command(target.body, config.bindings), peel)
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    cache = cache if cache is not None else QueryCache()
    checker = ObligationChecker(
        psi,
        assumptions,
        use_lemmas=config.use_lemmas,
        collect_models=False,
        cache=cache,
        incremental=config.incremental,
        jobs=config.jobs,
        backend=config.backend,
    )

    surviving = list(pool)
    rounds = 0
    for rounds in range(1, _MAX_ROUNDS + 1):
        generator = VCGenerator(use_invariants=True, extra_invariants=tuple(surviving))
        generator.run(body)
        bad: Set[int] = set()
        # Batched discharge makes each refuting model prune *every*
        # candidate it falsifies in one solve — the seed's per-candidate
        # skip loop is subsumed by the conjoined check's refinement.
        checker.check_all(
            [ob for ob in generator.obligations if _is_candidate_obligation(ob)],
            on_failure=lambda ob: bad.add(ob.label[1]),
            emit=on_event,
        )
        if on_event is not None:
            on_event(RoundFinished(rounds, len(bad), len(surviving) - len(bad)))
        if not bad:
            break
        surviving = [inv for k, inv in enumerate(surviving) if k not in bad]

    # Final full verification (asserts included) with the inductive set.
    # The invariant obligations were all checked in the last pruning
    # round with identical premises, so they come out of the cache; only
    # the program's own assertions still reach the solver.
    start = time.perf_counter()
    generator = VCGenerator(use_invariants=True, extra_invariants=tuple(surviving))
    generator.run(body)
    final_checker = ObligationChecker(
        psi,
        assumptions,
        use_lemmas=config.use_lemmas,
        collect_models=config.collect_models,
        cache=cache,
        incremental=config.incremental,
        jobs=config.jobs,
        backend=config.backend,
    )
    # Pruning rounds always run their full plan — every refutation is
    # pruning signal, not failure — but the final verification honours
    # ``fail_fast``: refuting one program assertion is enough to reject.
    failures: List[ObligationFailure] = final_checker.discharge_stream(
        generator.obligations, emit=on_event, fail_fast=config.fail_fast
    )
    stats = final_checker.solver_stats()
    run_stats = checker.solver_stats()
    run_stats.merge(stats)
    outcome = VerificationOutcome(
        verified=not failures,
        obligations_total=len(generator.obligations),
        failures=failures,
        seconds=time.perf_counter() - start,
        solver_queries=stats.queries,
        cache_hits=stats.cache_hits,
        solve_calls=stats.solve_calls,
        context_pushes=stats.pushes,
        context_pops=stats.pops,
        jobs=final_checker.effective_jobs,
        backend=final_checker.backend_name,
        units=final_checker.units_run,
        early_exit=final_checker.early_exited,
    )
    return HoudiniResult(
        invariants=tuple(surviving),
        outcome=outcome,
        rounds=rounds,
        candidates_tried=total,
        solver_stats=run_stats.to_dict(),
    )
