"""The persistent obligation store: cross-run incremental verification.

Every :class:`~repro.verify.vcgen.Obligation` carries a stable,
content-derived ``.oid`` — the same proof obligation hashes to the same
id across runs, processes and machines.  This module keys verdicts by
``(oid, fingerprint)`` in a small sqlite database, where the
*fingerprint* digests everything that could change a verdict without
changing the obligation itself: the bound precondition Ψ, the global
assumptions and the lemma policy.  Edit one line of a program and a
rerun re-proves only the obligations whose content actually changed;
everything else is answered from disk without a single solve.

Design rules (see ``docs/cache.md`` for the on-disk format spec):

* **Versioned schema** — ``PRAGMA user_version`` records the layout; a
  mismatch (older or newer writer) drops the table and starts clean
  rather than guessing at field meanings.
* **Atomic writes** — verdicts for a run are inserted in one
  transaction; readers never observe a half-written batch.
* **Corruption is a miss, never a crash** — an unreadable database file
  is recreated, an undecodable row is deleted and treated as a miss,
  both under the ``invalid`` counter so the degradation is observable.
* **Auditable records** — each row stores the verdict *and* its
  provenance (tag, CFG region, countermodel, timestamps), so a cached
  refutation can be replayed and inspected, not just trusted.

The store is consulted *before* any unit is planned (hits never reach
the solver) and written *after* a clean, complete run (early-exited or
cancelled runs record nothing — a partially-discharged unit must not
masquerade as a verdict).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro import faults as faults_mod
from repro.lang import ast

#: Environment variable naming a store path; the CLI consults it when
#: ``--store`` is not given, so ``REPRO_STORE=~/.cache/... repro verify``
#: enables cross-run caching without touching the command line.
STORE_ENV_VAR = "REPRO_STORE"

#: On-disk layout version, recorded in ``PRAGMA user_version``.  Bump on
#: any change to the table shape or the meaning of stored fields; a
#: mismatched database is cleared, never reinterpreted.
SCHEMA_VERSION = 2

_TABLE = """
CREATE TABLE IF NOT EXISTS obligations (
    oid        TEXT NOT NULL,
    fp         TEXT NOT NULL,
    valid      INTEGER NOT NULL,
    status     TEXT NOT NULL,
    model      TEXT,
    witness    TEXT,
    tag        TEXT NOT NULL DEFAULT '',
    region     TEXT NOT NULL DEFAULT '',
    created    REAL NOT NULL,
    last_used  REAL NOT NULL,
    PRIMARY KEY (oid, fp)
)
"""


def default_store_path() -> str:
    """``$XDG_CACHE_HOME/repro/obligations.sqlite`` (or ``~/.cache/…``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "obligations.sqlite")


def premise_fingerprint(
    psi: ast.Expr, assumptions: Sequence[ast.Expr], use_lemmas: bool
) -> str:
    """Digest the verdict-relevant context an oid does not capture.

    Two runs share store entries exactly when their obligations would be
    discharged under the same premise regime: same bound precondition,
    same global assumptions (order-insensitive), same lemma policy.
    """
    payload = repr(
        (
            SCHEMA_VERSION,
            psi,
            tuple(sorted(repr(a) for a in assumptions)),
            bool(use_lemmas),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class StoredVerdict:
    """One persisted obligation verdict, decoded and type-checked.

    ``witness`` is the canonical-JSON proof certificate behind a valid
    verdict, when the recording run emitted one (see ``repro.witness``);
    consumers must *validate* it before trusting a witnessed hit.
    """

    valid: bool
    status: str
    arith_model: Optional[Dict[str, Fraction]] = None
    bool_model: Optional[Dict[str, bool]] = None
    witness: Optional[str] = None


@dataclass
class StoreStats:
    """Store traffic counters for one consumer's accounting window."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0
    #: Transient ``database is locked``/``busy`` errors absorbed by the
    #: short-backoff retry loop (the operation ultimately succeeded or
    #: was counted elsewhere).
    busy_retries: int = 0
    #: Verdicts recorded in the in-memory fallback after the disk store
    #: degraded (write failure survived instead of failing the run).
    memory_writes: int = 0
    #: Warm hits whose stored proof certificate was re-checked by the
    #: trusted witness kernel and accepted.
    validated_hits: int = 0
    #: Warm hits whose stored certificate failed decoding or validation;
    #: each one was degraded to a counted re-solve, never trusted.
    witness_rejects: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
            "busy_retries": self.busy_retries,
            "memory_writes": self.memory_writes,
            "validated_hits": self.validated_hits,
            "witness_rejects": self.witness_rejects,
        }


def _encode_model(verdict_model: Optional[Tuple[Dict, Dict]]) -> Optional[str]:
    if verdict_model is None:
        return None
    arith, booleans = verdict_model
    return json.dumps(
        {
            "arith": {name: str(value) for name, value in sorted(arith.items())},
            "bool": {name: bool(value) for name, value in sorted(booleans.items())},
        },
        sort_keys=True,
    )


def _decode_model(
    text: Optional[str],
) -> Tuple[Optional[Dict[str, Fraction]], Optional[Dict[str, bool]]]:
    if text is None:
        return None, None
    payload = json.loads(text)
    arith = {str(k): Fraction(v) for k, v in payload["arith"].items()}
    booleans = {str(k): bool(v) for k, v in payload["bool"].items()}
    return arith, booleans


class ObligationStore:
    """A thread-safe on-disk verdict cache keyed by ``(oid, fingerprint)``.

    One instance owns one sqlite connection (serialized by a lock, so a
    long-lived ``repro serve`` can share the store across request
    threads).  All failure modes degrade to a miss: a corrupt database
    file is recreated, a mismatched schema version is cleared, and an
    undecodable row is deleted — each tallied in :attr:`counters`.
    """

    #: Transient-busy retry policy: attempts per operation and the base
    #: of the exponential backoff between them.
    BUSY_ATTEMPTS = 5
    BUSY_BACKOFF = 0.005

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = os.path.expanduser(path) if path else default_store_path()
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self.counters = StoreStats()
        #: True once a write failed past the retry budget: the store
        #: keeps serving (and recording) verdicts from ``_memory`` so
        #: requests degrade instead of failing; nothing persists.
        self.degraded = False
        self._memory: Dict[Tuple[str, str], StoredVerdict] = {}

    def _run(self, action):
        """Run one sqlite action, retrying transient busy/locked errors
        with short exponential backoff; callers hold ``self._lock``."""
        attempt = 0
        while True:
            try:
                plan = faults_mod.active()
                if plan is not None and plan.store_busy():
                    raise sqlite3.OperationalError("database is locked (injected)")
                return action()
            except sqlite3.OperationalError as err:
                message = str(err).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                if attempt + 1 >= self.BUSY_ATTEMPTS:
                    raise
                self.counters.busy_retries += 1
                time.sleep(self.BUSY_BACKOFF * (2 ** attempt))
                attempt += 1

    # -- connection management -------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """Open (or recover) the database; callers hold ``self._lock``."""
        if self._conn is not None:
            return self._conn
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        try:
            conn = self._open()
        except sqlite3.DatabaseError:
            # The file exists but is not a database we can read (torn
            # write, truncation, a stray file at the store path).  The
            # store is a cache: recreate rather than fail the run.
            self.counters.invalid += 1
            try:
                os.remove(self.path)
            except OSError:
                pass
            conn = self._open()
        self._conn = conn
        return conn

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=10.0, check_same_thread=False)
        try:
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version != SCHEMA_VERSION:
                # Older or newer layout: clear rather than reinterpret.
                if version != 0:
                    self.counters.invalid += 1
                conn.execute("DROP TABLE IF EXISTS obligations")
                conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION:d}")
            conn.execute(_TABLE)
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # -- lookups ---------------------------------------------------------------

    def lookup(self, oid: str, fingerprint: str) -> Optional[StoredVerdict]:
        """The persisted verdict for ``(oid, fingerprint)``, or None.

        Every decode failure deletes the offending row and reports a
        miss — a damaged entry costs one re-solve, never a crash.
        """
        with self._lock:
            if self.degraded:
                verdict = self._memory.get((oid, fingerprint))
                if verdict is None:
                    self.counters.misses += 1
                else:
                    self.counters.hits += 1
                return verdict
            try:
                conn = self._connect()
                row = self._run(
                    lambda: conn.execute(
                        "SELECT valid, status, model, witness FROM obligations"
                        " WHERE oid = ? AND fp = ?",
                        (oid, fingerprint),
                    ).fetchone()
                )
            except (sqlite3.DatabaseError, OSError):
                self.counters.invalid += 1
                self.counters.misses += 1
                self._reset_connection()
                return None
            if row is None:
                self.counters.misses += 1
                return None
            try:
                valid = bool(row[0])
                status = str(row[1])
                if status not in ("unsat", "sat", "unknown"):
                    raise ValueError(f"bad status {status!r}")
                arith, booleans = _decode_model(row[2])
                witness = str(row[3]) if row[3] is not None else None
                if valid and status != "unsat":
                    raise ValueError("valid verdict with non-unsat status")
            except (ValueError, KeyError, TypeError, ZeroDivisionError,
                    json.JSONDecodeError):
                self.counters.invalid += 1
                self.counters.misses += 1
                try:
                    conn.execute(
                        "DELETE FROM obligations WHERE oid = ? AND fp = ?",
                        (oid, fingerprint),
                    )
                    conn.commit()
                except sqlite3.DatabaseError:
                    self._reset_connection()
                return None
            self.counters.hits += 1
            if witness is not None:
                plan = faults_mod.active()
                if plan is not None and plan.witness_corrupt():
                    # Truncation keeps the row intact on disk while
                    # guaranteeing the validator rejects what we serve.
                    witness = witness[: len(witness) // 2]
            try:
                conn.execute(
                    "UPDATE obligations SET last_used = ? WHERE oid = ? AND fp = ?",
                    (time.time(), oid, fingerprint),
                )
                conn.commit()
            except sqlite3.DatabaseError:
                self._reset_connection()
            return StoredVerdict(valid, status, arith, booleans, witness)

    def _reset_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    # -- writes ----------------------------------------------------------------

    def record_many(
        self,
        fingerprint: str,
        entries: Iterable[
            Tuple[str, str, str, bool, str, Optional[Tuple[Dict, Dict]], Optional[str]]
        ],
    ) -> int:
        """Persist ``(oid, tag, region, valid, status, model, witness)``
        verdicts.

        ``witness`` is the serialized proof certificate for a valid
        verdict (None when witnesses were off or unavailable).  One
        transaction for the whole batch — readers see all of a run's
        verdicts or none of them.  Returns the rows written.

        A write that still fails after the transient-busy retries
        degrades the store to a counted in-memory-only mode (this batch
        and everything after it is kept in ``_memory`` and served from
        there) instead of failing the run.
        """
        entries = list(entries)
        if not entries:
            return 0
        now = time.time()
        rows = [
            (oid, fingerprint, int(valid), status, _encode_model(model),
             witness, tag, region, now, now)
            for oid, tag, region, valid, status, model, witness in entries
        ]
        plan = faults_mod.active()
        if plan is not None and plan.store_poison():
            # An undecodable row: the next lookup must count it invalid,
            # delete it and re-solve — the corruption-is-a-miss path.
            oid0, fp0, valid0, _, model0, w0, tag0, region0, c0, l0 = rows[0]
            rows[0] = (oid0, fp0, valid0, "poisoned", model0, w0, tag0, region0, c0, l0)
        with self._lock:
            if self.degraded:
                return self._record_memory(fingerprint, entries)
            try:
                conn = self._connect()

                def write():
                    conn.executemany(
                        "INSERT OR REPLACE INTO obligations"
                        " (oid, fp, valid, status, model, witness,"
                        "  tag, region, created, last_used)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        rows,
                    )
                    conn.commit()

                self._run(write)
            except (sqlite3.DatabaseError, OSError):
                self.counters.invalid += 1
                self._reset_connection()
                self.degraded = True
                return self._record_memory(fingerprint, entries)
        self.counters.writes += len(rows)
        return len(rows)

    def _record_memory(self, fingerprint: str, entries) -> int:
        """Keep a batch's verdicts in memory (the degraded write path);
        callers hold ``self._lock``."""
        for oid, tag, region, valid, status, model, witness in entries:
            arith = booleans = None
            if model is not None:
                arith, booleans = model
            self._memory[(oid, fingerprint)] = StoredVerdict(
                bool(valid), status, arith, booleans, witness
            )
        self.counters.memory_writes += len(entries)
        return len(entries)

    # -- maintenance -----------------------------------------------------------

    def entry_count(self) -> int:
        with self._lock:
            if self.degraded:
                return len(self._memory)
            try:
                conn = self._connect()
                return conn.execute("SELECT COUNT(*) FROM obligations").fetchone()[0]
            except (sqlite3.DatabaseError, OSError):
                self._reset_connection()
                return 0

    def witness_count(self) -> int:
        """How many stored verdicts carry a proof certificate."""
        with self._lock:
            if self.degraded:
                return sum(1 for v in self._memory.values() if v.witness is not None)
            try:
                conn = self._connect()
                return conn.execute(
                    "SELECT COUNT(*) FROM obligations WHERE witness IS NOT NULL"
                ).fetchone()[0]
            except (sqlite3.DatabaseError, OSError):
                self._reset_connection()
                return 0

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_entries: Optional[int] = None,
    ) -> int:
        """Drop stale entries; returns how many were removed.

        ``max_age_days`` removes entries not used since the cutoff;
        ``max_entries`` then keeps only the most recently used N.
        """
        removed = 0
        with self._lock:
            try:
                conn = self._connect()
                if max_age_days is not None:
                    cutoff = time.time() - max_age_days * 86400.0
                    cursor = conn.execute(
                        "DELETE FROM obligations WHERE last_used < ?", (cutoff,)
                    )
                    removed += cursor.rowcount
                if max_entries is not None:
                    cursor = conn.execute(
                        "DELETE FROM obligations WHERE rowid NOT IN ("
                        " SELECT rowid FROM obligations"
                        " ORDER BY last_used DESC, rowid DESC LIMIT ?)",
                        (max(0, int(max_entries)),),
                    )
                    removed += cursor.rowcount
                conn.commit()
                conn.execute("VACUUM")
            except sqlite3.DatabaseError:
                self._reset_connection()
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many there were."""
        with self._lock:
            try:
                conn = self._connect()
                count = conn.execute("SELECT COUNT(*) FROM obligations").fetchone()[0]
                conn.execute("DELETE FROM obligations")
                conn.commit()
                conn.execute("VACUUM")
                return count
            except sqlite3.DatabaseError:
                self._reset_connection()
                return 0

    # -- reporting -------------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """The traffic counters as a plain dict (see :class:`StoreStats`)."""
        return self.counters.to_dict()

    def delta_since(self, before: Dict[str, int]) -> Dict[str, int]:
        after = self.snapshot()
        return {key: after[key] - before.get(key, 0) for key in after}

    def stats(self) -> Dict[str, object]:
        """Traffic counters plus database facts, for status endpoints."""
        out: Dict[str, object] = dict(self.snapshot())
        out["path"] = self.path
        out["schema_version"] = SCHEMA_VERSION
        out["entries"] = self.entry_count()
        out["witnesses"] = self.witness_count()
        out["degraded"] = self.degraded
        try:
            out["bytes"] = os.path.getsize(self.path)
        except OSError:
            out["bytes"] = 0
        return out

    def breakdown(self) -> Dict[str, int]:
        """Entry counts by verdict, for ``repro cache stats``."""
        with self._lock:
            try:
                conn = self._connect()
                rows = conn.execute(
                    "SELECT valid, COUNT(*) FROM obligations GROUP BY valid"
                ).fetchall()
            except sqlite3.DatabaseError:
                self._reset_connection()
                return {"valid": 0, "refuted": 0}
        out = {"valid": 0, "refuted": 0}
        for flag, count in rows:
            out["valid" if flag else "refuted"] = count
        return out


def resolve_store(value: object) -> Optional[ObligationStore]:
    """An :class:`ObligationStore` from a config value.

    None stays None (store disabled — the library default); an existing
    instance passes through (the server's shared store); anything else
    is a path.
    """
    if value is None:
        return None
    if isinstance(value, ObligationStore):
        return value
    return ObligationStore(str(value))
