"""The verification façade: discharge obligations through the SMT solver.

``verify_target`` plays the role CPAChecker plays in the paper's
pipeline (Section 6.1): it takes the transformed, non-probabilistic
program and proves that no assertion — in particular the final
``assert(v_eps <= bound)`` — can fail for any input satisfying the
adjacency precondition.  By Theorem 2 this establishes ε-differential
privacy of the source program.

Three regimes mirror the paper's Table 1 columns:

* ``mode="unroll"`` with concrete loop bounds — the "fix ε / fixed N"
  regime (also the bug-finding mode: failing obligations come back with
  concrete counterexample models);
* ``mode="invariant"`` — unbounded proofs from loop invariants (the
  paper supplies these manually when CPAChecker's abstraction fails);
* Houdini (see :mod:`repro.verify.houdini`) — inferring the invariants
  from a template pool, for annotation-free unbounded proofs.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import preconditions
from repro.core.simplify import simplify
from repro.lang import ast
from repro.solver import formula as F
from repro.solver import intern
from repro.solver.context import ContextStats, Model, QueryCache, SolverContext
from repro.solver.encode import EncodeError, Encoder
from repro.solver.interface import ValidityChecker
from repro.solver.profile import SolverProfile
from repro.target.transform import TargetProgram
from repro.verify import lemmas as lemma_mod
from repro.verify.vcgen import Obligation, VCGenerator


@dataclass
class VerificationConfig:
    """How to verify a target program.

    ``bindings`` substitutes concrete rationals for parameters (e.g.
    ``{"size": 5, "N": 1, "eps": 1}``) before execution — the paper's
    "fix ε" regime and the way loops become boundedly unrollable.
    ``assumptions`` are extra premises about the (remaining symbolic)
    parameters, e.g. ``eps > 0``.

    ``incremental`` discharges obligations grouped by shared path prefix
    under one pushed solver context per group (same verdicts, fewer and
    cheaper solves); ``jobs`` > 1 discharges independent groups on a
    thread pool.  Note the solver is pure Python, so thread workers
    interleave under the GIL rather than run truly concurrently —
    ``jobs`` bounds discharge concurrency structurally (and exercises
    the shared-cache locking) but is not a wall-clock multiplier on
    CPython today.
    """

    mode: str = "unroll"  # "unroll" | "invariant"
    bindings: Dict[str, Fraction] = field(default_factory=dict)
    assumptions: Tuple[ast.Expr, ...] = ()
    unroll_limit: int = 64
    extra_invariants: Tuple[ast.Expr, ...] = ()
    use_lemmas: bool = True
    collect_models: bool = True
    incremental: bool = True
    jobs: int = 1
    #: Attach the inner-loop :class:`SolverProfile` counters (pivots,
    #: propagations, conflicts, restarts, interned-node hits…) to the
    #: outcome.  Collection is always on; this flag controls reporting.
    profile: bool = False


@dataclass
class ObligationFailure:
    """A refuted obligation, with a counterexample model when available."""

    obligation: Obligation
    arith_model: Optional[Dict[str, Fraction]] = None
    bool_model: Optional[Dict[str, bool]] = None

    def describe(self) -> str:
        text = self.obligation.describe()
        if self.arith_model:
            inputs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.arith_model.items()) if not k.startswith("%")
            )
            text += f"  counterexample: {inputs}"
        return text


@dataclass
class VerificationOutcome:
    """The verdict plus accounting.

    ``solver_queries`` counts entailment questions asked;
    ``cache_hits`` how many were answered from the shared query cache;
    ``solve_calls`` the DPLL(T) solves actually executed (each refuted
    obligation costs exactly one — the countermodel comes from the
    refuting solve).  ``context_pushes``/``context_pops`` count
    incremental scope traffic, and ``jobs`` records the discharge
    parallelism used.
    """

    verified: bool
    obligations_total: int
    failures: List[ObligationFailure]
    seconds: float
    solver_queries: int = 0
    cache_hits: int = 0
    solve_calls: int = 0
    context_pushes: int = 0
    context_pops: int = 0
    jobs: int = 1
    #: Inner-loop counters (see :class:`SolverProfile`), attached when the
    #: configuration asked for profiling.
    profile: Optional[Dict[str, int]] = None

    def describe(self) -> str:
        status = "VERIFIED" if self.verified else "REFUTED"
        return (
            f"{status}: {self.obligations_total} obligations, "
            f"{len(self.failures)} failed, {self.seconds:.3f}s"
        )

    def solver_stats(self) -> Dict[str, int]:
        stats = {
            "queries": self.solver_queries,
            "cache_hits": self.cache_hits,
            "solve_calls": self.solve_calls,
            "pushes": self.context_pushes,
            "pops": self.context_pops,
            "jobs": self.jobs,
        }
        if self.profile is not None:
            stats["profile"] = dict(self.profile)
        return stats


# ---------------------------------------------------------------------------
# Parameter binding
# ---------------------------------------------------------------------------


def bind_expr(expr: ast.Expr, bindings: Dict[str, Fraction]) -> ast.Expr:
    mapping = {ast.Var(name): ast.Real(value) for name, value in bindings.items()}
    return simplify(ast.substitute(expr, mapping))


def bind_command(cmd: ast.Command, bindings: Dict[str, Fraction]) -> ast.Command:
    """Substitute concrete parameter values throughout a target command."""
    if not bindings:
        return cmd
    if isinstance(cmd, (ast.Skip, ast.Havoc)):
        return cmd
    if isinstance(cmd, ast.Assign):
        return ast.Assign(cmd.name, bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[bind_command(c, bindings) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(
            bind_expr(cmd.cond, bindings),
            bind_command(cmd.then, bindings),
            bind_command(cmd.orelse, bindings),
        )
    if isinstance(cmd, ast.While):
        return ast.While(
            bind_expr(cmd.cond, bindings),
            bind_command(cmd.body, bindings),
            tuple(bind_expr(i, bindings) for i in cmd.invariants),
        )
    if isinstance(cmd, ast.Return):
        return ast.Return(bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Assert):
        return ast.Assert(bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Assume):
        return ast.Assume(bind_expr(cmd.expr, bindings))
    raise TypeError(f"bind_command: unknown command {cmd!r}")


# ---------------------------------------------------------------------------
# Obligation discharge
# ---------------------------------------------------------------------------


class ObligationChecker:
    """Checks obligations against Ψ, assumptions and nonlinear lemmas.

    Discharge strategies (:meth:`check_all`):

    * **incremental** (default) — obligations are grouped by their shared
      path condition; each group's premises (assumptions + path) are
      asserted once into a :class:`SolverContext` and every member is
      checked under one pushed scope, reusing the Tseitin encoding and
      learned theory lemmas across the group.
    * **parallel** — independent groups are discharged on a thread pool
      (``jobs`` workers) sharing one :class:`QueryCache`.
    * **serial one-shot** — ``incremental=False`` restores a fresh solver
      per query (still single-solve and cache-backed).

    All strategies are sound and agree on every genuine verdict.  The
    conjoined check asserts the *union* of its chunk's premise
    extensions — all valid facts — so it can additionally prove goals
    the one-shot abstraction spuriously refutes (strictly more
    complete, never less sound); refutations always come with a
    concrete countermodel and are identical across strategies.
    """

    def __init__(
        self,
        psi: ast.Expr,
        assumptions: Sequence[ast.Expr],
        use_lemmas: bool = True,
        collect_models: bool = True,
        cache: Optional[QueryCache] = None,
        incremental: bool = True,
        jobs: int = 1,
    ) -> None:
        self.psi = psi
        self.assumptions = [simplify(a) for a in assumptions]
        self.use_lemmas = use_lemmas
        self.collect_models = collect_models
        self.cache = cache if cache is not None else QueryCache()
        self.incremental = incremental
        self.jobs = max(1, jobs)
        self.validity = ValidityChecker(cache=self.cache)
        self.stats = ContextStats()
        #: Inner-loop counters merged from every solver context this
        #: checker ran (the one-shot path accumulates directly into
        #: ``self.validity.profile``).
        self.profile = SolverProfile()

    # -- premise assembly ------------------------------------------------------

    def extra_premises_for(self, obligation: Obligation) -> List[ast.Expr]:
        """The per-obligation premises beyond assumptions + path:
        Ψ instances for the query's index terms, plus nonlinear lemmas."""
        queries = list(obligation.path) + [obligation.goal] + self.assumptions
        psi_premises = preconditions.instantiate(self.psi, queries)
        extra = list(psi_premises)
        if self.use_lemmas:
            premises = list(self.assumptions) + psi_premises + list(obligation.path)
            extra += self._lemmas(premises + [obligation.goal])
        return extra

    def premises_for(self, obligation: Obligation) -> List[ast.Expr]:
        premises = list(self.assumptions) + list(obligation.path)
        premises += self.extra_premises_for(obligation)
        return premises

    def _lemmas(self, exprs: Sequence[ast.Expr]) -> List[ast.Expr]:
        # Discovery pass: find all monomial atoms the query will create.
        encoder = Encoder()
        for expr in exprs:
            try:
                encoder.boolean(expr)
            except EncodeError:
                continue
        if not encoder.monomials:
            return []
        candidates = lemma_mod.relevant_vars(exprs)
        out = lemma_mod.sign_lemmas(encoder, self.assumptions)
        out += lemma_mod.monotonicity_lemmas(encoder, candidates)
        return out

    # -- discharge -------------------------------------------------------------

    def check(self, obligation: Obligation) -> Optional[ObligationFailure]:
        """None when the obligation is valid, a failure record otherwise.

        A refuted check returns its counterexample from the same solve
        that refuted it — no second query.
        """
        valid, model = self.validity.entailment(
            obligation.goal, self.premises_for(obligation)
        )
        return self._failure(obligation, valid, model)

    def check_all(
        self,
        obligations: Sequence[Obligation],
        skip: Optional[Callable[[Obligation], bool]] = None,
        on_failure: Optional[Callable[[Obligation], None]] = None,
        batch: bool = True,
    ) -> List[ObligationFailure]:
        """Discharge a batch of obligations; failures in input order.

        ``skip`` is consulted just before each obligation is checked and
        ``on_failure`` fires as refutations are found — together they let
        Houdini prune a candidate's remaining obligations mid-batch
        (``skip`` implies per-obligation discharge).  ``batch`` enables
        conjoined group discharge: all goals of a group proved in one
        solve, with model-guided refinement when some fail.
        """
        obligations = list(obligations)
        if not self.incremental:
            failures = []
            for obligation in obligations:
                if skip is not None and skip(obligation):
                    continue
                failure = self.check(obligation)
                if failure is not None:
                    failures.append(failure)
                    if on_failure is not None:
                        on_failure(obligation)
            return failures

        groups = _prefix_groups(obligations)
        results: List[Optional[ObligationFailure]] = [None] * len(obligations)

        def discharge(group: "_Group") -> Tuple[ContextStats, SolverProfile]:
            context = SolverContext(cache=self.cache)
            for premise in self.assumptions:
                context.assert_expr(premise)
            for premise in group.base:
                context.assert_expr(premise)
            if batch and skip is None and len(group.members) > 1:
                self._discharge_batched(context, group.members, results, on_failure)
            else:
                self._discharge_each(context, group.members, results, skip, on_failure)
            return context.stats, context.profile

        if self.jobs > 1 and len(groups) > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                accounts = list(pool.map(discharge, groups))
        else:
            accounts = [discharge(group) for group in groups]
        for group_stats, group_profile in accounts:
            self.stats.merge(group_stats)
            self.profile.merge(group_profile)
        return [failure for failure in results if failure is not None]

    def _discharge_each(self, context, members, results, skip, on_failure) -> None:
        for index, obligation, suffix in members:
            if skip is not None and skip(obligation):
                continue
            valid, model = context.check_entailment(
                obligation.goal,
                list(suffix) + self.extra_premises_for(obligation),
            )
            failure = self._failure(obligation, valid, model)
            if failure is not None:
                results[index] = failure
                if on_failure is not None:
                    on_failure(obligation)

    #: Conjoined-discharge width: batches wider than this are chunked.
    #: Bounds the case-split breadth of one solve — a refuting model
    #: still prunes across its whole chunk, while each solve stays
    #: comparable in size to a handful of individual queries.
    batch_limit: int = 8

    def _discharge_batched(self, context, members, results, on_failure) -> None:
        """Conjoined discharge: prove all goals of a group in few solves.

        Each member contributes the guarded goal ``suffix → g`` (its
        path facts beyond the group base as the guard), so the conjoined
        query ``base ⊨ ∧ᵢ (suffixᵢ → gᵢ)`` asks exactly the individual
        questions at once.  The per-goal premise extensions (Ψ instances
        under the precondition, sound real-arithmetic lemmas) are all
        valid facts, so asserting their union preserves each verdict's
        soundness.  UNSAT certifies every goal.  A SAT model satisfies
        the base premises, hence falsifying ``suffixᵢ → gᵢ`` makes it a
        genuine counterexample for obligation *i* — those are recorded
        at zero extra solves and the remainder re-batched.  Goals the
        model leaves undecided (or that evaluation cannot reach) fall
        back to individual checks, so the refinement loop strictly
        shrinks.
        """
        remaining: List[Tuple[int, Obligation, Tuple[ast.Expr, ...], List[ast.Expr]]] = [
            (index, obligation, suffix, self.extra_premises_for(obligation))
            for index, obligation, suffix in members
        ]
        while remaining:
            chunk = remaining[: self.batch_limit]
            remaining = remaining[self.batch_limit:]
            self._discharge_chunk(context, chunk, results, on_failure)

    def _discharge_chunk(self, context, pending, results, on_failure) -> None:
        while len(pending) > 1:
            extras: List[ast.Expr] = []
            seen = set()
            for _, _, _, extension in pending:
                for premise in extension:
                    if premise not in seen:
                        seen.add(premise)
                        extras.append(premise)
            conjunction: Optional[ast.Expr] = None
            for _, obligation, suffix, _ in pending:
                guarded = _guarded_goal(obligation.goal, suffix)
                conjunction = (
                    guarded if conjunction is None else ast.BinOp("&&", conjunction, guarded)
                )
            valid, model = context.check_entailment(conjunction, extras)
            if valid:
                return
            if model is None:
                break  # solver gave up on the batch; decide individually
            falsified = [
                (index, obligation)
                for index, obligation, suffix, _ in pending
                if _model_falsifies(_guarded_goal(obligation.goal, suffix), model)
            ]
            if not falsified:
                break  # model decides nothing we can evaluate
            for index, obligation in falsified:
                results[index] = self._failure(obligation, False, model)
                if on_failure is not None:
                    on_failure(obligation)
            decided = {index for index, _ in falsified}
            pending = [item for item in pending if item[0] not in decided]
        for index, obligation, suffix, extension in pending:
            valid, model = context.check_entailment(
                obligation.goal, list(suffix) + extension
            )
            failure = self._failure(obligation, valid, model)
            if failure is not None:
                results[index] = failure
                if on_failure is not None:
                    on_failure(obligation)

    def _failure(
        self, obligation: Obligation, valid: bool, model
    ) -> Optional[ObligationFailure]:
        if valid:
            return None
        if not self.collect_models or model is None:
            return ObligationFailure(obligation)
        arith, booleans = model
        return ObligationFailure(obligation, arith, booleans)

    # -- accounting ------------------------------------------------------------

    def solver_stats(self) -> ContextStats:
        """Aggregate counters: one-shot queries plus all context work."""
        stats = ContextStats(
            queries=self.validity.queries,
            cache_hits=self.validity.cache_hits,
            solve_calls=self.validity.solve_calls,
        )
        stats.merge(self.stats)
        return stats

    def profile_totals(self) -> SolverProfile:
        """Inner-loop counters over the whole discharge (all strategies)."""
        totals = SolverProfile()
        totals.merge(self.validity.profile)
        totals.merge(self.profile)
        return totals


@dataclass
class _Group:
    """Obligations sharing a path prefix.

    ``base`` is the common prefix (asserted once into the group's solver
    context); each member carries its path *suffix* beyond the base.
    """

    base: Tuple[ast.Expr, ...]
    members: List[Tuple[int, Obligation, Tuple[ast.Expr, ...]]]


def _prefix_groups(obligations: Sequence[Obligation]) -> List[_Group]:
    """Greedy chain grouping in generation order.

    Symbolic execution emits obligations along straight-line segments
    with monotonically growing paths; each such chain becomes one group
    whose base is its first obligation's path.  A branch merge resets
    the chain (its paths are not extensions of the previous base), which
    starts a fresh group.
    """
    groups: List[_Group] = []
    for index, obligation in enumerate(obligations):
        if groups:
            base = groups[-1].base
            if obligation.path[: len(base)] == base:
                groups[-1].members.append((index, obligation, obligation.path[len(base):]))
                continue
        groups.append(_Group(obligation.path, [(index, obligation, ())]))
    return groups


def _guarded_goal(goal: ast.Expr, suffix: Tuple[ast.Expr, ...]) -> ast.Expr:
    """``suffix → goal`` as an expression (``goal`` when no suffix)."""
    if not suffix:
        return goal
    guard = suffix[0]
    for fact in suffix[1:]:
        guard = ast.BinOp("&&", guard, fact)
    return ast.BinOp("||", ast.Not(guard), goal)


def _model_falsifies(goal: ast.Expr, model: Model) -> bool:
    """Does the (total, rational) model make ``goal`` false?

    Conservative: any variable the model misses or any construct the
    encoder cannot reach counts as "undecided", never as falsified.
    """
    arith, booleans = model
    try:
        return not F.evaluate(Encoder().boolean(goal), arith, booleans)
    except (KeyError, EncodeError, ArithmeticError):
        return False


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def verify_target(
    target: TargetProgram,
    config: Optional[VerificationConfig] = None,
    cache: Optional[QueryCache] = None,
) -> VerificationOutcome:
    """Verify that every assertion of ``target`` always holds.

    ``cache`` is an optional shared :class:`QueryCache`; the pipeline
    passes one per batch so repeated obligations across programs,
    bindings and Houdini rounds are answered once.
    """
    config = config or VerificationConfig()
    start = time.perf_counter()
    intern_hits_before, intern_misses_before = intern.counters()

    body = bind_command(target.body, config.bindings)
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    assumptions = [a for a in assumptions if a != ast.TRUE]

    generator = VCGenerator(
        unroll_limit=config.unroll_limit,
        use_invariants=(config.mode == "invariant"),
        extra_invariants=tuple(bind_expr(i, config.bindings) for i in config.extra_invariants),
    )
    generator.run(body)

    checker = ObligationChecker(
        psi,
        assumptions,
        use_lemmas=config.use_lemmas,
        collect_models=config.collect_models,
        cache=cache,
        incremental=config.incremental,
        jobs=config.jobs,
    )
    failures = checker.check_all(generator.obligations)
    stats = checker.solver_stats()

    profile_dict: Optional[Dict[str, int]] = None
    if config.profile:
        profile = checker.profile_totals()
        intern_hits, intern_misses = intern.counters()
        profile.intern_hits = intern_hits - intern_hits_before
        profile.intern_misses = intern_misses - intern_misses_before
        profile_dict = profile.to_dict()

    return VerificationOutcome(
        verified=not failures,
        obligations_total=len(generator.obligations),
        failures=failures,
        seconds=time.perf_counter() - start,
        solver_queries=stats.queries,
        cache_hits=stats.cache_hits,
        solve_calls=stats.solve_calls,
        context_pushes=stats.pushes,
        context_pops=stats.pops,
        jobs=checker.jobs,
        profile=profile_dict,
    )


def _bind_psi(psi: ast.Expr, bindings: Dict[str, Fraction]) -> ast.Expr:
    if not bindings:
        return psi
    # Quantified variables shadow bindings of the same name.
    mapping = {ast.Var(name): ast.Real(value) for name, value in bindings.items()}
    return simplify(ast.substitute(psi, mapping))
