"""The verification façade: discharge obligations through the SMT solver.

``verify_target`` plays the role CPAChecker plays in the paper's
pipeline (Section 6.1): it takes the transformed, non-probabilistic
program and proves that no assertion — in particular the final
``assert(v_eps <= bound)`` — can fail for any input satisfying the
adjacency precondition.  By Theorem 2 this establishes ε-differential
privacy of the source program.

Three regimes mirror the paper's Table 1 columns:

* ``mode="unroll"`` with concrete loop bounds — the "fix ε / fixed N"
  regime (also the bug-finding mode: failing obligations come back with
  concrete counterexample models);
* ``mode="invariant"`` — unbounded proofs from loop invariants (the
  paper supplies these manually when CPAChecker's abstraction fails);
* Houdini (see :mod:`repro.verify.houdini`) — inferring the invariants
  from a template pool, for annotation-free unbounded proofs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import preconditions
from repro.core.simplify import simplify
from repro.lang import ast
from repro.solver.encode import EncodeError, Encoder
from repro.solver.formula import mk_not
from repro.solver.interface import ValidityChecker
from repro.target.transform import TargetProgram
from repro.verify import lemmas as lemma_mod
from repro.verify.vcgen import Obligation, VCGenerator


@dataclass
class VerificationConfig:
    """How to verify a target program.

    ``bindings`` substitutes concrete rationals for parameters (e.g.
    ``{"size": 5, "N": 1, "eps": 1}``) before execution — the paper's
    "fix ε" regime and the way loops become boundedly unrollable.
    ``assumptions`` are extra premises about the (remaining symbolic)
    parameters, e.g. ``eps > 0``.
    """

    mode: str = "unroll"  # "unroll" | "invariant"
    bindings: Dict[str, Fraction] = field(default_factory=dict)
    assumptions: Tuple[ast.Expr, ...] = ()
    unroll_limit: int = 64
    extra_invariants: Tuple[ast.Expr, ...] = ()
    use_lemmas: bool = True
    collect_models: bool = True


@dataclass
class ObligationFailure:
    """A refuted obligation, with a counterexample model when available."""

    obligation: Obligation
    arith_model: Optional[Dict[str, Fraction]] = None
    bool_model: Optional[Dict[str, bool]] = None

    def describe(self) -> str:
        text = self.obligation.describe()
        if self.arith_model:
            inputs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.arith_model.items()) if not k.startswith("%")
            )
            text += f"  counterexample: {inputs}"
        return text


@dataclass
class VerificationOutcome:
    """The verdict plus accounting."""

    verified: bool
    obligations_total: int
    failures: List[ObligationFailure]
    seconds: float
    solver_queries: int = 0

    def describe(self) -> str:
        status = "VERIFIED" if self.verified else "REFUTED"
        return (
            f"{status}: {self.obligations_total} obligations, "
            f"{len(self.failures)} failed, {self.seconds:.3f}s"
        )


# ---------------------------------------------------------------------------
# Parameter binding
# ---------------------------------------------------------------------------


def bind_expr(expr: ast.Expr, bindings: Dict[str, Fraction]) -> ast.Expr:
    mapping = {ast.Var(name): ast.Real(value) for name, value in bindings.items()}
    return simplify(ast.substitute(expr, mapping))


def bind_command(cmd: ast.Command, bindings: Dict[str, Fraction]) -> ast.Command:
    """Substitute concrete parameter values throughout a target command."""
    if not bindings:
        return cmd
    if isinstance(cmd, (ast.Skip, ast.Havoc)):
        return cmd
    if isinstance(cmd, ast.Assign):
        return ast.Assign(cmd.name, bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[bind_command(c, bindings) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(
            bind_expr(cmd.cond, bindings),
            bind_command(cmd.then, bindings),
            bind_command(cmd.orelse, bindings),
        )
    if isinstance(cmd, ast.While):
        return ast.While(
            bind_expr(cmd.cond, bindings),
            bind_command(cmd.body, bindings),
            tuple(bind_expr(i, bindings) for i in cmd.invariants),
        )
    if isinstance(cmd, ast.Return):
        return ast.Return(bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Assert):
        return ast.Assert(bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Assume):
        return ast.Assume(bind_expr(cmd.expr, bindings))
    raise TypeError(f"bind_command: unknown command {cmd!r}")


# ---------------------------------------------------------------------------
# Obligation discharge
# ---------------------------------------------------------------------------


class ObligationChecker:
    """Checks obligations against Ψ, assumptions and nonlinear lemmas."""

    def __init__(
        self,
        psi: ast.Expr,
        assumptions: Sequence[ast.Expr],
        use_lemmas: bool = True,
        collect_models: bool = True,
    ) -> None:
        self.psi = psi
        self.assumptions = [simplify(a) for a in assumptions]
        self.use_lemmas = use_lemmas
        self.collect_models = collect_models
        self.validity = ValidityChecker()

    def premises_for(self, obligation: Obligation) -> List[ast.Expr]:
        queries = list(obligation.path) + [obligation.goal] + self.assumptions
        premises = list(self.assumptions)
        premises += preconditions.instantiate(self.psi, queries)
        premises += list(obligation.path)
        if self.use_lemmas:
            premises += self._lemmas(premises + [obligation.goal])
        return premises

    def _lemmas(self, exprs: Sequence[ast.Expr]) -> List[ast.Expr]:
        # Discovery pass: find all monomial atoms the query will create.
        encoder = Encoder()
        for expr in exprs:
            try:
                encoder.boolean(expr)
            except EncodeError:
                continue
        if not encoder.monomials:
            return []
        candidates = lemma_mod.relevant_vars(exprs)
        out = lemma_mod.sign_lemmas(encoder, self.assumptions)
        out += lemma_mod.monotonicity_lemmas(encoder, candidates)
        return out

    def check(self, obligation: Obligation) -> Optional[ObligationFailure]:
        """None when the obligation is valid, a failure record otherwise."""
        premises = self.premises_for(obligation)
        if self.validity.is_valid(obligation.goal, premises):
            return None
        if not self.collect_models:
            return ObligationFailure(obligation)
        model = self.validity.find_model(obligation.goal, premises)
        if model is None:  # pragma: no cover — cache raced; treat as valid
            return None
        arith, booleans = model
        return ObligationFailure(obligation, arith, booleans)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def verify_target(target: TargetProgram, config: Optional[VerificationConfig] = None) -> VerificationOutcome:
    """Verify that every assertion of ``target`` always holds."""
    config = config or VerificationConfig()
    start = time.perf_counter()

    body = bind_command(target.body, config.bindings)
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    assumptions = [a for a in assumptions if a != ast.TRUE]

    generator = VCGenerator(
        unroll_limit=config.unroll_limit,
        use_invariants=(config.mode == "invariant"),
        extra_invariants=tuple(bind_expr(i, config.bindings) for i in config.extra_invariants),
    )
    generator.run(body)

    checker = ObligationChecker(
        psi,
        assumptions,
        use_lemmas=config.use_lemmas,
        collect_models=config.collect_models,
    )
    failures: List[ObligationFailure] = []
    for obligation in generator.obligations:
        failure = checker.check(obligation)
        if failure is not None:
            failures.append(failure)

    return VerificationOutcome(
        verified=not failures,
        obligations_total=len(generator.obligations),
        failures=failures,
        seconds=time.perf_counter() - start,
        solver_queries=checker.validity.queries,
    )


def _bind_psi(psi: ast.Expr, bindings: Dict[str, Fraction]) -> ast.Expr:
    if not bindings:
        return psi
    # Quantified variables shadow bindings of the same name.
    mapping = {ast.Var(name): ast.Real(value) for name, value in bindings.items()}
    return simplify(ast.substitute(psi, mapping))
