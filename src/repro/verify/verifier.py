"""The verification façade: discharge obligations through the SMT solver.

``verify_target`` plays the role CPAChecker plays in the paper's
pipeline (Section 6.1): it takes the transformed, non-probabilistic
program and proves that no assertion — in particular the final
``assert(v_eps <= bound)`` — can fail for any input satisfying the
adjacency precondition.  By Theorem 2 this establishes ε-differential
privacy of the source program.

The discharge machinery itself is the first-class API in
:mod:`repro.verify.discharge`: the symbolic executor streams
:class:`~repro.verify.vcgen.Obligation`\\ s with provenance, a
:class:`~repro.verify.discharge.DischargePlan` partitions the stream
into addressable units, and a :class:`DischargeBackend` (serial /
threaded / one-shot, optionally cache-wrapped) schedules them while
emitting a typed :class:`DischargeEvent` stream.  This module wires a
:class:`VerificationConfig` to that API and keeps the legacy
:class:`ObligationChecker` surface (``check`` / ``check_all``) on top
of it.

Three regimes mirror the paper's Table 1 columns:

* ``mode="unroll"`` with concrete loop bounds — the "fix ε / fixed N"
  regime (also the bug-finding mode: failing obligations come back with
  concrete counterexample models);
* ``mode="invariant"`` — unbounded proofs from loop invariants (the
  paper supplies these manually when CPAChecker's abstraction fails);
* Houdini (see :mod:`repro.verify.houdini`) — inferring the invariants
  from a template pool, for annotation-free unbounded proofs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.simplify import simplify
from repro.ir import ast_to_cfg, fold_constant_guards
from repro.lang import ast
from repro.solver import intern
from repro.solver.context import QueryCache
from repro.target.transform import TargetProgram
from repro.verify.discharge import (
    DischargeBackend,
    DischargeEngine,
    DischargePlan,
    DischargeUnit,
    EarlyExit,
    EventSink,
    ObligationDischarged,
    ObligationFailure,
    ObligationRefuted,
    _LockedSink,
    effective_jobs,
    resolve_backend,
)
from repro.verify.store import ObligationStore, resolve_store
from repro.verify.vcgen import Obligation, VCGenerator
from repro.witness import Certificate, WitnessError, validate as validate_witness

#: The pseudo-unit id store-served verdicts are reported under in the
#: event stream (they never reach a real discharge unit).
STORE_UNIT = "store"


@dataclass
class VerificationConfig:
    """How to verify a target program.

    ``bindings`` substitutes concrete rationals for parameters (e.g.
    ``{"size": 5, "N": 1, "eps": 1}``) before execution — the paper's
    "fix ε" regime and the way loops become boundedly unrollable.
    ``assumptions`` are extra premises about the (remaining symbolic)
    parameters, e.g. ``eps > 0``.

    Discharge strategy: ``backend`` names one explicitly ("serial",
    "threaded", "oneshot", or a ready
    :class:`~repro.verify.discharge.DischargeBackend` instance); when
    None the legacy knobs decide — ``incremental`` groups obligations
    into path-prefix units under pushed solver contexts, ``jobs > 1``
    schedules units on a worker pool.  Any backend and job count
    produces identical verdicts, obligation ids and solve counts; the
    solver is pure Python, so on a stock GIL build thread workers
    interleave rather than run concurrently.  ``fail_fast`` stops
    scheduling work units after the first refutation.
    """

    mode: str = "unroll"  # "unroll" | "invariant"
    bindings: Dict[str, Fraction] = field(default_factory=dict)
    assumptions: Tuple[ast.Expr, ...] = ()
    unroll_limit: int = 64
    extra_invariants: Tuple[ast.Expr, ...] = ()
    use_lemmas: bool = True
    collect_models: bool = True
    incremental: bool = True
    jobs: int = 1
    backend: Optional[Union[str, DischargeBackend]] = None
    fail_fast: bool = False
    #: Attach the inner-loop :class:`SolverProfile` counters (pivots,
    #: propagations, conflicts, restarts, interned-node hits…) to the
    #: outcome.  Collection is always on; this flag controls reporting.
    profile: bool = False
    #: Cooperative cancellation: when this event is set, discharge stops
    #: at the next unit/chunk boundary with
    #: :class:`~repro.verify.discharge.DischargeCancelled` (per-request
    #: timeouts and drain in ``repro serve``).  Not part of the memo
    #: fingerprint — cancelling one request must not fork the cache.
    cancel_event: Optional[threading.Event] = None
    #: Persistent cross-run obligation store: a path (str), a ready
    #: :class:`~repro.verify.store.ObligationStore` instance (the
    #: server's shared store), or None (disabled — the default).
    #: Verdicts are consulted by ``(oid, premise fingerprint)`` before
    #: any solve and recorded after clean complete runs; see
    #: ``docs/cache.md``.  *Is* part of the memo fingerprint — runs with
    #: different stores must not share one memo entry.
    store: Optional[Union[str, ObligationStore]] = None
    #: Emit a machine-checkable proof certificate for every ``valid``
    #: verdict (see :mod:`repro.witness` and ``docs/witness.md``).
    #: Certificates are collected on the checker, persisted alongside
    #: store verdicts, and re-validated on warm store hits — a hit whose
    #: certificate fails the trusted kernel degrades to a counted
    #: re-solve.  Off by default: the recording hooks sit on conflict
    #: paths only, but emission still costs a snapshot per UNSAT answer.
    witness: bool = False


@dataclass
class VerificationOutcome:
    """The verdict plus accounting.

    ``solver_queries`` counts entailment questions asked;
    ``cache_hits`` how many were answered from the shared query cache;
    ``solve_calls`` the DPLL(T) solves actually executed (each refuted
    obligation costs exactly one — the countermodel comes from the
    refuting solve).  ``context_pushes``/``context_pops`` count
    incremental scope traffic; ``jobs``/``backend``/``units`` record
    the discharge schedule used, and ``early_exit`` whether
    ``fail_fast`` stopped it before the full plan ran.
    """

    verified: bool
    obligations_total: int
    failures: List[ObligationFailure]
    seconds: float
    solver_queries: int = 0
    cache_hits: int = 0
    solve_calls: int = 0
    context_pushes: int = 0
    context_pops: int = 0
    jobs: int = 1
    backend: str = "serial"
    units: int = 0
    early_exit: bool = False
    #: Inner-loop counters (see :class:`SolverProfile`), attached when the
    #: configuration asked for profiling.
    profile: Optional[Dict[str, int]] = None
    #: The content-derived ids of every obligation the run generated, in
    #: stream order — the addressable names the service layer reports
    #: (and the determinism property compares) without re-walking the
    #: program.  None on legacy construction paths.
    oids: Optional[List[str]] = None
    #: Persistent-store traffic for this run (hits/misses/writes/invalid
    #: plus the entry count), when a store was configured.
    store: Optional[Dict[str, int]] = None
    #: Raw per-worker solve totals from a process-backend run.  These
    #: are schedule-dependent by nature; the merged counters above are
    #: the schedule-invariant view.
    workers: Optional[Dict[str, Dict[str, int]]] = None
    #: Supervision report from a process-backend run that survived
    #: worker failures (pool restarts, retries, serially re-solved
    #: units, incident causes).  None on clean runs — the verdict
    #: fields above are byte-identical to serial either way; only this
    #: report records that recovery happened.
    recovery: Optional[Dict[str, object]] = None
    #: How many proof certificates the run collected (fresh emissions
    #: plus validated warm hits).  None when witnesses were off.
    witnesses: Optional[int] = None

    def describe(self) -> str:
        status = "VERIFIED" if self.verified else "REFUTED"
        text = (
            f"{status}: {self.obligations_total} obligations, "
            f"{len(self.failures)} failed, {self.seconds:.3f}s"
        )
        if self.early_exit:
            text += " (early exit)"
        return text

    def solver_stats(self) -> Dict[str, int]:
        stats = {
            "queries": self.solver_queries,
            "cache_hits": self.cache_hits,
            "solve_calls": self.solve_calls,
            "pushes": self.context_pushes,
            "pops": self.context_pops,
            "jobs": self.jobs,
            "backend": self.backend,
            "units": self.units,
        }
        if self.profile is not None:
            stats["profile"] = dict(self.profile)
        if self.store is not None:
            stats["store"] = dict(self.store)
        if self.workers is not None:
            stats["workers"] = {pid: dict(row) for pid, row in self.workers.items()}
        if self.recovery is not None:
            stats["recovery"] = dict(self.recovery)
        if self.witnesses is not None:
            stats["witnesses"] = self.witnesses
        return stats


# ---------------------------------------------------------------------------
# Parameter binding
# ---------------------------------------------------------------------------


def bind_expr(expr: ast.Expr, bindings: Dict[str, Fraction]) -> ast.Expr:
    mapping = {ast.Var(name): ast.Real(value) for name, value in bindings.items()}
    return simplify(ast.substitute(expr, mapping))


def bind_command(cmd: ast.Command, bindings: Dict[str, Fraction]) -> ast.Command:
    """Substitute concrete parameter values throughout a target command."""
    if not bindings:
        return cmd
    if isinstance(cmd, (ast.Skip, ast.Havoc)):
        return cmd
    if isinstance(cmd, ast.Assign):
        return ast.Assign(cmd.name, bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Seq):
        return ast.seq(*[bind_command(c, bindings) for c in cmd.commands])
    if isinstance(cmd, ast.If):
        return ast.If(
            bind_expr(cmd.cond, bindings),
            bind_command(cmd.then, bindings),
            bind_command(cmd.orelse, bindings),
        )
    if isinstance(cmd, ast.While):
        return ast.While(
            bind_expr(cmd.cond, bindings),
            bind_command(cmd.body, bindings),
            tuple(bind_expr(i, bindings) for i in cmd.invariants),
        )
    if isinstance(cmd, ast.Return):
        return ast.Return(bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Assert):
        return ast.Assert(bind_expr(cmd.expr, bindings))
    if isinstance(cmd, ast.Assume):
        return ast.Assume(bind_expr(cmd.expr, bindings))
    raise TypeError(f"bind_command: unknown command {cmd!r}")


# ---------------------------------------------------------------------------
# Obligation discharge
# ---------------------------------------------------------------------------


class ObligationChecker(DischargeEngine):
    """The configured discharge engine plus the legacy checking surface.

    Strategy selection (see :func:`repro.verify.discharge.resolve_backend`):

    * **serial** (default) — obligations are grouped into path-prefix
      units; each unit's premises (assumptions + path base) are
      asserted once into a :class:`SolverContext` and every member is
      checked under one pushed scope, goals conjoined with model-guided
      refinement.
    * **threaded** — independent units are discharged on a worker pool
      (``jobs`` workers) sharing one single-flight :class:`QueryCache`;
      results and counters merge deterministically by unit id.
    * **oneshot** — ``incremental=False`` restores a fresh solver per
      query (still single-solve and cache-backed).

    All strategies are sound and agree on every genuine verdict.  The
    conjoined check asserts the *union* of its chunk's premise
    extensions — all valid facts — so it can additionally prove goals
    the one-shot abstraction spuriously refutes (strictly more
    complete, never less sound); refutations always come with a
    concrete countermodel and are identical across strategies.
    """

    # -- discharge -------------------------------------------------------------

    def check(self, obligation: Obligation) -> Optional[ObligationFailure]:
        """None when the obligation is valid, a failure record otherwise."""
        return self.check_one(obligation)

    def discharge_stream(
        self,
        obligations,
        skip: Optional[Callable[[Obligation], bool]] = None,
        on_failure: Optional[Callable[[Obligation], None]] = None,
        batch: bool = True,
        emit: EventSink = None,
        fail_fast: bool = False,
    ) -> List[ObligationFailure]:
        """Discharge an obligation stream; failures in stream order.

        ``skip`` is consulted just before each obligation is checked and
        ``on_failure`` fires as refutations are found — together they let
        Houdini prune a candidate's remaining obligations mid-batch
        (``skip`` implies per-obligation discharge).  ``batch`` enables
        conjoined unit discharge.  ``emit`` receives the typed
        :class:`DischargeEvent` stream; ``fail_fast`` stops scheduling
        units after the first refutation.

        With a persistent store configured (and no Houdini-style
        callbacks, whose verdicts are about *candidates*, not the
        program), each streamed obligation is first looked up by
        ``(oid, fingerprint)``: hits are reported under the pseudo-unit
        ``"store"`` without ever reaching the plan, misses flow into
        discharge as usual, and a clean complete run writes its fresh
        verdicts back in one transaction.
        """
        backend = resolve_backend(self.incremental, self.jobs, self.backend_choice)
        if (
            emit is not None
            and effective_jobs(backend) > 1
            and not isinstance(emit, _LockedSink)
        ):
            # Plan events (main thread) and unit events (workers) go
            # through one serialized writer; single-threaded backends
            # skip the lock.
            emit = _LockedSink(emit)
        store = self.store if (skip is None and on_failure is None) else None
        #: store-refuted obligations, keyed by original stream index.
        store_failures: Dict[int, ObligationFailure] = {}
        #: filtered position → original stream index, for re-keying.
        kept: List[int] = []
        units_seen: List[DischargeUnit] = []
        if store is not None:
            obligations = self._store_filter(
                obligations, store, store_failures, kept, emit, fail_fast
            )
        units = DischargePlan.stream_units(obligations, emit=emit)
        if store is not None:
            units = _remember_units(units, units_seen)
        results: Dict[int, ObligationFailure] = {}
        accounts = backend.run(
            self,
            units,
            results,
            skip=skip,
            on_failure=on_failure,
            emit=emit,
            batch=batch,
            fail_fast=fail_fast,
        )
        self.units_run += len(accounts)
        self.merge_accounts(accounts)
        if store is not None:
            self._store_writeback(store, units_seen, accounts, results)
            # Solved obligations were renumbered by the filter; restore
            # original stream indices and fold in the store verdicts so
            # failure order matches the unfiltered stream.
            results = {kept[index]: failure for index, failure in results.items()}
            results.update(store_failures)
        return [results[index] for index in sorted(results)]

    def _store_filter(
        self,
        obligations,
        store: ObligationStore,
        store_failures: Dict[int, ObligationFailure],
        kept: List[int],
        emit: EventSink,
        fail_fast: bool,
    ):
        """Yield only store-missed obligations, reporting hits inline."""
        fingerprint = self.store_fingerprint
        stream = iter(obligations)
        index = -1
        while True:
            obligation = next(stream, None)
            if obligation is None:
                return
            index += 1
            verdict = store.lookup(obligation.oid, fingerprint)
            if verdict is None:
                kept.append(index)
                yield obligation
                continue
            if verdict.valid:
                if self.witness and verdict.witness is not None:
                    # Witnessed regime: a warm hit is only trusted after
                    # its stored certificate passes the trusted kernel.
                    # A reject (corruption, tampering) degrades this hit
                    # to an ordinary re-solve — counted, never trusted.
                    if not self._validated_hit(store, obligation, verdict.witness):
                        kept.append(index)
                        yield obligation
                        continue
                if emit is not None:
                    emit(
                        ObligationDischarged(
                            STORE_UNIT, obligation.oid, obligation.tag, cached=True
                        )
                    )
                continue
            model = None
            if verdict.arith_model is not None or verdict.bool_model is not None:
                model = (verdict.arith_model or {}, verdict.bool_model or {})
            failure = self._failure(obligation, False, model)
            store_failures[index] = failure
            if emit is not None:
                emit(
                    ObligationRefuted(
                        STORE_UNIT, obligation.oid, obligation.tag, failure.describe()
                    )
                )
            if fail_fast:
                # Stop the stream before the executor produces more
                # work — but only call it an early exit if any remained.
                if kept or next(stream, None) is not None:
                    self.early_exited = True
                    if emit is not None:
                        emit(EarlyExit(STORE_UNIT, "first refutation (fail-fast)"))
                return

    def _validated_hit(
        self, store: ObligationStore, obligation: Obligation, witness_text: str
    ) -> bool:
        """Re-check a stored certificate; True iff the kernel accepts it.

        Accepted certificates are re-collected on the checker (so a
        fully-warm run still exposes every proof), and the validation is
        tallied on the store's counters either way.
        """
        try:
            certificate = Certificate.from_json(witness_text)
            validate_witness(certificate)
        except WitnessError:
            store.counters.witness_rejects += 1
            return False
        store.counters.validated_hits += 1
        self.certificates[obligation.oid] = certificate
        return True

    def _store_writeback(
        self,
        store: ObligationStore,
        units_seen: List[DischargeUnit],
        accounts,
        results: Dict[int, ObligationFailure],
    ) -> None:
        """Persist fresh verdicts from fully-discharged units.

        Skipped entirely after an early exit (fail-fast or
        cancellation): a unit the run abandoned mid-way has members
        without verdicts, and recording them would turn "not checked"
        into "valid" on the next run.
        """
        if self.early_exited:
            return
        completed = {index for index, _ in accounts}
        rows = []
        for unit in units_seen:
            if unit.index not in completed:
                continue
            region = unit.region
            for member_index, obligation, _ in unit.members:
                failure = results.get(member_index)
                if failure is None:
                    rows.append(
                        (obligation.oid, obligation.tag, region, True, "unsat", None,
                         self.witness_text(obligation.oid))
                    )
                else:
                    model = None
                    status = "unknown"
                    if failure.arith_model is not None or failure.bool_model is not None:
                        model = (failure.arith_model or {}, failure.bool_model or {})
                        status = "sat"
                    rows.append(
                        (obligation.oid, obligation.tag, region, False, status, model,
                         None)
                    )
        store.record_many(self.store_fingerprint, rows)

    def witness_text(self, oid: str) -> Optional[str]:
        """The canonical serialized certificate for ``oid``, or None.

        The oid and premise fingerprint are baked into the stored form
        without mutating the (possibly chunk-shared) in-memory object.
        """
        certificate = self.certificates.get(oid)
        if certificate is None:
            return None
        return replace(
            certificate, oid=oid, fingerprint=self.store_fingerprint
        ).to_json()

    def check_all(
        self,
        obligations: Sequence[Obligation],
        skip: Optional[Callable[[Obligation], bool]] = None,
        on_failure: Optional[Callable[[Obligation], None]] = None,
        batch: bool = True,
        emit: EventSink = None,
    ) -> List[ObligationFailure]:
        """Discharge a batch of obligations; failures in input order."""
        return self.discharge_stream(
            obligations, skip=skip, on_failure=on_failure, batch=batch, emit=emit
        )

    @property
    def effective_backend(self) -> DischargeBackend:
        """The backend this checker's configuration resolves to."""
        return resolve_backend(self.incremental, self.jobs, self.backend_choice)

    @property
    def backend_name(self) -> str:
        return self.effective_backend.name

    @property
    def effective_jobs(self) -> int:
        """The discharge worker count actually used (env overrides and
        explicit backend instances included), for honest accounting."""
        return effective_jobs(self.effective_backend)


def _remember_units(units, seen: List[DischargeUnit]):
    """Tee the streamed units into ``seen`` (for store write-back)."""
    for unit in units:
        seen.append(unit)
        yield unit


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def prepare_generator(
    target: TargetProgram, config: VerificationConfig
) -> Tuple[VCGenerator, ObligationChecker]:
    """The configured symbolic executor and checker for one run.

    Shared by :func:`verify_target`, :func:`iter_obligations` and the
    CLI's ``repro obligations`` listing: parameters are bound, the body
    CFG is built and constant guards are folded (statically-dead
    branches never generate obligations), and the checker carries Ψ,
    the assumptions and the discharge strategy.
    """
    psi = _bind_psi(target.function.precondition, config.bindings)
    assumptions = [bind_expr(a, config.bindings) for a in config.assumptions]
    assumptions = [a for a in assumptions if a != ast.TRUE]

    generator = VCGenerator(
        unroll_limit=config.unroll_limit,
        use_invariants=(config.mode == "invariant"),
        extra_invariants=tuple(bind_expr(i, config.bindings) for i in config.extra_invariants),
    )
    checker = ObligationChecker(
        psi,
        assumptions,
        use_lemmas=config.use_lemmas,
        collect_models=config.collect_models,
        incremental=config.incremental,
        jobs=config.jobs,
        backend=config.backend,
        cancel_event=config.cancel_event,
        store=resolve_store(config.store),
        witness=config.witness,
    )
    return generator, checker


def target_cfg(target: TargetProgram, config: VerificationConfig):
    """The bound, guard-folded CFG the symbolic executor runs."""
    body = bind_command(target.body, config.bindings)
    cfg = ast_to_cfg(body)
    # Statically-constant guards (usually produced by parameter binding)
    # are folded before execution, so dead obligations are never
    # generated.  Constant-false loops are only removable in unroll
    # mode: invariant mode emits entry/preservation obligations even
    # for loops whose guard is never true.
    return fold_constant_guards(cfg, fold_loops=(config.mode != "invariant"))


def iter_obligations(
    target: TargetProgram, config: Optional[VerificationConfig] = None
) -> Iterator[Obligation]:
    """Stream a target's obligations, with provenance, without solving.

    Backs the ``repro obligations`` CLI subcommand and any tooling that
    wants to inspect or partition the obligation space.
    """
    config = config or VerificationConfig()
    generator, _ = prepare_generator(target, config)
    yield from generator.stream(target_cfg(target, config))


def verify_target(
    target: TargetProgram,
    config: Optional[VerificationConfig] = None,
    cache: Optional[QueryCache] = None,
    on_event: EventSink = None,
) -> VerificationOutcome:
    """Verify that every assertion of ``target`` always holds.

    ``cache`` is an optional shared :class:`QueryCache`; the pipeline
    passes one per batch so repeated obligations across programs,
    bindings and Houdini rounds are answered once (the configured
    backend is wrapped in a
    :class:`~repro.verify.discharge.CachedBackend`).  ``on_event``
    receives the typed :class:`DischargeEvent` stream as units are
    scheduled and obligations discharged.
    """
    config = config or VerificationConfig()
    start = time.perf_counter()
    intern_hits_before, intern_misses_before = intern.counters()

    generator, checker = prepare_generator(target, config)
    if cache is not None:
        # Wrap the resolved backend so the shared cache is installed at
        # discharge time — the CachedBackend composition path.
        checker.backend_choice = resolve_backend(
            checker.incremental, checker.jobs, checker.backend_choice, cache=cache
        )
    store_before = checker.store.snapshot() if checker.store is not None else None
    stream = generator.stream(target_cfg(target, config))
    failures = checker.discharge_stream(
        stream, emit=on_event, fail_fast=config.fail_fast
    )
    stats = checker.solver_stats()
    store_stats: Optional[Dict[str, int]] = None
    if checker.store is not None:
        # Delta, not cumulative: the server shares one store across
        # requests and each outcome reports its own traffic.
        store_stats = checker.store.delta_since(store_before)
        store_stats["entries"] = checker.store.entry_count()
        if checker.store.degraded:
            store_stats["degraded"] = True

    profile_dict: Optional[Dict[str, int]] = None
    if config.profile:
        profile = checker.profile_totals()
        intern_hits, intern_misses = intern.counters()
        profile.intern_hits = intern_hits - intern_hits_before
        profile.intern_misses = intern_misses - intern_misses_before
        profile_dict = profile.to_dict()

    return VerificationOutcome(
        verified=not failures,
        obligations_total=len(generator.obligations),
        failures=failures,
        seconds=time.perf_counter() - start,
        solver_queries=stats.queries,
        cache_hits=stats.cache_hits,
        solve_calls=stats.solve_calls,
        context_pushes=stats.pushes,
        context_pops=stats.pops,
        jobs=checker.effective_jobs,
        backend=checker.backend_name,
        units=checker.units_run,
        early_exit=checker.early_exited,
        profile=profile_dict,
        oids=[ob.oid for ob in generator.obligations],
        store=store_stats,
        workers=checker.worker_report,
        recovery=checker.recovery,
        witnesses=len(checker.certificates) if config.witness else None,
    )


def _bind_psi(psi: ast.Expr, bindings: Dict[str, Fraction]) -> ast.Expr:
    if not bindings:
        return psi
    # Quantified variables shadow bindings of the same name.
    mapping = {ast.Var(name): ast.Real(value) for name, value in bindings.items()}
    return simplify(ast.substitute(psi, mapping))
