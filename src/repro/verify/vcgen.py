"""Symbolic execution of target programs into a proof-obligation stream.

The executor runs the program's CFG block by block: it maintains a
*store* mapping each variable (including hat variables and ``v_eps``)
to a symbolic expression over input symbols, and a *path condition*.
``havoc`` introduces fresh symbols (``eta#3``).  At a branch both arms
execute from copies of the store and reconverge at the CFG's join
block, where the stores are merged with ternaries — so the number of
obligations stays linear in program size.

Obligations are **streamed**: :meth:`VCGenerator.stream` is a true
generator that yields each :class:`Obligation` the moment its block is
executed, so discharge can begin before generation finishes and an
early refutation can stop generation altogether.  Every obligation
carries a stable content-derived id (:attr:`Obligation.oid`) and a
:class:`Provenance` record — the CFG block it came from, the enclosing
loop region, the unroll iteration, the path-condition depth and the
pretty-printed originating statement — so refutations are explainable,
addressable artifacts rather than bare booleans.

Loops are per-loop sub-CFGs (:class:`~repro.ir.cfg.LoopHeader`) and
come in two flavours:

* **unroll** — the body sub-CFG is executed up to a budget; a final
  obligation demands the guard is provably false when the budget runs
  out, so a successful verification is a *complete* proof for the given
  concrete loop bounds (not a bounded approximation).
* **invariant** — the classic Hoare treatment: establish invariants on
  entry, havoc the variables the body sub-CFG assigns, assume
  invariants ∧ guard, check the body re-establishes the invariants,
  continue under invariants ∧ ¬guard.  Invariants come from program
  annotations (``while (e) invariant I; {...}``) or from Houdini.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Generator, Iterator, List, Optional, Tuple, Union

from repro.core.simplify import simplify
from repro.ir import StatementVisitor, ast_to_cfg, map_expr
from repro.ir.cfg import CFG, Block, Branch, Exit, IRError, Jump, LoopHeader
from repro.lang import ast
from repro.lang.pretty import pretty_command, pretty_expr

Store = Dict[str, ast.Expr]

#: The walker state: the symbolic store and the path condition.
State = Tuple[Store, Tuple[ast.Expr, ...]]


class VCGenError(ValueError):
    """Raised when a program cannot be symbolically executed."""


@dataclass(frozen=True)
class Provenance:
    """Where an obligation came from, structurally.

    ``block`` is the basic-block id (within its region's CFG) of the
    statement that produced the obligation; ``region`` is the
    hierarchical region path — ``"fn"`` for the top level, extended
    with ``/loop@b<id>`` per enclosing loop sub-CFG and ``#<k>`` for
    the unroll iteration.  ``statement`` is the pretty-printed
    originating statement (the AST carries no source positions — nodes
    are structurally interned — so the statement text is the stable
    source coordinate).  ``path_depth`` is the length of the path
    condition when the obligation was emitted.
    """

    block: int
    region: str
    statement: str
    path_depth: int
    loop_head: Optional[int] = None
    iteration: Optional[int] = None

    def describe(self) -> str:
        where = f"{self.region}/b{self.block}"
        if self.iteration is not None:
            where += f" iter {self.iteration}"
        return where

    def to_dict(self) -> Dict[str, object]:
        return {
            "block": self.block,
            "region": self.region,
            "statement": self.statement,
            "path_depth": self.path_depth,
            "loop_head": self.loop_head,
            "iteration": self.iteration,
        }


@dataclass(frozen=True)
class Obligation:
    """One proof obligation: ``path ⊨ goal``.

    ``tag`` distinguishes obligation species ("assert", "unroll",
    "invariant-entry", "invariant-preserved") and ``label`` carries the
    invariant index for Houdini's counterexample-guided pruning.
    ``provenance`` is reporting metadata and deliberately excluded from
    equality, so obligations compare (and cache) by logical content.
    """

    goal: ast.Expr
    path: Tuple[ast.Expr, ...]
    tag: str
    label: Optional[object] = None
    provenance: Optional[Provenance] = field(default=None, compare=False, repr=False)

    @cached_property
    def oid(self) -> str:
        """A stable, content-derived obligation id.

        Derived from the logical content only (tag, label, goal, path) —
        node reprs are structural and position-free — so the id is
        identical across runs, processes, backends and job counts, and
        two obligations with the same logical content share one id.
        """
        payload = f"{self.tag}|{self.label!r}|{self.goal!r}|{self.path!r}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

    def describe(self) -> str:
        return f"[{self.tag}] {pretty_expr(self.goal)}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "id": self.oid,
            "tag": self.tag,
            "goal": pretty_expr(self.goal),
            "path": [pretty_expr(p) for p in self.path],
        }
        if self.label is not None:
            data["label"] = list(self.label) if isinstance(self.label, tuple) else self.label
        if self.provenance is not None:
            data["provenance"] = self.provenance.to_dict()
        return data


#: The obligation stream type: yields obligations, returns the final state.
ObligationStream = Generator[Obligation, None, State]


@dataclass
class VCGenerator(StatementVisitor):
    """Symbolically executes one program, block by block, streaming
    obligations as the walk reaches them.

    :meth:`stream` is the primary interface — a generator yielding each
    obligation with provenance attached; :meth:`run` drains the stream
    and returns the final state (the pre-streaming API, still used by
    Houdini and the benchmarks).  Either way every obligation also
    accumulates on :attr:`obligations` in emission order.
    """

    unroll_limit: int = 64
    use_invariants: bool = False
    extra_invariants: Tuple[ast.Expr, ...] = ()
    obligations: List[Obligation] = field(default_factory=list)
    _fresh: int = 0
    _block: int = 0
    _region: str = "fn"
    _iteration: Optional[int] = None
    _pending: List[Obligation] = field(default_factory=list)
    _final_state: Optional[State] = None

    # -- public API ------------------------------------------------------------

    def stream(
        self, program: Union[ast.Command, CFG], store: Optional[Store] = None
    ) -> Iterator[Obligation]:
        """Execute ``program`` (a command or a prebuilt CFG) from
        ``store`` (default: every variable maps to itself, i.e. fully
        symbolic inputs), yielding obligations as blocks execute.  The
        final state is available as :attr:`final_state` once the
        generator is exhausted."""
        cfg = program if isinstance(program, CFG) else ast_to_cfg(program)
        self._final_state = yield from self._walk(
            cfg, cfg.entry, None, (dict(store or {}), ())
        )

    def run(self, program: Union[ast.Command, CFG], store: Optional[Store] = None) -> State:
        """Drain :meth:`stream`; obligations accumulate on the generator."""
        for _ in self.stream(program, store):
            pass
        assert self._final_state is not None
        return self._final_state

    @property
    def final_state(self) -> Optional[State]:
        """The (store, path) the walk ended in, once streaming finished."""
        return self._final_state

    # -- helpers ------------------------------------------------------------------

    def fresh(self, base: str) -> ast.Var:
        self._fresh += 1
        return ast.Var(f"{base}#{self._fresh}")

    def _subst(self, expr: ast.Expr, store: Store) -> ast.Expr:
        return simplify(_subst_expr(expr, store))

    def _oblige(
        self,
        goal: ast.Expr,
        path: Tuple[ast.Expr, ...],
        tag: str,
        label=None,
        statement: str = "",
        loop_head: Optional[int] = None,
    ) -> None:
        goal = simplify(goal)
        if goal == ast.TRUE:
            return
        provenance = Provenance(
            block=self._block,
            region=self._region,
            statement=statement,
            path_depth=len(path),
            loop_head=loop_head,
            iteration=self._iteration,
        )
        obligation = Obligation(goal, path, tag, label, provenance)
        self.obligations.append(obligation)
        self._pending.append(obligation)

    def _drain(self) -> Iterator[Obligation]:
        if self._pending:
            pending, self._pending = self._pending, []
            yield from pending

    # -- straight-line statements --------------------------------------------------

    def visit_assign(self, stmt: ast.Assign, state: State) -> State:
        store, path = state
        store = dict(store)
        store[stmt.name] = self._subst(stmt.expr, store)
        return store, path

    def visit_havoc(self, stmt: ast.Havoc, state: State) -> State:
        store, path = state
        store = dict(store)
        store[stmt.name] = self.fresh(stmt.name)
        return store, path

    def visit_assert_(self, stmt: ast.Assert, state: State) -> State:
        store, path = state
        self._oblige(
            self._subst(stmt.expr, store), path, "assert",
            statement=pretty_command(stmt),
        )
        return state

    def visit_assume(self, stmt: ast.Assume, state: State) -> State:
        store, path = state
        fact = self._subst(stmt.expr, store)
        if fact != ast.TRUE:
            path = path + (fact,)
        return store, path

    def visit_return_(self, stmt: ast.Return, state: State) -> State:
        return state

    def visit_skip(self, stmt: ast.Skip, state: State) -> State:
        return state

    def visit_sample(self, stmt: ast.Sample, state: State) -> State:
        raise VCGenError(
            "sampling command reached the verifier — lower with "
            "repro.target.transform first"
        )

    def generic_visit(self, stmt: ast.Command, *args):
        raise VCGenError(f"cannot execute {stmt!r}")

    # -- the streaming walk --------------------------------------------------------

    def _walk(self, cfg: CFG, start: int, stop: Optional[int], state: State) -> ObligationStream:
        """One region of the graph, yielding obligations as they arise.

        The generator-based twin of :meth:`repro.ir.CFGWalker.run_region`
        (the callback walker cannot stream): statements dispatch through
        :class:`~repro.ir.StatementVisitor`, branches reconverge at the
        CFG join, loops run their body sub-CFGs.  Traversal order — and
        therefore obligation order, havoc numbering and the path
        conditions — is identical to the pre-streaming executor.
        """
        bid: Optional[int] = start
        while bid is not None and bid != stop:
            block = cfg.block(bid)
            self._block = bid
            for stmt in block.stmts:
                state = self.visit(stmt, state)
                yield from self._drain()
            term = block.term
            if isinstance(term, Jump):
                bid = term.target
            elif isinstance(term, Branch):
                join = cfg.join_of(block.id)
                state = yield from self._branch(cfg, block, term, join, state)
                bid = join
            elif isinstance(term, LoopHeader):
                state = yield from self._loop(cfg, block, term, state)
                bid = term.after
            elif isinstance(term, Exit):
                bid = None
            else:
                raise IRError(f"unknown terminator {term!r}")
        return state

    # -- branches: merge stores at the join node -----------------------------------

    def _branch(
        self, cfg: CFG, block: Block, term: Branch, join: int, state: State
    ) -> ObligationStream:
        store, path = state
        cond = self._subst(term.cond, store)
        if cond == ast.TRUE:
            return (yield from self._walk(cfg, term.then, join, state))
        if cond == ast.FALSE:
            if term.orelse == join:
                return state
            return (yield from self._walk(cfg, term.orelse, join, state))
        base_t = path + (cond,)
        base_f = path + (ast.Not(cond),)
        store_t, path_t = yield from self._walk(cfg, term.then, join, (dict(store), base_t))
        if term.orelse == join:
            store_f, path_f = dict(store), base_f
        else:
            store_f, path_f = yield from self._walk(
                cfg, term.orelse, join, (dict(store), base_f)
            )
        # Facts learned inside a branch (assumes, loop-invariant
        # assumptions) survive the merge as guarded implications.
        merged_path = path
        for fact in path_t[len(base_t):]:
            merged_path = merged_path + (ast.BinOp("||", ast.Not(cond), fact),)
        for fact in path_f[len(base_f):]:
            merged_path = merged_path + (ast.BinOp("||", cond, fact),)
        return _merge_stores(cond, store_t, store_f), merged_path

    # -- loops: one sub-CFG per loop ------------------------------------------------

    def _loop(self, cfg: CFG, block: Block, term: LoopHeader, state: State) -> ObligationStream:
        store, path = state
        if self.use_invariants and (term.invariants or self.extra_invariants):
            return (yield from self._exec_loop_invariant(block, term, store, path))
        return (
            yield from self._exec_loop_unroll(block, term, store, path, self.unroll_limit)
        )

    def _run_body(self, term: LoopHeader, state: State) -> ObligationStream:
        body = term.body
        return (yield from self._walk(body, body.entry, None, state))

    def _in_loop_region(self, head: int, iteration: Optional[int]):
        """Provenance context for one trip through a loop body sub-CFG."""
        region = f"{self._region}/loop@b{head}"
        if iteration is not None:
            region += f"#{iteration}"
        return _RegionScope(self, region, iteration)

    def _exec_loop_unroll(
        self, block: Block, term: LoopHeader, store: Store, path, budget: int
    ) -> ObligationStream:
        guard = self._subst(term.cond, store)
        if guard == ast.FALSE:
            return store, path
        if budget == 0:
            # Completeness obligation: the loop must have terminated by
            # now; otherwise verification legitimately fails.
            self._block = block.id
            self._oblige(
                ast.Not(guard), path, "unroll",
                statement=f"while ({pretty_expr(term.cond)})",
                loop_head=block.id,
            )
            yield from self._drain()
            if guard != ast.TRUE:
                path = path + (ast.Not(guard),)
            return store, path
        base = path if guard == ast.TRUE else path + (guard,)
        iteration = self.unroll_limit - budget + 1
        with self._in_loop_region(block.id, iteration):
            body_store, body_path = yield from self._run_body(term, (dict(store), base))
        rest_store, rest_path = yield from self._exec_loop_unroll(
            block, term, body_store, body_path, budget - 1
        )
        if guard == ast.TRUE:
            return rest_store, rest_path
        merged = _merge_stores(guard, rest_store, store)
        merged_path = path
        for fact in rest_path[len(base):]:
            merged_path = merged_path + (ast.BinOp("||", ast.Not(guard), fact),)
        exit_guard = self._subst(term.cond, merged)
        if exit_guard != ast.FALSE:
            merged_path = merged_path + (ast.Not(exit_guard),)
        return merged, merged_path

    def _exec_loop_invariant(
        self, block: Block, term: LoopHeader, store: Store, path
    ) -> ObligationStream:
        own = tuple(term.invariants)
        invariants = own + tuple(self.extra_invariants)
        # Labels distinguish program-annotated invariants from injected
        # candidates so Houdini prunes only its own.
        labels = [("own", k) for k in range(len(own))] + [
            ("extra", k) for k in range(len(self.extra_invariants))
        ]
        # 1. Invariants hold on entry.
        self._block = block.id
        for label, inv in zip(labels, invariants):
            self._oblige(
                self._subst(inv, store), path, "invariant-entry", label=label,
                statement=f"invariant {pretty_expr(inv)}", loop_head=block.id,
            )
        yield from self._drain()
        # 2. An arbitrary iteration preserves them.
        havoced = dict(store)
        for name in sorted(term.body.assigned_names()):
            havoced[name] = self.fresh(name)
        assumed = tuple(self._subst(inv, havoced) for inv in invariants)
        guard = self._subst(term.cond, havoced)
        body_path = path + assumed + (guard,)
        with self._in_loop_region(block.id, None):
            body_store, body_path_out = yield from self._run_body(
                term, (dict(havoced), body_path)
            )
        self._block = block.id
        for label, inv in zip(labels, invariants):
            self._oblige(
                self._subst(inv, body_store), body_path_out, "invariant-preserved",
                label=label,
                statement=f"invariant {pretty_expr(inv)}", loop_head=block.id,
            )
        yield from self._drain()
        # 3. Continue from an arbitrary post-loop state.
        return havoced, path + assumed + (ast.Not(guard),)


class _RegionScope:
    """Context manager swapping the generator's provenance region."""

    def __init__(self, gen: VCGenerator, region: str, iteration: Optional[int]) -> None:
        self.gen = gen
        self.region = region
        self.iteration = iteration

    def __enter__(self) -> None:
        self.saved = (self.gen._region, self.gen._iteration, self.gen._block)
        self.gen._region = self.region
        self.gen._iteration = self.iteration

    def __exit__(self, *exc) -> None:
        self.gen._region, self.gen._iteration, self.gen._block = self.saved


# ---------------------------------------------------------------------------
# Store plumbing
# ---------------------------------------------------------------------------


def _subst_expr(expr: ast.Expr, store: Store) -> ast.Expr:
    def replace(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.Var):
            return store.get(node.name, node)
        if isinstance(node, ast.Hat):
            return store.get(ast.hat_name(node.base, node.version), node)
        if isinstance(node, ast.Index):
            # List bases are input symbols; only the index is state-dependent.
            return ast.Index(node.base, _subst_expr(node.index, store))
        if isinstance(node, ast.ForAll):
            raise VCGenError(f"cannot substitute into {node!r}")
        return None  # generic bottom-up rebuild

    return map_expr(expr, replace)


def _merge_stores(cond: ast.Expr, store_t: Store, store_f: Store) -> Store:
    merged: Store = {}
    for name in set(store_t) | set(store_f):
        then = store_t.get(name, ast.Var(name))
        orelse = store_f.get(name, ast.Var(name))
        if then == orelse:
            merged[name] = then
        else:
            merged[name] = simplify(ast.Ternary(cond, then, orelse))
    return merged
