"""Symbolic execution of target programs into proof obligations.

The executor runs the program's CFG block by block
(:class:`~repro.ir.CFGWalker`): it maintains a *store* mapping each
variable (including hat variables and ``v_eps``) to a symbolic
expression over input symbols, and a *path condition*.  ``havoc``
introduces fresh symbols (``eta#3``).  At a branch both arms execute
from copies of the store and reconverge at the CFG's join block, where
the stores are merged with ternaries — so the number of obligations
stays linear in program size.

Loops are per-loop sub-CFGs (:class:`~repro.ir.cfg.LoopHeader`) and
come in two flavours:

* **unroll** — the body sub-CFG is executed up to a budget; a final
  obligation demands the guard is provably false when the budget runs
  out, so a successful verification is a *complete* proof for the given
  concrete loop bounds (not a bounded approximation).
* **invariant** — the classic Hoare treatment: establish invariants on
  entry, havoc the variables the body sub-CFG assigns, assume
  invariants ∧ guard, check the body re-establishes the invariants,
  continue under invariants ∧ ¬guard.  Invariants come from program
  annotations (``while (e) invariant I; {...}``) or from Houdini.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.simplify import simplify
from repro.ir import CFGWalker, ast_to_cfg, map_expr
from repro.ir.cfg import CFG, Block, Branch, LoopHeader
from repro.lang import ast
from repro.lang.pretty import pretty_expr

Store = Dict[str, ast.Expr]

#: The walker state: the symbolic store and the path condition.
State = Tuple[Store, Tuple[ast.Expr, ...]]


class VCGenError(ValueError):
    """Raised when a program cannot be symbolically executed."""


@dataclass(frozen=True)
class Obligation:
    """One proof obligation: ``path ⊨ goal``.

    ``tag`` distinguishes obligation species ("assert", "unroll",
    "invariant-entry", "invariant-preserved") and ``label`` carries the
    invariant index for Houdini's counterexample-guided pruning.
    """

    goal: ast.Expr
    path: Tuple[ast.Expr, ...]
    tag: str
    label: Optional[object] = None

    def describe(self) -> str:
        return f"[{self.tag}] {pretty_expr(self.goal)}"


@dataclass
class VCGenerator(CFGWalker):
    """Symbolically executes one program, block by block."""

    unroll_limit: int = 64
    use_invariants: bool = False
    extra_invariants: Tuple[ast.Expr, ...] = ()
    obligations: List[Obligation] = field(default_factory=list)
    _fresh: int = 0

    # -- public API ------------------------------------------------------------

    def run(self, program: Union[ast.Command, CFG], store: Optional[Store] = None) -> State:
        """Execute ``program`` (a command or a prebuilt CFG) from
        ``store`` (default: every variable maps to itself, i.e. fully
        symbolic inputs).  Returns the final store and path; obligations
        accumulate on the generator."""
        cfg = program if isinstance(program, CFG) else ast_to_cfg(program)
        return self.run_region(cfg, cfg.entry, None, (dict(store or {}), ()))

    # -- helpers ------------------------------------------------------------------

    def fresh(self, base: str) -> ast.Var:
        self._fresh += 1
        return ast.Var(f"{base}#{self._fresh}")

    def _subst(self, expr: ast.Expr, store: Store) -> ast.Expr:
        return simplify(_subst_expr(expr, store))

    def _oblige(self, goal: ast.Expr, path: Tuple[ast.Expr, ...], tag: str, label=None) -> None:
        goal = simplify(goal)
        if goal == ast.TRUE:
            return
        self.obligations.append(Obligation(goal, path, tag, label))

    # -- straight-line statements --------------------------------------------------

    def visit_assign(self, stmt: ast.Assign, state: State) -> State:
        store, path = state
        store = dict(store)
        store[stmt.name] = self._subst(stmt.expr, store)
        return store, path

    def visit_havoc(self, stmt: ast.Havoc, state: State) -> State:
        store, path = state
        store = dict(store)
        store[stmt.name] = self.fresh(stmt.name)
        return store, path

    def visit_assert_(self, stmt: ast.Assert, state: State) -> State:
        store, path = state
        self._oblige(self._subst(stmt.expr, store), path, "assert")
        return state

    def visit_assume(self, stmt: ast.Assume, state: State) -> State:
        store, path = state
        fact = self._subst(stmt.expr, store)
        if fact != ast.TRUE:
            path = path + (fact,)
        return store, path

    def visit_return_(self, stmt: ast.Return, state: State) -> State:
        return state

    def visit_skip(self, stmt: ast.Skip, state: State) -> State:
        return state

    def visit_sample(self, stmt: ast.Sample, state: State) -> State:
        raise VCGenError(
            "sampling command reached the verifier — lower with "
            "repro.target.transform first"
        )

    def generic_visit(self, stmt: ast.Command, *args):
        raise VCGenError(f"cannot execute {stmt!r}")

    # -- branches: merge stores at the join node -----------------------------------

    def on_branch(self, cfg: CFG, block: Block, term: Branch, join: int, state: State) -> State:
        store, path = state
        cond = self._subst(term.cond, store)
        if cond == ast.TRUE:
            return self.run_region(cfg, term.then, join, state)
        if cond == ast.FALSE:
            if term.orelse == join:
                return state
            return self.run_region(cfg, term.orelse, join, state)
        base_t = path + (cond,)
        base_f = path + (ast.Not(cond),)
        store_t, path_t = self.run_region(cfg, term.then, join, (dict(store), base_t))
        if term.orelse == join:
            store_f, path_f = dict(store), base_f
        else:
            store_f, path_f = self.run_region(cfg, term.orelse, join, (dict(store), base_f))
        # Facts learned inside a branch (assumes, loop-invariant
        # assumptions) survive the merge as guarded implications.
        merged_path = path
        for fact in path_t[len(base_t):]:
            merged_path = merged_path + (ast.BinOp("||", ast.Not(cond), fact),)
        for fact in path_f[len(base_f):]:
            merged_path = merged_path + (ast.BinOp("||", cond, fact),)
        return _merge_stores(cond, store_t, store_f), merged_path

    # -- loops: one sub-CFG per loop ------------------------------------------------

    def on_loop(self, cfg: CFG, block: Block, term: LoopHeader, state: State) -> State:
        store, path = state
        if self.use_invariants and (term.invariants or self.extra_invariants):
            return self._exec_loop_invariant(term, store, path)
        return self._exec_loop_unroll(term, store, path, self.unroll_limit)

    def _run_body(self, term: LoopHeader, state: State) -> State:
        body = term.body
        return self.run_region(body, body.entry, None, state)

    def _exec_loop_unroll(self, term: LoopHeader, store: Store, path, budget: int) -> State:
        guard = self._subst(term.cond, store)
        if guard == ast.FALSE:
            return store, path
        if budget == 0:
            # Completeness obligation: the loop must have terminated by
            # now; otherwise verification legitimately fails.
            self._oblige(ast.Not(guard), path, "unroll")
            if guard != ast.TRUE:
                path = path + (ast.Not(guard),)
            return store, path
        base = path if guard == ast.TRUE else path + (guard,)
        body_store, body_path = self._run_body(term, (dict(store), base))
        rest_store, rest_path = self._exec_loop_unroll(term, body_store, body_path, budget - 1)
        if guard == ast.TRUE:
            return rest_store, rest_path
        merged = _merge_stores(guard, rest_store, store)
        merged_path = path
        for fact in rest_path[len(base):]:
            merged_path = merged_path + (ast.BinOp("||", ast.Not(guard), fact),)
        exit_guard = self._subst(term.cond, merged)
        if exit_guard != ast.FALSE:
            merged_path = merged_path + (ast.Not(exit_guard),)
        return merged, merged_path

    def _exec_loop_invariant(self, term: LoopHeader, store: Store, path) -> State:
        own = tuple(term.invariants)
        invariants = own + tuple(self.extra_invariants)
        # Labels distinguish program-annotated invariants from injected
        # candidates so Houdini prunes only its own.
        labels = [("own", k) for k in range(len(own))] + [
            ("extra", k) for k in range(len(self.extra_invariants))
        ]
        # 1. Invariants hold on entry.
        for label, inv in zip(labels, invariants):
            self._oblige(self._subst(inv, store), path, "invariant-entry", label=label)
        # 2. An arbitrary iteration preserves them.
        havoced = dict(store)
        for name in sorted(term.body.assigned_names()):
            havoced[name] = self.fresh(name)
        assumed = tuple(self._subst(inv, havoced) for inv in invariants)
        guard = self._subst(term.cond, havoced)
        body_path = path + assumed + (guard,)
        body_store, body_path_out = self._run_body(term, (dict(havoced), body_path))
        for label, inv in zip(labels, invariants):
            self._oblige(self._subst(inv, body_store), body_path_out, "invariant-preserved", label=label)
        # 3. Continue from an arbitrary post-loop state.
        return havoced, path + assumed + (ast.Not(guard),)


# ---------------------------------------------------------------------------
# Store plumbing
# ---------------------------------------------------------------------------


def _subst_expr(expr: ast.Expr, store: Store) -> ast.Expr:
    def replace(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.Var):
            return store.get(node.name, node)
        if isinstance(node, ast.Hat):
            return store.get(ast.hat_name(node.base, node.version), node)
        if isinstance(node, ast.Index):
            # List bases are input symbols; only the index is state-dependent.
            return ast.Index(node.base, _subst_expr(node.index, store))
        if isinstance(node, ast.ForAll):
            raise VCGenError(f"cannot substitute into {node!r}")
        return None  # generic bottom-up rebuild

    return map_expr(expr, replace)


def _merge_stores(cond: ast.Expr, store_t: Store, store_f: Store) -> Store:
    merged: Store = {}
    for name in set(store_t) | set(store_f):
        then = store_t.get(name, ast.Var(name))
        orelse = store_f.get(name, ast.Var(name))
        if then == orelse:
            merged[name] = then
        else:
            merged[name] = simplify(ast.Ternary(cond, then, orelse))
    return merged
