"""Symbolic execution of target programs into proof obligations.

The executor maintains a *store* mapping each variable (including hat
variables and ``v_eps``) to a symbolic expression over input symbols,
and a *path condition*.  ``havoc`` introduces fresh symbols (``eta#3``).
Branches execute both sides and merge stores with ternaries, so the
number of obligations stays linear in program size.

Loops come in two flavours:

* **unroll** — bodies are expanded up to a budget; a final obligation
  demands the guard is provably false when the budget runs out, so a
  successful verification is a *complete* proof for the given concrete
  loop bounds (not a bounded approximation).
* **invariant** — the classic Hoare treatment: establish invariants on
  entry, havoc the modified variables, assume invariants ∧ guard, check
  the body re-establishes the invariants, continue under invariants ∧
  ¬guard.  Invariants come from program annotations
  (``while (e) invariant I; {...}``) or from Houdini.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.simplify import simplify
from repro.lang import ast
from repro.lang.pretty import pretty_expr

Store = Dict[str, ast.Expr]


class VCGenError(ValueError):
    """Raised when a program cannot be symbolically executed."""


@dataclass(frozen=True)
class Obligation:
    """One proof obligation: ``path ⊨ goal``.

    ``tag`` distinguishes obligation species ("assert", "unroll",
    "invariant-entry", "invariant-preserved") and ``label`` carries the
    invariant index for Houdini's counterexample-guided pruning.
    """

    goal: ast.Expr
    path: Tuple[ast.Expr, ...]
    tag: str
    label: Optional[object] = None

    def describe(self) -> str:
        return f"[{self.tag}] {pretty_expr(self.goal)}"


@dataclass
class VCGenerator:
    """Symbolically executes one command tree."""

    unroll_limit: int = 64
    use_invariants: bool = False
    extra_invariants: Tuple[ast.Expr, ...] = ()
    obligations: List[Obligation] = field(default_factory=list)
    _fresh: int = 0

    # -- public API ------------------------------------------------------------

    def run(self, cmd: ast.Command, store: Optional[Store] = None) -> Tuple[Store, Tuple[ast.Expr, ...]]:
        """Execute ``cmd`` from ``store`` (default: every variable maps to
        itself, i.e. fully symbolic inputs).  Returns the final store and
        path; obligations accumulate on the generator."""
        store = dict(store or {})
        return self._exec(cmd, store, ())

    # -- helpers ------------------------------------------------------------------

    def fresh(self, base: str) -> ast.Var:
        self._fresh += 1
        return ast.Var(f"{base}#{self._fresh}")

    def _subst(self, expr: ast.Expr, store: Store) -> ast.Expr:
        return simplify(_subst_expr(expr, store))

    def _oblige(self, goal: ast.Expr, path: Tuple[ast.Expr, ...], tag: str, label=None) -> None:
        goal = simplify(goal)
        if goal == ast.TRUE:
            return
        self.obligations.append(Obligation(goal, path, tag, label))

    # -- execution -----------------------------------------------------------------

    def _exec(self, cmd: ast.Command, store: Store, path: Tuple[ast.Expr, ...]):
        if isinstance(cmd, ast.Skip):
            return store, path
        if isinstance(cmd, ast.Seq):
            for part in cmd.commands:
                store, path = self._exec(part, store, path)
            return store, path
        if isinstance(cmd, ast.Assign):
            store = dict(store)
            store[cmd.name] = self._subst(cmd.expr, store)
            return store, path
        if isinstance(cmd, ast.Havoc):
            store = dict(store)
            store[cmd.name] = self.fresh(cmd.name)
            return store, path
        if isinstance(cmd, ast.Assert):
            self._oblige(self._subst(cmd.expr, store), path, "assert")
            return store, path
        if isinstance(cmd, ast.Assume):
            fact = self._subst(cmd.expr, store)
            if fact != ast.TRUE:
                path = path + (fact,)
            return store, path
        if isinstance(cmd, ast.If):
            return self._exec_if(cmd, store, path)
        if isinstance(cmd, ast.While):
            if self.use_invariants and (cmd.invariants or self.extra_invariants):
                return self._exec_loop_invariant(cmd, store, path)
            return self._exec_loop_unroll(cmd, store, path, self.unroll_limit)
        if isinstance(cmd, ast.Return):
            return store, path
        if isinstance(cmd, ast.Sample):
            raise VCGenError(
                "sampling command reached the verifier — lower with "
                "repro.target.transform first"
            )
        raise VCGenError(f"cannot execute {cmd!r}")

    def _exec_if(self, cmd: ast.If, store: Store, path: Tuple[ast.Expr, ...]):
        cond = self._subst(cmd.cond, store)
        if cond == ast.TRUE:
            return self._exec(cmd.then, store, path)
        if cond == ast.FALSE:
            return self._exec(cmd.orelse, store, path)
        base_t = path + (cond,)
        base_f = path + (ast.Not(cond),)
        store_t, path_t = self._exec(cmd.then, dict(store), base_t)
        store_f, path_f = self._exec(cmd.orelse, dict(store), base_f)
        # Facts learned inside a branch (assumes, loop-invariant
        # assumptions) survive the merge as guarded implications.
        merged_path = path
        for fact in path_t[len(base_t):]:
            merged_path = merged_path + (ast.BinOp("||", ast.Not(cond), fact),)
        for fact in path_f[len(base_f):]:
            merged_path = merged_path + (ast.BinOp("||", cond, fact),)
        return _merge_stores(cond, store_t, store_f), merged_path

    def _exec_loop_unroll(self, cmd: ast.While, store: Store, path, budget: int):
        guard = self._subst(cmd.cond, store)
        if guard == ast.FALSE:
            return store, path
        if budget == 0:
            # Completeness obligation: the loop must have terminated by
            # now; otherwise verification legitimately fails.
            self._oblige(ast.Not(guard), path, "unroll")
            if guard != ast.TRUE:
                path = path + (ast.Not(guard),)
            return store, path
        base = path if guard == ast.TRUE else path + (guard,)
        body_store, body_path = self._exec(cmd.body, dict(store), base)
        rest_store, rest_path = self._exec_loop_unroll(cmd, body_store, body_path, budget - 1)
        if guard == ast.TRUE:
            return rest_store, rest_path
        merged = _merge_stores(guard, rest_store, store)
        merged_path = path
        for fact in rest_path[len(base):]:
            merged_path = merged_path + (ast.BinOp("||", ast.Not(guard), fact),)
        exit_guard = self._subst(cmd.cond, merged)
        if exit_guard != ast.FALSE:
            merged_path = merged_path + (ast.Not(exit_guard),)
        return merged, merged_path

    def _exec_loop_invariant(self, cmd: ast.While, store: Store, path):
        own = tuple(cmd.invariants)
        invariants = own + tuple(self.extra_invariants)
        # Labels distinguish program-annotated invariants from injected
        # candidates so Houdini prunes only its own.
        labels = [("own", k) for k in range(len(own))] + [
            ("extra", k) for k in range(len(self.extra_invariants))
        ]
        # 1. Invariants hold on entry.
        for label, inv in zip(labels, invariants):
            self._oblige(self._subst(inv, store), path, "invariant-entry", label=label)
        # 2. An arbitrary iteration preserves them.
        havoced = dict(store)
        for name in sorted(ast.assigned_vars(cmd.body)):
            havoced[name] = self.fresh(name)
        assumed = tuple(self._subst(inv, havoced) for inv in invariants)
        guard = self._subst(cmd.cond, havoced)
        body_path = path + assumed + (guard,)
        body_store, body_path_out = self._exec(cmd.body, dict(havoced), body_path)
        for label, inv in zip(labels, invariants):
            self._oblige(self._subst(inv, body_store), body_path_out, "invariant-preserved", label=label)
        # 3. Continue from an arbitrary post-loop state.
        return havoced, path + assumed + (ast.Not(guard),)


# ---------------------------------------------------------------------------
# Store plumbing
# ---------------------------------------------------------------------------


def _subst_expr(expr: ast.Expr, store: Store) -> ast.Expr:
    if isinstance(expr, ast.Var):
        return store.get(expr.name, expr)
    if isinstance(expr, ast.Hat):
        return store.get(ast.hat_name(expr.base, expr.version), expr)
    if isinstance(expr, (ast.Real, ast.BoolLit)):
        return expr
    if isinstance(expr, ast.Neg):
        return ast.Neg(_subst_expr(expr.operand, store))
    if isinstance(expr, ast.Not):
        return ast.Not(_subst_expr(expr.operand, store))
    if isinstance(expr, ast.Abs):
        return ast.Abs(_subst_expr(expr.operand, store))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, _subst_expr(expr.left, store), _subst_expr(expr.right, store))
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            _subst_expr(expr.cond, store),
            _subst_expr(expr.then, store),
            _subst_expr(expr.orelse, store),
        )
    if isinstance(expr, ast.Index):
        # List bases are input symbols; only the index is state-dependent.
        return ast.Index(expr.base, _subst_expr(expr.index, store))
    if isinstance(expr, ast.Cons):
        return ast.Cons(_subst_expr(expr.head, store), _subst_expr(expr.tail, store))
    raise VCGenError(f"cannot substitute into {expr!r}")


def _merge_stores(cond: ast.Expr, store_t: Store, store_f: Store) -> Store:
    merged: Store = {}
    for name in set(store_t) | set(store_f):
        then = store_t.get(name, ast.Var(name))
        orelse = store_f.get(name, ast.Var(name))
        if then == orelse:
            merged[name] = then
        else:
            merged[name] = simplify(ast.Ternary(cond, then, orelse))
    return merged
