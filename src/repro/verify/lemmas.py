"""Instantiation lemmas for monomial (nonlinear) atoms.

The solver treats composite monomials like ``count·eps/N`` as opaque
variables, which loses the multiplication facts the general-ε proofs
need (the paper's CPAChecker hits the same wall; Section 6.1 resorts to
rewrites, fixed ε and manual invariants).  This module recovers the
needed fragment with finitely many *lemma instances* added as premises:

* **sign lemmas** — a monomial whose factors all have known sign under
  the query's assumptions gets the corresponding sign fact, e.g.
  ``eps > 0 ∧ N ≥ 1 ⊨ eps/N > 0``;
* **monotonicity lemmas** — for a monomial ``x·R`` and any other
  variable ``y`` in the query, the guarded instance
  ``(x ≤ y ∧ R ≥ 0) ⇒ x·R ≤ y·R`` (and the symmetric direction), where
  ``y·R`` re-normalises and may *cancel* to something linear — this is
  exactly how ``count ≤ N`` turns ``count·(eps/N) ≤ N·(eps/N) = eps``.

All lemmas are valid real-arithmetic facts, so adding them preserves
soundness unconditionally; they only improve completeness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.lang import ast
from repro.solver.encode import Encoder
from repro.solver.monomials import Monomial


def _atom_expr(name: str, encoder: Encoder) -> ast.Expr:
    """Reconstruct an AST expression denoting one atom name."""
    if name in encoder.opaque:
        return encoder.opaque[name]
    if "^" in name and "[" not in name:
        base, _, version = name.rpartition("^")
        if version in ast.VERSIONS:
            return ast.Hat(base, version)
    if "[" in name and name.endswith("]"):
        base, _, idx = name[:-1].partition("[")
        index = ast.Real(int(idx))
        if "^" in base:
            stem, _, version = base.rpartition("^")
            return ast.Index(ast.Hat(stem, version), index)
        return ast.Index(ast.Var(base), index)
    return ast.Var(name)


def _monomial_expr(mono: Monomial, encoder: Encoder) -> ast.Expr:
    """An AST term that re-encodes to exactly this monomial."""
    if mono.is_unit():
        return ast.ONE
    expr: ast.Expr = None
    for factor in mono.numerator:
        part = _atom_expr(factor, encoder)
        expr = part if expr is None else ast.BinOp("*", expr, part)
    if expr is None:
        expr = ast.ONE
    for factor in mono.denominator:
        expr = ast.BinOp("/", expr, _atom_expr(factor, encoder))
    return expr


def _implies(premise: ast.Expr, conclusion: ast.Expr) -> ast.Expr:
    return ast.BinOp("||", ast.Not(premise), conclusion)


# ---------------------------------------------------------------------------
# Sign derivation
# ---------------------------------------------------------------------------


def _known_positive(name: str, assumptions: Sequence[ast.Expr]) -> bool:
    """Syntactic scan: do the assumptions force ``name > 0``?"""
    var = ast.Var(name)
    for fact in assumptions:
        if not isinstance(fact, ast.BinOp):
            continue
        left, op, right = fact.left, fact.op, fact.right
        if left == var and isinstance(right, ast.Real):
            if op == ">" and right.value >= 0:
                return True
            if op == ">=" and right.value > 0:
                return True
        if right == var and isinstance(left, ast.Real):
            if op == "<" and left.value >= 0:
                return True
            if op == "<=" and left.value < 0:
                continue
            if op == "<=" and left.value > 0:
                return True
    return False


def monomial_closure(encoder: Encoder) -> Dict[str, Monomial]:
    """Registered monomials plus every *rest* reachable by removing
    numerator factors — the pivot rests the monotonicity lemmas guard on
    (e.g. ``eps/N`` inside ``count·eps/N``) need sign facts too."""
    closure: Dict[str, Monomial] = dict(encoder.monomials)
    frontier = list(encoder.monomials.values())
    while frontier:
        mono = frontier.pop()
        for factor in set(mono.numerator):
            rest = mono.divides_out(factor)
            if rest is None or rest.is_unit():
                continue
            name = rest.name()
            if name not in closure:
                closure[name] = rest
                frontier.append(rest)
    return closure


def sign_lemmas(encoder: Encoder, assumptions: Sequence[ast.Expr]) -> List[ast.Expr]:
    """Unconditional sign facts for monomials with all-positive factors."""
    lemmas: List[ast.Expr] = []
    for name, mono in monomial_closure(encoder).items():
        if mono.is_single_atom() is not None:
            continue
        factors = list(mono.numerator) + list(mono.denominator)
        if factors and all(_known_positive(f, assumptions) for f in factors):
            lemmas.append(ast.BinOp(">", _monomial_expr(mono, encoder), ast.ZERO))
    return lemmas


# ---------------------------------------------------------------------------
# Monotonicity instantiation
# ---------------------------------------------------------------------------


def monotonicity_lemmas(
    encoder: Encoder,
    candidate_vars: Iterable[str],
) -> List[ast.Expr]:
    """Guarded product-monotonicity instances.

    For each composite monomial ``M = x·R`` (``x`` a plain variable) and
    each candidate variable ``y``::

        (x <= y && R >= 0)  ⇒  M <= y·R
        (y <= x && R >= 0)  ⇒  y·R <= M
        (x >= 0 && R >= 0)  ⇒  M >= 0

    ``y·R`` is built as an AST product, so it re-normalises inside the
    encoder — when it cancels (``N·(eps/N) = eps``) the lemma directly
    links the opaque monomial to a linear term.
    """
    candidates = sorted(set(candidate_vars))
    constant_bounds = [ast.Real(c) for c in (-2, -1, 0, 1, 2)]
    lemmas: List[ast.Expr] = []
    seen: Set[str] = set()
    for name, mono in encoder.monomials.items():
        if name in seen:
            continue
        seen.add(name)
        mono_expr = _monomial_expr(mono, encoder)
        for x in set(mono.numerator):
            rest = mono.divides_out(x)
            rest_expr = _monomial_expr(rest, encoder)
            x_expr = _atom_expr(x, encoder)
            rest_nonneg = ast.BinOp(">=", rest_expr, ast.ZERO)
            lemmas.append(
                _implies(
                    ast.BinOp("&&", ast.BinOp(">=", x_expr, ast.ZERO), rest_nonneg),
                    ast.BinOp(">=", mono_expr, ast.ZERO),
                )
            )
            # Constant pivots: (x <= c ∧ R >= 0) ⇒ x·R <= c·R.  The scaled
            # side folds into the coefficient of R, so it is linear; this
            # is what bounds |q̂°[i]|·eps/(3N) by eps/(3N) from Ψ's
            # sensitivity bound — the fact the paper obtains by rewriting
            # the program (Section 6.2.2).
            for c in constant_bounds:
                scaled = ast.BinOp("*", c, rest_expr)
                lemmas.append(
                    _implies(
                        ast.BinOp("&&", ast.BinOp("<=", x_expr, c), rest_nonneg),
                        ast.BinOp("<=", mono_expr, scaled),
                    )
                )
                lemmas.append(
                    _implies(
                        ast.BinOp("&&", ast.BinOp("<=", c, x_expr), rest_nonneg),
                        ast.BinOp("<=", scaled, mono_expr),
                    )
                )
            for y in candidates:
                if y == x or "[" in y or "<" in y:
                    continue
                y_expr = _atom_expr(y, encoder)
                swapped = mono.replace_factor(x, y)
                swapped_expr = _monomial_expr(swapped, encoder)
                lemmas.append(
                    _implies(
                        ast.BinOp("&&", ast.BinOp("<=", x_expr, y_expr), rest_nonneg),
                        ast.BinOp("<=", mono_expr, swapped_expr),
                    )
                )
                lemmas.append(
                    _implies(
                        ast.BinOp("&&", ast.BinOp("<=", y_expr, x_expr), rest_nonneg),
                        ast.BinOp("<=", swapped_expr, mono_expr),
                    )
                )
    return lemmas


def relevant_vars(exprs: Iterable[ast.Expr]) -> Set[str]:
    """Plain variable names occurring in a set of expressions."""
    names: Set[str] = set()
    for expr in exprs:
        names |= set(ast.free_vars(expr))
    return {n for n in names if "#" not in n or True}
