"""Verification of target programs (the paper's CPAChecker role).

The target language is deterministic code plus ``havoc`` and ``assert``;
verifying that no assertion can fail establishes ε-differential privacy
of the source program (Theorem 2).  This package provides:

* :mod:`repro.verify.vcgen` — a symbolic executor generating proof
  obligations, with two loop treatments: full unrolling under concrete
  loop bounds (BMC / the paper's "fix ε" regime) and invariant-based
  Hoare reasoning (the paper's manually-supplied-invariant regime).
* :mod:`repro.verify.lemmas` — instantiation lemmas relating monomial
  atoms (sign propagation and multiplication monotonicity), standing in
  for the nonlinear reasoning the paper obtains by rewriting programs.
* :mod:`repro.verify.houdini` — conjunctive invariant inference over a
  template pool, with optional loop peeling.
* :mod:`repro.verify.verifier` — the façade: configuration, obligation
  discharge through the SMT solver, counterexample extraction.
"""

from repro.verify.verifier import (
    VerificationConfig,
    VerificationOutcome,
    ObligationFailure,
    verify_target,
)
from repro.verify.vcgen import Obligation, VCGenerator
from repro.verify.houdini import HoudiniResult, infer_invariants

__all__ = [
    "VerificationConfig",
    "VerificationOutcome",
    "ObligationFailure",
    "verify_target",
    "Obligation",
    "VCGenerator",
    "HoudiniResult",
    "infer_invariants",
]
