"""Verification of target programs (the paper's CPAChecker role).

The target language is deterministic code plus ``havoc`` and ``assert``;
verifying that no assertion can fail establishes ε-differential privacy
of the source program (Theorem 2).  This package provides:

* :mod:`repro.verify.vcgen` — a symbolic executor *streaming* proof
  obligations (stable content-derived ids, CFG provenance), with two
  loop treatments: full unrolling under concrete loop bounds (BMC / the
  paper's "fix ε" regime) and invariant-based Hoare reasoning (the
  paper's manually-supplied-invariant regime).
* :mod:`repro.verify.discharge` — the first-class discharge API:
  :class:`DischargePlan` partitions the obligation stream into
  independent, addressable work units; pluggable
  :class:`DischargeBackend`\\ s (serial / threaded / one-shot /
  cache-wrapped) schedule them with a deterministic per-unit merge; a
  typed :class:`DischargeEvent` stream reports progress.
* :mod:`repro.verify.lemmas` — instantiation lemmas relating monomial
  atoms (sign propagation and multiplication monotonicity), standing in
  for the nonlinear reasoning the paper obtains by rewriting programs.
* :mod:`repro.verify.houdini` — conjunctive invariant inference over a
  template pool, with optional loop peeling.
* :mod:`repro.verify.verifier` — the façade: configuration, obligation
  discharge through the SMT solver, counterexample extraction.
"""

from repro.verify.verifier import (
    VerificationConfig,
    VerificationOutcome,
    ObligationFailure,
    iter_obligations,
    verify_target,
)
from repro.verify.vcgen import Obligation, Provenance, VCGenerator
from repro.verify.discharge import (
    CachedBackend,
    DischargeBackend,
    DischargeEvent,
    DischargePlan,
    DischargeUnit,
    OneShotBackend,
    SerialBackend,
    ThreadedBackend,
    event_kind,
    resolve_backend,
)
from repro.verify.houdini import HoudiniResult, infer_invariants

__all__ = [
    "VerificationConfig",
    "VerificationOutcome",
    "ObligationFailure",
    "iter_obligations",
    "verify_target",
    "Obligation",
    "Provenance",
    "VCGenerator",
    "CachedBackend",
    "DischargeBackend",
    "DischargeEvent",
    "DischargePlan",
    "DischargeUnit",
    "OneShotBackend",
    "SerialBackend",
    "ThreadedBackend",
    "event_kind",
    "resolve_backend",
    "HoudiniResult",
    "infer_invariants",
]
