"""First-class obligation discharge: plans, backends, event stream.

This module is the public API the verification layer is built around:

* :class:`DischargePlan` partitions an obligation *stream* into
  independent :class:`DischargeUnit` work units — obligations sharing a
  path-condition prefix, which symbolic execution emits along one CFG
  region (a branch merge resets the chain and starts a new unit).
  Units are produced incrementally (:meth:`DischargePlan.stream_units`),
  so discharge of unit *k* can start while the symbolic executor is
  still generating unit *k+1*.
* :class:`DischargeEngine` does the solving for one unit: the unit's
  shared premises are asserted once into a
  :class:`~repro.solver.context.SolverContext`, goals are discharged
  conjoined with model-guided refinement, and refutations come back
  with the countermodel from the refuting solve.
* **Backends** schedule units: :class:`SerialBackend` in plan order,
  :class:`ThreadedBackend` on a worker pool, :class:`OneShotBackend`
  with a fresh solver per query (the non-incremental strategy), and
  :class:`CachedBackend` wrapping any of them with a shared
  :class:`~repro.solver.context.QueryCache`.  All backends merge
  per-unit results and counters **deterministically, keyed by unit
  id** — verdicts, obligation ids and solve counts are identical for
  any backend and job count (the shared cache is single-flight, so a
  query concurrently in flight is solved exactly once).
* :class:`DischargeEvent` is the typed progress stream — unit
  started/finished, obligation discharged/refuted, early exit — that
  the pipeline uses for per-stage progress and
  early-exit-on-first-refutation, and the CLI renders under
  ``--progress``.

Everything here is backend-agnostic over a duck-typed *engine* (see
:class:`DischargeEngine`; :class:`repro.verify.verifier.ObligationChecker`
is the configured engine plus the legacy ``check``/``check_all``
surface).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from fractions import Fraction
from threading import Lock
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import faults as faults_mod
from repro.core import preconditions
from repro.core.simplify import simplify
from repro.lang import ast
from repro.solver import formula as F
from repro.solver.context import (
    CacheEntry,
    ContextStats,
    Model,
    QueryCache,
    SolverContext,
    oracle_digest,
)
from repro.solver.encode import EncodeError, Encoder
from repro.solver.interface import ValidityChecker
from repro.solver.profile import SolverProfile
from repro.verify import lemmas as lemma_mod
from repro.verify.store import ObligationStore, premise_fingerprint
from repro.verify.vcgen import Obligation

#: Environment variable consulted when a configuration does not pin a
#: backend: it overrides the default discharge parallelism (the CI
#: ``verify-jobs-smoke`` leg runs the whole suite under ``2``).
JOBS_ENV_VAR = "REPRO_VERIFY_JOBS"

#: Environment variable naming the default backend when a configuration
#: pins neither a backend nor a job count: the CI
#: ``process-backend-smoke`` leg sets it to ``process`` to run the whole
#: suite through worker processes.
BACKEND_ENV_VAR = "REPRO_VERIFY_BACKEND"

#: Per-unit worker solve deadline (seconds) for the process backend
#: when a configuration does not pin a backend instance.  A unit whose
#: worker misses the deadline is resubmitted once, then re-solved
#: through the serial engine.  Unset = no deadline.
DEADLINE_ENV_VAR = "REPRO_UNIT_DEADLINE"


class DischargeCancelled(Exception):
    """A discharge run was cancelled cooperatively before completing.

    Raised at unit/chunk boundaries when the engine's ``cancel_event``
    is set (per-request timeouts and server drain in ``repro serve``),
    and used by backends to unwind cleanly: pushed solver scopes are
    popped (``SolverContext.check_entailment`` pops in a ``finally``),
    in-flight single-flight cache acquisitions are released
    (``QueryCache.cancel``), and queued-but-unstarted work is dropped —
    no waiter deadlocks, no leaked scopes.
    """


class DischargeWorkerError(RuntimeError):
    """A discharge worker failed with a non-recoverable exception.

    Raised by the threaded and process backends when a worker's
    exception is neither cancellation nor a supervised fault (worker
    death, deadline, injected failure — those recover serially).  Names
    the unit and its obligation oids so the failure is attributable
    without digging through a pool traceback.
    """

    def __init__(self, unit: "DischargeUnit", cause: BaseException) -> None:
        self.unit = unit.uid
        self.oids = unit.oids()
        super().__init__(
            f"discharge worker failed on unit {self.unit}"
            f" (obligations: {', '.join(self.oids)}):"
            f" {type(cause).__name__}: {cause}"
        )


@dataclass
class ObligationFailure:
    """A refuted obligation, with a counterexample model when available."""

    obligation: Obligation
    arith_model: Optional[Dict[str, Fraction]] = None
    bool_model: Optional[Dict[str, bool]] = None

    def describe(self) -> str:
        text = self.obligation.describe()
        if self.arith_model:
            inputs = ", ".join(
                f"{k}={v}" for k, v in sorted(self.arith_model.items()) if not k.startswith("%")
            )
            text += f"  counterexample: {inputs}"
        return text


# ---------------------------------------------------------------------------
# The typed event stream
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanProgress:
    """A new unit was carved off the obligation stream."""

    unit: str
    obligations: int


@dataclass(frozen=True)
class UnitStarted:
    unit: str
    obligations: int


@dataclass(frozen=True)
class ObligationDischarged:
    """One obligation proved (``cached`` when the whole answer came from
    the query cache; None when proved as part of a conjoined solve)."""

    unit: str
    oid: str
    tag: str
    cached: Optional[bool] = None


@dataclass(frozen=True)
class ObligationRefuted:
    unit: str
    oid: str
    tag: str
    counterexample: Optional[str] = None


@dataclass(frozen=True)
class UnitFinished:
    """A unit's discharge completed, with its solver accounting."""

    unit: str
    seconds: float
    stats: Dict[str, int]


@dataclass(frozen=True)
class EarlyExit:
    """Discharge stopped before exhausting the plan (``fail_fast``)."""

    unit: str
    reason: str


@dataclass(frozen=True)
class RoundFinished:
    """One Houdini pruning round finished."""

    round: int
    pruned: int
    surviving: int


DischargeEvent = Union[
    PlanProgress,
    UnitStarted,
    ObligationDischarged,
    ObligationRefuted,
    UnitFinished,
    EarlyExit,
    RoundFinished,
]

#: An event consumer; pass None to discharge silently.
EventSink = Optional[Callable[[DischargeEvent], None]]


def event_kind(event: DischargeEvent) -> str:
    """A stable kebab-case name for an event ("unit-started", ...)."""
    name = type(event).__name__
    out = [name[0].lower()]
    for ch in name[1:]:
        if ch.isupper():
            out.append("-")
            out.append(ch.lower())
        else:
            out.append(ch)
    return "".join(out)


class _LockedSink:
    """Serializes event emission from concurrent unit workers."""

    def __init__(self, sink: Callable[[DischargeEvent], None]) -> None:
        self._sink = sink
        self._lock = Lock()

    def __call__(self, event: DischargeEvent) -> None:
        with self._lock:
            self._sink(event)


# ---------------------------------------------------------------------------
# The plan: addressable work units over the obligation stream
# ---------------------------------------------------------------------------


@dataclass
class DischargeUnit:
    """Obligations sharing a path prefix — one independent work unit.

    ``base`` is the common path prefix (asserted once into the unit's
    solver context); each member carries its obligation's global stream
    index and its path *suffix* beyond the base.  ``uid`` is
    deterministic — the unit's plan index plus the CFG region of its
    first obligation — and is the key every backend merges results by.
    """

    index: int
    base: Tuple[ast.Expr, ...]
    members: List[Tuple[int, Obligation, Tuple[ast.Expr, ...]]]

    @property
    def region(self) -> str:
        provenance = self.members[0][1].provenance if self.members else None
        if provenance is None:
            return "?"
        return f"{provenance.region}/b{provenance.block}"

    @property
    def uid(self) -> str:
        return f"u{self.index:03d}@{self.region}"

    def oids(self) -> List[str]:
        return [obligation.oid for _, obligation, _ in self.members]


class DischargePlan:
    """A partition of an obligation stream into discharge units.

    The partition rule is greedy path-prefix chaining: symbolic
    execution emits obligations along straight-line segments with
    monotonically growing path conditions; each such chain becomes one
    unit whose base is its first obligation's path.  A branch merge
    resets the chain (its paths are not extensions of the previous
    base), which starts a fresh unit — so units align with CFG regions,
    and the unit count is independent of backend and job count.
    """

    def __init__(self, units: List[DischargeUnit]) -> None:
        self.units = units

    @property
    def obligations(self) -> List[Obligation]:
        return [ob for unit in self.units for _, ob, _ in unit.members]

    @classmethod
    def from_obligations(cls, obligations: Iterable[Obligation]) -> "DischargePlan":
        return cls(list(cls.stream_units(obligations)))

    @staticmethod
    def stream_units(
        obligations: Iterable[Obligation], emit: EventSink = None
    ) -> Iterator[DischargeUnit]:
        """Carve units off the stream incrementally.

        Yields each unit as soon as the next obligation proves it
        complete (or the stream ends), so consumers can discharge one
        unit while the symbolic executor is still producing the next.
        """
        current: Optional[DischargeUnit] = None
        count = 0
        for index, obligation in enumerate(obligations):
            if current is not None:
                base = current.base
                if obligation.path[: len(base)] == base:
                    current.members.append(
                        (index, obligation, obligation.path[len(base):])
                    )
                    continue
                if emit is not None:
                    emit(PlanProgress(current.uid, len(current.members)))
                yield current
            current = DischargeUnit(count, obligation.path, [(index, obligation, ())])
            count += 1
        if current is not None:
            if emit is not None:
                emit(PlanProgress(current.uid, len(current.members)))
            yield current

    def to_dict(self) -> Dict[str, object]:
        return {
            "units": [
                {
                    "uid": unit.uid,
                    "region": unit.region,
                    "base_depth": len(unit.base),
                    "obligations": unit.oids(),
                }
                for unit in self.units
            ],
            "obligations": [ob.to_dict() for ob in self.obligations],
        }


# ---------------------------------------------------------------------------
# The engine: solving one unit
# ---------------------------------------------------------------------------


class DischargeEngine:
    """Premise assembly plus per-unit discharge against the SMT solver.

    One engine is configured per verification run (Ψ, parameter
    assumptions, lemma policy, shared query cache); backends call
    :meth:`discharge_unit` (incremental strategies) or
    :meth:`check_one` (the one-shot strategy) and merge the returned
    accounting deterministically.
    """

    #: Conjoined-discharge width: batches wider than this are chunked.
    #: Bounds the case-split breadth of one solve — a refuting model
    #: still prunes across its whole chunk, while each solve stays
    #: comparable in size to a handful of individual queries.
    batch_limit: int = 8

    def __init__(
        self,
        psi: ast.Expr,
        assumptions: Sequence[ast.Expr],
        use_lemmas: bool = True,
        collect_models: bool = True,
        cache: Optional[QueryCache] = None,
        incremental: bool = True,
        jobs: int = 1,
        backend: Optional[Union[str, "DischargeBackend"]] = None,
        cancel_event: Optional[threading.Event] = None,
        store: Optional[ObligationStore] = None,
        witness: bool = False,
    ) -> None:
        self.psi = psi
        self.assumptions = [simplify(a) for a in assumptions]
        self.use_lemmas = use_lemmas
        self.collect_models = collect_models
        self.cache = cache if cache is not None else QueryCache()
        self.incremental = incremental
        self.jobs = max(1, jobs)
        self.backend_choice = backend
        #: Persistent cross-run verdict cache (None = disabled).
        self.store = store
        self._store_fingerprint: Optional[str] = None
        #: When set, discharge stops at the next unit/chunk boundary by
        #: raising :class:`DischargeCancelled` (after emitting one
        #: ``early-exit`` event).  This is the cooperative cancellation
        #: hook behind per-request timeouts and server drain.
        self.cancel_event = cancel_event
        #: Emit proof certificates for ``valid`` verdicts (repro.witness).
        self.witness = witness
        #: Certificates captured this run, keyed by obligation id.  A
        #: conjoined chunk shares one certificate object across all of
        #: its members (the proof covers the conjunction).
        self.certificates: Dict[str, object] = {}
        self.validity = ValidityChecker(cache=self.cache, witness=witness)
        self.stats = ContextStats()
        #: Work units discharged so far (all strategies).
        self.units_run = 0
        #: True when a fail-fast discharge stopped before the full plan.
        self.early_exited = False
        #: Inner-loop counters merged from every solver context this
        #: engine ran (the one-shot path accumulates directly into
        #: ``self.validity.profile``).
        self.profile = SolverProfile()
        #: Per-worker raw solve totals from the last process-backend
        #: run (pid-keyed; schedule-dependent, unlike the merged view).
        self.worker_report: Optional[Dict[str, Dict[str, int]]] = None
        #: Supervision report from the last process-backend run: pool
        #: restarts, retries and serially re-solved units.  ``None``
        #: when the run saw no incidents, so fault-free outcomes are
        #: byte-identical to builds without supervision.
        self.recovery: Optional[Dict[str, object]] = None

    @property
    def store_fingerprint(self) -> str:
        """The premise/config fingerprint store entries are keyed under."""
        if self._store_fingerprint is None:
            self._store_fingerprint = premise_fingerprint(
                self.psi, self.assumptions, self.use_lemmas
            )
        return self._store_fingerprint

    # -- cache plumbing --------------------------------------------------------

    def attach_cache(self, cache: QueryCache) -> None:
        """Swap in a shared query cache (see :class:`CachedBackend`)."""
        self.cache = cache
        self.validity.cache = cache

    # -- cooperative cancellation ----------------------------------------------

    def check_cancelled(self, unit: Optional[DischargeUnit] = None,
                        emit: EventSink = None) -> None:
        """Raise :class:`DischargeCancelled` if the cancel event is set.

        Called at every unit, member and chunk boundary, so a cancelled
        run stops within one solve of the request.  The first check to
        observe the cancellation emits a single ``early-exit`` event;
        every check marks the engine as early-exited so the outcome
        reports an honest partial verdict.
        """
        if self.cancel_event is None or not self.cancel_event.is_set():
            return
        first = not self.early_exited
        self.early_exited = True
        if first and emit is not None:
            emit(EarlyExit(unit.uid if unit is not None else "plan", "cancelled"))
        where = unit.uid if unit is not None else "plan"
        raise DischargeCancelled(f"discharge cancelled at {where}")

    # -- premise assembly ------------------------------------------------------

    def extra_premises_for(self, obligation: Obligation) -> List[ast.Expr]:
        """The per-obligation premises beyond assumptions + path:
        Ψ instances for the query's index terms, plus nonlinear lemmas."""
        queries = list(obligation.path) + [obligation.goal] + self.assumptions
        psi_premises = preconditions.instantiate(self.psi, queries)
        extra = list(psi_premises)
        if self.use_lemmas:
            premises = list(self.assumptions) + psi_premises + list(obligation.path)
            extra += self._lemmas(premises + [obligation.goal])
        return extra

    def premises_for(self, obligation: Obligation) -> List[ast.Expr]:
        premises = list(self.assumptions) + list(obligation.path)
        premises += self.extra_premises_for(obligation)
        return premises

    def _lemmas(self, exprs: Sequence[ast.Expr]) -> List[ast.Expr]:
        # Discovery pass: find all monomial atoms the query will create.
        encoder = Encoder()
        for expr in exprs:
            try:
                encoder.boolean(expr)
            except EncodeError:
                continue
        if not encoder.monomials:
            return []
        candidates = lemma_mod.relevant_vars(exprs)
        out = lemma_mod.sign_lemmas(encoder, self.assumptions)
        out += lemma_mod.monotonicity_lemmas(encoder, candidates)
        return out

    # -- one-shot discharge ----------------------------------------------------

    def check_one(self, obligation: Obligation) -> Optional[ObligationFailure]:
        """None when the obligation is valid, a failure record otherwise.

        A refuted check returns its counterexample from the same solve
        that refuted it — no second query.
        """
        valid, model = self.validity.entailment(
            obligation.goal, self.premises_for(obligation)
        )
        if valid and self.witness:
            self._record_certificate(obligation, self.validity.last_certificate)
        return self._failure(obligation, valid, model)

    # -- incremental unit discharge --------------------------------------------

    def discharge_unit(
        self,
        unit: DischargeUnit,
        results: Dict[int, ObligationFailure],
        skip: Optional[Callable[[Obligation], bool]] = None,
        on_failure: Optional[Callable[[Obligation], None]] = None,
        emit: EventSink = None,
        batch: bool = True,
        oracle: Optional[Dict[str, CacheEntry]] = None,
    ) -> Tuple[ContextStats, SolverProfile]:
        """Discharge one unit under one pushed solver context.

        The unit's shared premises (global assumptions + path base) are
        asserted once; members are then discharged conjoined (``batch``)
        or individually.  Returns the context's counters for the
        caller's deterministic merge — nothing is accumulated on shared
        state from worker threads.  ``oracle`` pre-answers queries a
        worker process already solved (the process backend's replay).
        """
        self.check_cancelled(unit, emit)
        if emit is not None:
            emit(UnitStarted(unit.uid, len(unit.members)))
        start = time.perf_counter()
        context = SolverContext(cache=self.cache, oracle=oracle, witness=self.witness)
        for premise in self.assumptions:
            context.assert_expr(premise)
        for premise in unit.base:
            context.assert_expr(premise)
        if batch and skip is None and len(unit.members) > 1:
            self._discharge_batched(context, unit, results, on_failure, emit)
        else:
            self._discharge_each(context, unit, results, skip, on_failure, emit)
        if emit is not None:
            emit(
                UnitFinished(
                    unit.uid, time.perf_counter() - start, context.stats.to_dict()
                )
            )
        return context.stats, context.profile

    def _discharge_each(self, context, unit, results, skip, on_failure, emit) -> None:
        for index, obligation, suffix in unit.members:
            self.check_cancelled(unit, emit)
            if skip is not None and skip(obligation):
                continue
            hits_before = context.stats.cache_hits
            valid, model = context.check_entailment(
                obligation.goal,
                list(suffix) + self.extra_premises_for(obligation),
            )
            cached = context.stats.cache_hits > hits_before
            failure = self._failure(obligation, valid, model)
            if failure is not None:
                results[index] = failure
                if on_failure is not None:
                    on_failure(obligation)
            elif self.witness:
                self._record_certificate(obligation, context.last_certificate)
            self._emit_verdict(emit, unit, obligation, failure, valid, cached)

    def _discharge_batched(self, context, unit, results, on_failure, emit) -> None:
        """Conjoined discharge: prove all goals of a unit in few solves.

        Each member contributes the guarded goal ``suffix → g`` (its
        path facts beyond the unit base as the guard), so the conjoined
        query ``base ⊨ ∧ᵢ (suffixᵢ → gᵢ)`` asks exactly the individual
        questions at once.  The per-goal premise extensions (Ψ instances
        under the precondition, sound real-arithmetic lemmas) are all
        valid facts, so asserting their union preserves each verdict's
        soundness.  UNSAT certifies every goal.  A SAT model satisfies
        the base premises, hence falsifying ``suffixᵢ → gᵢ`` makes it a
        genuine counterexample for obligation *i* — those are recorded
        at zero extra solves and the remainder re-batched.  Goals the
        model leaves undecided (or that evaluation cannot reach) fall
        back to individual checks, so the refinement loop strictly
        shrinks.
        """
        remaining: List[Tuple[int, Obligation, Tuple[ast.Expr, ...], List[ast.Expr]]] = [
            (index, obligation, suffix, self.extra_premises_for(obligation))
            for index, obligation, suffix in unit.members
        ]
        while remaining:
            self.check_cancelled(unit, emit)
            chunk = remaining[: self.batch_limit]
            remaining = remaining[self.batch_limit:]
            self._discharge_chunk(context, unit, chunk, results, on_failure, emit)

    def _discharge_chunk(self, context, unit, pending, results, on_failure, emit) -> None:
        while len(pending) > 1:
            extras: List[ast.Expr] = []
            seen = set()
            for _, _, _, extension in pending:
                for premise in extension:
                    if premise not in seen:
                        seen.add(premise)
                        extras.append(premise)
            conjunction: Optional[ast.Expr] = None
            for _, obligation, suffix, _ in pending:
                guarded = _guarded_goal(obligation.goal, suffix)
                conjunction = (
                    guarded if conjunction is None else ast.BinOp("&&", conjunction, guarded)
                )
            valid, model = context.check_entailment(conjunction, extras)
            if valid:
                for _, obligation, _, _ in pending:
                    if self.witness:
                        # The conjoined proof certifies every member.
                        self._record_certificate(obligation, context.last_certificate)
                    self._emit_verdict(emit, unit, obligation, None, True, None)
                return
            if model is None:
                break  # solver gave up on the batch; decide individually
            falsified = [
                (index, obligation)
                for index, obligation, suffix, _ in pending
                if _model_falsifies(_guarded_goal(obligation.goal, suffix), model)
            ]
            if not falsified:
                break  # model decides nothing we can evaluate
            for index, obligation in falsified:
                failure = self._failure(obligation, False, model)
                results[index] = failure
                if on_failure is not None:
                    on_failure(obligation)
                self._emit_verdict(emit, unit, obligation, failure, False, None)
            decided = {index for index, _ in falsified}
            pending = [item for item in pending if item[0] not in decided]
        for index, obligation, suffix, extension in pending:
            valid, model = context.check_entailment(
                obligation.goal, list(suffix) + extension
            )
            failure = self._failure(obligation, valid, model)
            if failure is not None:
                results[index] = failure
                if on_failure is not None:
                    on_failure(obligation)
            elif self.witness:
                self._record_certificate(obligation, context.last_certificate)
            self._emit_verdict(emit, unit, obligation, failure, valid, None)

    # -- shared helpers --------------------------------------------------------

    def _record_certificate(self, obligation: Obligation, certificate) -> None:
        """Remember the certificate behind a ``valid`` verdict.

        ``certificate`` may be ``None`` (the answer came from a source
        with no attached proof — e.g. a cache entry populated before
        witnesses were enabled); those verdicts simply go unwitnessed.
        Dict assignment is atomic, so threaded workers can record
        concurrently without a lock.
        """
        if certificate is not None:
            self.certificates[obligation.oid] = certificate

    def _failure(
        self, obligation: Obligation, valid: bool, model
    ) -> Optional[ObligationFailure]:
        if valid:
            return None
        if not self.collect_models or model is None:
            return ObligationFailure(obligation)
        arith, booleans = model
        return ObligationFailure(obligation, arith, booleans)

    def _emit_verdict(self, emit, unit, obligation, failure, valid, cached) -> None:
        if emit is None:
            return
        if valid:
            emit(ObligationDischarged(unit.uid, obligation.oid, obligation.tag, cached))
        else:
            counterexample = failure.describe() if failure is not None else None
            emit(
                ObligationRefuted(
                    unit.uid, obligation.oid, obligation.tag, counterexample
                )
            )

    # -- accounting ------------------------------------------------------------

    def merge_accounts(
        self, accounts: Iterable[Tuple[int, Tuple[ContextStats, SolverProfile]]]
    ) -> None:
        """Fold per-unit counters into the engine, ordered by unit index.

        The ordered merge makes the engine's aggregate counters a pure
        function of the per-unit counters, independent of which worker
        thread finished first.
        """
        for _, (unit_stats, unit_profile) in sorted(accounts, key=lambda item: item[0]):
            self.stats.merge(unit_stats)
            self.profile.merge(unit_profile)

    def solver_stats(self) -> ContextStats:
        """Aggregate counters: one-shot queries plus all context work."""
        stats = ContextStats(
            queries=self.validity.queries,
            cache_hits=self.validity.cache_hits,
            solve_calls=self.validity.solve_calls,
        )
        stats.merge(self.stats)
        return stats

    def profile_totals(self) -> SolverProfile:
        """Inner-loop counters over the whole discharge (all strategies)."""
        totals = SolverProfile()
        totals.merge(self.validity.profile)
        totals.merge(self.profile)
        return totals


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class DischargeBackend:
    """The backend protocol: schedule a stream of units over an engine.

    ``run`` consumes ``units`` (possibly lazily, while the symbolic
    executor is still producing obligations), records refutations into
    ``results`` keyed by global obligation index, and returns the
    per-unit ``(index, (stats, profile))`` accounts for the engine's
    deterministic merge.  ``fail_fast`` stops scheduling new units once
    a refutation lands.
    """

    name = "abstract"

    def run(
        self,
        engine: DischargeEngine,
        units: Iterable[DischargeUnit],
        results: Dict[int, ObligationFailure],
        skip=None,
        on_failure=None,
        emit: EventSink = None,
        batch: bool = True,
        fail_fast: bool = False,
    ) -> List[Tuple[int, Tuple[ContextStats, SolverProfile]]]:
        raise NotImplementedError


class SerialBackend(DischargeBackend):
    """Discharge units one after another, in plan order."""

    name = "serial"

    def run(self, engine, units, results, skip=None, on_failure=None,
            emit=None, batch=True, fail_fast=False):
        accounts = []
        units = iter(units)
        for unit in units:
            account = engine.discharge_unit(unit, results, skip, on_failure, emit, batch)
            accounts.append((unit.index, account))
            if fail_fast and results:
                # Only an early exit if work actually remained.
                if next(units, None) is not None:
                    engine.early_exited = True
                    if emit is not None:
                        emit(EarlyExit(unit.uid, "first refutation (fail-fast)"))
                break
        return accounts


class ThreadedBackend(DischargeBackend):
    """Discharge independent units on a worker-thread pool.

    Results and counters are merged keyed by unit id, and the shared
    query cache is single-flight, so verdicts, obligation ids, solve
    counts and the merged statistics are identical to the serial
    backend for every job count.  (The solver is pure Python: on a
    stock GIL build workers interleave rather than run concurrently, so
    ``jobs`` bounds *structural* concurrency; wall-clock gains need a
    free-threaded build or multiple cores doing I/O.)
    """

    name = "threaded"

    def __init__(self, jobs: int = 2) -> None:
        self.jobs = max(1, jobs)

    def run(self, engine, units, results, skip=None, on_failure=None,
            emit=None, batch=True, fail_fast=False):
        if emit is not None and not isinstance(emit, _LockedSink):
            emit = _LockedSink(emit)
        futures: List[Tuple[int, object]] = []
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            try:
                for unit in units:
                    # Cancellation and fail-fast are checked before
                    # submitting, so early_exited means this unit (at
                    # least) was genuinely never scheduled.
                    engine.check_cancelled(unit, emit)
                    if fail_fast and results:
                        engine.early_exited = True
                        if emit is not None:
                            emit(
                                EarlyExit(
                                    unit.uid,
                                    "first refutation (fail-fast); unit not scheduled",
                                )
                            )
                        break
                    future = pool.submit(
                        engine.discharge_unit, unit, results, skip, on_failure, emit, batch
                    )
                    futures.append((unit, future))
                accounts = []
                for unit, future in futures:
                    try:
                        accounts.append((unit.index, future.result()))
                    except (DischargeCancelled, DischargeWorkerError):
                        raise
                    except Exception as err:
                        raise DischargeWorkerError(unit, err) from err
            except BaseException:
                # A worker raised (DischargeCancelled, solver error) or
                # the main thread was interrupted mid-collection
                # (KeyboardInterrupt).  Queued-but-unstarted units are
                # dropped here; without this, the executor's shutdown
                # would run the *whole* remaining plan before the
                # exception could propagate.  Running units finish their
                # current solve and unwind via their own handlers
                # (scopes popped, single-flight acquisitions released).
                for _, future in futures:
                    future.cancel()
                engine.early_exited = True
                raise
        return accounts


# -- process-backend worker plumbing ----------------------------------------
#
# Everything a worker needs must cross the pickle boundary: obligations,
# premises and cache entries are frozen dataclasses over interned
# expression nodes (all picklable), and the engine itself is rebuilt in
# each worker from a small spec at pool start.


@dataclass(frozen=True)
class _EngineSpec:
    """The picklable subset of engine configuration a worker rebuilds."""

    psi: ast.Expr
    assumptions: Tuple[ast.Expr, ...]
    use_lemmas: bool
    collect_models: bool
    batch_limit: int
    #: The parent's fault-plan spec, re-installed in each worker so
    #: worker-side directives (worker-kill, solve-fail, solve-delay)
    #: fire under both fork and spawn start methods.
    faults: Optional[str] = None
    #: Whether workers emit proof certificates (they ride back to the
    #: parent's authoritative replay inside the oracle's cache entries).
    witness: bool = False


class _RecordingCache:
    """A :class:`QueryCache` shim that records every consulted answer.

    Workers solve speculatively against their own per-process cache;
    the recorded ``digest → entry`` map is the unit's *answer oracle*,
    shipped back to the parent so its authoritative replay can skip the
    redundant solves (see :class:`ProcessPoolBackend`).
    """

    def __init__(self, inner: QueryCache) -> None:
        self.inner = inner
        self.entries: Dict[str, CacheEntry] = {}

    def acquire(self, key) -> Optional[CacheEntry]:
        entry = self.inner.acquire(key)
        if entry is not None:
            self.entries[oracle_digest(key)] = entry
        return entry

    def store(self, key, entry: CacheEntry) -> None:
        self.entries[oracle_digest(key)] = entry
        self.inner.store(key, entry)

    def cancel(self, key) -> None:
        self.inner.cancel(key)


_WORKER_ENGINE: Optional[DischargeEngine] = None


def _process_worker_init(spec: _EngineSpec) -> None:
    global _WORKER_ENGINE
    # Under the fork start method the worker inherits the parent's
    # signal state — including any asyncio wakeup fd, whose underlying
    # pipe is SHARED with the parent's event loop.  Detach it and
    # restore default handlers, or a signal delivered to a worker (e.g.
    # the executor terminating siblings of a crashed worker) would echo
    # into the parent loop as if the parent had been signalled.
    try:
        signal.set_wakeup_fd(-1)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    faults_mod.install(spec.faults)
    engine = DischargeEngine(
        spec.psi,
        list(spec.assumptions),
        use_lemmas=spec.use_lemmas,
        collect_models=spec.collect_models,
        witness=spec.witness,
    )
    engine.batch_limit = spec.batch_limit
    _WORKER_ENGINE = engine


def _process_worker_discharge(
    unit: DischargeUnit, batch: bool
) -> Tuple[int, int, ContextStats, SolverProfile, Dict[str, CacheEntry]]:
    """Solve one unit in a worker; return its stats and answer oracle."""
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("process worker used before initialization")
    plan = faults_mod.active()
    if plan is not None:
        delay = plan.worker_delay(unit.index)
        if delay:
            time.sleep(delay)
        failure = plan.worker_fail(unit.index)
        if failure == "fatal":
            raise RuntimeError(f"injected fatal worker error at unit {unit.index}")
        if failure is not None:
            raise faults_mod.InjectedFailure(
                f"injected solve failure at unit {unit.index}"
            )
        if plan.kill_worker(unit.index):
            os._exit(43)
    recorder = _RecordingCache(engine.cache)
    engine.attach_cache(recorder)  # type: ignore[arg-type]
    try:
        stats, profile = engine.discharge_unit(unit, {}, batch=batch)
    finally:
        engine.attach_cache(recorder.inner)
    return unit.index, os.getpid(), stats, profile, recorder.entries


def _process_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap: interned tables come along); the
    platform default elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class ProcessPoolBackend(DischargeBackend):
    """Discharge units on worker *processes* — real multicore solving.

    Each worker owns a full Encoder/SMTSolver/QueryCache stack and
    solves whole units speculatively, recording every answer it
    consulted.  The parent then **replays** each unit, in plan order,
    through the ordinary serial discharge path against the shared query
    cache — with the worker's answer map as a solve *oracle*: a shared
    cache miss whose answer the oracle holds is accounted exactly like
    a serial solve and never touches the parent's DPLL(T) core.  The
    replay therefore reproduces the serial backend's exact hit/miss/
    solve sequence: verdicts, obligation ids, failure lists, the event
    stream and the merged counters are byte-identical to
    :class:`SerialBackend` for every job count, while the expensive
    solving runs concurrently in the workers.  (An oracle miss — a
    replay query no worker happened to solve — simply falls through to
    a real parent-side solve, trading a little speed for none of the
    determinism.)

    Fail-fast inherits the same determinism: replays run in plan
    order, so the run stops at exactly the unit the serial backend
    stops at, with the same failures and counters.  Only the stream
    *generation* extent can run ahead of serial there — workers solve
    speculatively, so obligations may be produced (never discharged)
    past the refuting unit.

    Raw per-worker solve totals (schedule-dependent, unlike the merged
    view) are published on ``engine.worker_report``.

    **Supervision.**  The replay-is-the-source-of-truth design makes
    recovery free of special cases: a replay whose worker died (or
    missed its solve deadline, or raised an injected failure) simply
    runs with ``oracle=None`` — which *is* a genuine serial solve
    against the shared cache — so verdicts, failure lists, oids, the
    event stream and the merged counters stay byte-identical to
    :class:`SerialBackend` even when every worker is killed.  A broken
    pool is respawned up to ``max_restarts`` times; past that budget
    the run degrades to fully-serial discharge for the remaining units.
    Incidents are published on ``engine.recovery`` (``None`` for clean
    runs, so fault-free outcomes are unchanged).

    Houdini-style pruning (``skip``) consults a live closure per
    obligation, which cannot cross the process boundary — those runs
    delegate to :class:`SerialBackend`.
    """

    name = "process"

    def __init__(self, jobs: int = 2, deadline: Optional[float] = None,
                 max_restarts: int = 2) -> None:
        self.jobs = max(1, jobs)
        #: Per-unit worker solve deadline in seconds (None = no limit).
        self.deadline = deadline
        #: How many broken pools to respawn before degrading to serial.
        self.max_restarts = max(0, max_restarts)

    def run(self, engine, units, results, skip=None, on_failure=None,
            emit=None, batch=True, fail_fast=False):
        if skip is not None:
            return SerialBackend().run(
                engine, units, results, skip=skip, on_failure=on_failure,
                emit=emit, batch=batch, fail_fast=fail_fast,
            )
        plan = faults_mod.active()
        spec = _EngineSpec(
            engine.psi,
            tuple(engine.assumptions),
            engine.use_lemmas,
            engine.collect_models,
            engine.batch_limit,
            faults=plan.spec if plan is not None else None,
            witness=engine.witness,
        )
        accounts: List[Tuple[int, Tuple[ContextStats, SolverProfile]]] = []
        per_worker: Dict[str, Dict[str, int]] = {}
        #: (unit, future-or-None, pool generation); a None future means
        #: the pool was gone at submit time and the unit is serial-only.
        pending: "deque[Tuple[DischargeUnit, object, int]]" = deque()
        failed_uid: Optional[str] = None
        state = {"pool": None, "generation": 0, "restarts": 0}

        def recovery() -> Dict[str, object]:
            if engine.recovery is None:
                engine.recovery = {
                    "pool_restarts": 0,
                    "retries": 0,
                    "recovered_units": [],
                    "incidents": [],
                }
            return engine.recovery

        def note(unit: DischargeUnit, cause: str) -> None:
            recovery()["incidents"].append(f"{unit.uid}: {cause}")

        def spawn() -> None:
            state["pool"] = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=_process_context(),
                initializer=_process_worker_init,
                initargs=(spec,),
            )

        def retire(generation: int) -> None:
            """A pool broke: respawn within budget, else degrade to
            serial-only for everything still outstanding.  Generation
            guards make the many broken futures of one crash retire
            (and count) the pool exactly once."""
            if generation != state["generation"]:
                return
            state["generation"] += 1
            pool, state["pool"] = state["pool"], None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if state["restarts"] < self.max_restarts:
                state["restarts"] += 1
                recovery()["pool_restarts"] += 1
                spawn()

        def submit(unit: DischargeUnit) -> Tuple[object, int]:
            for _ in range(2):
                pool = state["pool"]
                if pool is None:
                    break
                try:
                    future = pool.submit(_process_worker_discharge, unit, batch)
                    return future, state["generation"]
                except (BrokenExecutor, RuntimeError):
                    # The pool broke between a result and this submit
                    # (RuntimeError = submit raced its shutdown).
                    retire(state["generation"])
            return None, state["generation"]

        def fetch(unit: DischargeUnit, future, generation: int,
                  retried: bool = False):
            """The worker's result tuple, or None after a supervised
            failure — the caller then re-solves the unit serially."""
            if future is None:
                return None
            try:
                return future.result(timeout=self.deadline)
            except FutureTimeoutError:
                future.cancel()
                note(unit, "deadline exceeded" + (" (retry)" if retried else ""))
                if retried:
                    return None
                recovery()["retries"] += 1
                return fetch(unit, *submit(unit), retried=True)
            except faults_mod.InjectedFailure as err:
                note(unit, f"worker failure: {err}" + (" (retry)" if retried else ""))
                if retried:
                    return None
                recovery()["retries"] += 1
                return fetch(unit, *submit(unit), retried=True)
            except BrokenExecutor:
                note(unit, "worker crashed")
                retire(generation)
                return None
            except (DischargeCancelled, DischargeWorkerError):
                raise
            except Exception as err:
                raise DischargeWorkerError(unit, err) from err

        def replay_one() -> None:
            nonlocal failed_uid
            unit, future, generation = pending.popleft()
            got = fetch(unit, future, generation)
            oracle = None
            if got is not None:
                _, pid, w_stats, w_profile, oracle = got
                bucket = per_worker.setdefault(
                    f"pid{pid}",
                    {"units": 0, "queries": 0, "cache_hits": 0, "solve_calls": 0},
                )
                bucket["units"] += 1
                bucket["queries"] += w_stats.queries
                bucket["cache_hits"] += w_stats.cache_hits
                bucket["solve_calls"] += w_stats.solve_calls
            else:
                recovery()["recovered_units"].append(unit.uid)
            # With an oracle, the replay skips the redundant solves;
            # with oracle=None (supervised failure) it *is* a genuine
            # serial solve — identical counters either way.
            stats, profile = engine.discharge_unit(
                unit, results, None, on_failure, emit, batch, oracle=oracle
            )
            if got is not None:
                # The replay's counters are the canonical (serial-
                # identical) account; the worker's inner-loop profile is
                # where the pivots actually happened, so fold it in for
                # honest --profile totals.
                profile.merge(w_profile)
            accounts.append((unit.index, (stats, profile)))
            if fail_fast and results and failed_uid is None:
                failed_uid = unit.uid

        units = iter(units)
        spawn()
        try:
            # Replays run strictly in plan order, so the first unit
            # whose replay records a refutation is the same unit the
            # serial backend would have stopped at — fail-fast is as
            # deterministic as everything else, however the workers
            # were actually scheduled (or supervised).
            while failed_uid is None:
                unit = next(units, None)
                if unit is None:
                    break
                engine.check_cancelled(unit, emit)
                pending.append((unit, *submit(unit)))
                # Opportunistic in-order replay keeps the parent's
                # shared cache warm while the stream is still
                # producing (and surfaces fail-fast refutations as
                # early as the serial backend would).
                while (pending and failed_uid is None
                       and (pending[0][1] is None or pending[0][1].done())):
                    replay_one()
            while pending and failed_uid is None:
                replay_one()
            if failed_uid is not None and (pending or next(units, None) is not None):
                # Mirror SerialBackend: only an early exit if work
                # actually remained past the refuted unit.  Units
                # already speculatively solved in the workers are
                # simply discarded unreplayed.
                engine.early_exited = True
                if emit is not None:
                    emit(EarlyExit(failed_uid, "first refutation (fail-fast)"))
            for _, future, _ in pending:
                if future is not None:
                    future.cancel()
            pending.clear()
        except BaseException:
            # Mirror ThreadedBackend: a worker raised or the main
            # thread was interrupted mid-collection.  Queued-but-
            # unstarted units are dropped here — without this, pool
            # shutdown would run the whole remaining plan before
            # the exception could propagate.
            for _, future, _ in pending:
                if future is not None:
                    future.cancel()
            engine.early_exited = True
            raise
        finally:
            pool, state["pool"] = state["pool"], None
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        engine.worker_report = {pid: dict(row) for pid, row in sorted(per_worker.items())}
        return accounts


class OneShotBackend(DischargeBackend):
    """A fresh solver per query, per obligation, in stream order.

    The ``incremental=False`` strategy: no context push/pop reuse, no
    conjoined goals — still single-solve per refutation and cache
    backed.  Unit structure is ignored beyond preserving order.
    """

    name = "oneshot"

    def run(self, engine, units, results, skip=None, on_failure=None,
            emit=None, batch=True, fail_fast=False):
        accounts = []
        units = iter(units)
        for unit in units:
            # Solver accounting lives on engine.validity; the account
            # entry records the unit for the deterministic merge/count.
            accounts.append((unit.index, (ContextStats(), SolverProfile())))
            for position, (index, obligation, _) in enumerate(unit.members):
                engine.check_cancelled(unit, emit)
                if skip is not None and skip(obligation):
                    continue
                hits_before = engine.validity.cache_hits
                failure = engine.check_one(obligation)
                cached = engine.validity.cache_hits > hits_before
                if failure is not None:
                    results[index] = failure
                    if on_failure is not None:
                        on_failure(obligation)
                engine._emit_verdict(
                    emit, unit, obligation, failure, failure is None, cached
                )
                if fail_fast and results:
                    # Only an early exit if work actually remained.
                    remaining = position + 1 < len(unit.members) or (
                        next(units, None) is not None
                    )
                    if remaining:
                        engine.early_exited = True
                        if emit is not None:
                            emit(EarlyExit(unit.uid, "first refutation (fail-fast)"))
                    return accounts
        return accounts


class CachedBackend(DischargeBackend):
    """Wrap another backend with a shared (single-flight) query cache.

    The pipeline holds one :class:`QueryCache` per batch; wrapping the
    chosen backend installs it on the engine, so identical queries
    across programs, bindings and Houdini rounds are solved once.
    """

    def __init__(self, inner: DischargeBackend, cache: Optional[QueryCache] = None) -> None:
        self.inner = inner
        self.cache = cache if cache is not None else QueryCache()

    @property
    def name(self) -> str:
        return f"cached+{self.inner.name}"

    def run(self, engine, units, results, **kwargs):
        engine.attach_cache(self.cache)
        return self.inner.run(engine, units, results, **kwargs)


def resolve_backend(
    incremental: bool = True,
    jobs: int = 1,
    choice: Optional[Union[str, DischargeBackend]] = None,
    cache: Optional[QueryCache] = None,
) -> DischargeBackend:
    """The backend a configuration denotes.

    ``choice`` wins when given (a name or a ready backend instance);
    otherwise the legacy knobs decide: ``incremental=False`` → one-shot,
    ``jobs > 1`` → threaded, else serial.  When no choice is pinned the
    ``REPRO_VERIFY_JOBS`` environment variable can raise the default
    parallelism and ``REPRO_VERIFY_BACKEND`` can name a different
    default backend (that is how the CI jobs-smoke and
    process-backend-smoke legs run the whole test suite through the
    threaded and process backends).  ``cache`` wraps the result in a
    :class:`CachedBackend`.
    """
    backend: DischargeBackend
    if isinstance(choice, DischargeBackend):
        backend = choice
    else:
        name = choice
        if name is None:
            unpinned = incremental and jobs == 1
            env = os.environ.get(JOBS_ENV_VAR)
            if env and unpinned:
                try:
                    jobs = max(1, int(env))
                except ValueError:
                    pass
            name = "oneshot" if not incremental else ("threaded" if jobs > 1 else "serial")
            env_backend = os.environ.get(BACKEND_ENV_VAR)
            if env_backend and unpinned:
                name = env_backend
        if name == "serial":
            backend = SerialBackend()
        elif name == "threaded":
            backend = ThreadedBackend(jobs=max(2, jobs) if jobs > 1 else jobs)
        elif name == "process":
            backend = ProcessPoolBackend(
                jobs=max(2, jobs) if jobs > 1 else jobs,
                deadline=_env_deadline(),
            )
        elif name == "oneshot":
            backend = OneShotBackend()
        else:
            raise ValueError(
                f"unknown discharge backend {name!r};"
                " expected serial, threaded, process or oneshot"
            )
    if cache is not None:
        backend = CachedBackend(backend, cache)
    return backend


def _env_deadline() -> Optional[float]:
    """The ``REPRO_UNIT_DEADLINE`` per-unit deadline, when set and sane."""
    env = os.environ.get(DEADLINE_ENV_VAR)
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        return None
    return value if value > 0 else None


def effective_jobs(backend: DischargeBackend) -> int:
    """The worker count a backend actually discharges with.

    Unwraps :class:`CachedBackend`; serial and one-shot backends run on
    the caller's thread (1).
    """
    inner = getattr(backend, "inner", backend)
    return getattr(inner, "jobs", 1)


# ---------------------------------------------------------------------------
# Expression helpers shared by the strategies
# ---------------------------------------------------------------------------


def _guarded_goal(goal: ast.Expr, suffix: Tuple[ast.Expr, ...]) -> ast.Expr:
    """``suffix → goal`` as an expression (``goal`` when no suffix)."""
    if not suffix:
        return goal
    guard = suffix[0]
    for fact in suffix[1:]:
        guard = ast.BinOp("&&", guard, fact)
    return ast.BinOp("||", ast.Not(guard), goal)


def _model_falsifies(goal: ast.Expr, model: Model) -> bool:
    """Does the (total, rational) model make ``goal`` false?

    Conservative: any variable the model misses or any construct the
    encoder cannot reach counts as "undecided", never as falsified.
    """
    arith, booleans = model
    try:
        return not F.evaluate(Encoder().boolean(goal), arith, booleans)
    except (KeyError, EncodeError, ArithmeticError):
        return False
