"""The LightDP baseline (Zhang & Kifer, POPL 2017).

Section 7 of the paper: *"LightDP is a restricted form of ShadowDP where
the shadow execution is never used (i.e., when the selector always picks
the aligned execution)."*  The baseline is therefore implemented as
exactly that restriction — :func:`check_lightdp` rejects any program
whose sampling annotations can select the shadow version, and otherwise
defers to the ShadowDP checker in aligned-only mode.

This makes the paper's expressiveness claim executable: Report Noisy Max
has **no** aligned-only annotation that both type checks and verifies
(the ablation benchmark demonstrates this), while the Sparse Vector and
sum families go through unchanged.
"""

from __future__ import annotations


from repro.core.checker import CheckedProgram, TypeChecker
from repro.lang import ast

#: Verification seconds reported by Albarghouthi & Hsu's coupling-proof
#: synthesiser on the shared benchmarks (paper Table 1, right column;
#: quoted — their system is closed and takes minutes per algorithm).
COUPLING_VERIFIER_SECONDS = {
    "noisy_max": 22.0,
    "svt_n1": 27.0,
    "svt": 580.0,
    "num_svt_n1": 4.0,
    "num_svt": 5.0,
    "gap_svt": None,  # N/A — the variant is novel to this paper
    "partial_sum": 14.0,
    "prefix_sum": 14.0,
    "smart_sum": 255.0,
}

#: Which of the case studies LightDP can handle at the tight budget
#: (paper Sections 1 and 7).
LIGHTDP_SUPPORTED = {
    "noisy_max": False,
    "svt": True,
    "num_svt": True,
    "gap_svt": True,
    "partial_sum": True,
    "prefix_sum": True,
    "smart_sum": True,
}


def check_lightdp(function: ast.FunctionDef) -> CheckedProgram:
    """Type check under the LightDP restriction.

    Raises :class:`~repro.core.errors.ShadowDPTypeError` with reason
    ``lightdp-shadow`` when the program's annotations need the shadow
    execution.
    """
    return TypeChecker(function, lightdp_mode=True).check()
