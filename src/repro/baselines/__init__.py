"""Baselines the paper compares against (Section 7)."""

from repro.baselines.lightdp import check_lightdp, LIGHTDP_SUPPORTED, COUPLING_VERIFIER_SECONDS

__all__ = ["check_lightdp", "LIGHTDP_SUPPORTED", "COUPLING_VERIFIER_SECONDS"]
