"""Deterministic fault injection for chaos-testing the verifier.

A :class:`FaultPlan` is a comma-separated list of *directives*, each
naming a **site** (where in the system the fault fires) and a **key**
(which occurrence it fires on)::

    worker-kill@2,store-poison@1,serve-drop@7

The plan is installed process-wide — via the ``REPRO_FAULTS``
environment variable, the ``--faults`` CLI flag, or :func:`install` —
and consulted at a handful of hook points.  When no plan is installed
:func:`active` returns ``None`` after one cached environment read, so
the disabled path costs a single attribute load.

Determinism contract
--------------------

Faults are keyed by *structure*, not by wall clock or scheduling:

- ``worker-kill@U`` / ``solve-fail@U`` / ``solve-delay@U:S`` match the
  discharge **unit index** ``U`` (or ``*`` for every unit) and fire on
  every worker-side attempt at that unit.  Worker scheduling cannot
  change which units are affected.
- ``store-poison@N`` / ``store-busy@N`` / ``witness-corrupt@N`` fire on
  the Nth occurrence (1-based) of the corresponding store operation —
  deterministic wherever store traffic is serial, which it is (the
  store lock serialises every operation).
- ``serve-drop@K`` fires once, on the first connection that writes its
  Kth frame.

Every fired directive appends a typed :class:`InjectedFault` record to
``plan.trail`` so tests and operators can assert exactly which faults
were exercised.  Worker processes install the plan from the engine
spec at initializer time; their trails die with the worker — the
parent's recovery report is the authoritative record of what was
survived.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Sites keyed by discharge-unit index (fire on every matching attempt).
UNIT_SITES = ("worker-kill", "solve-fail", "solve-delay")
#: Sites keyed by 1-based occurrence count (fire once on the Nth call).
OCCURRENCE_SITES = ("store-poison", "store-busy", "serve-drop", "witness-corrupt")
SITES = UNIT_SITES + OCCURRENCE_SITES


class FaultPlanError(ValueError):
    """A fault-plan spec string failed to parse."""


class InjectedFailure(RuntimeError):
    """An injected, by-design-recoverable failure.

    Raised by ``solve-fail`` directives inside discharge workers; the
    supervisor treats it like any transient worker failure (retry once,
    then serial fallback).  Picklable, so it crosses the process
    boundary intact.
    """


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired, recorded in the plan trail."""

    site: str
    key: str
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.site}@{self.key}"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class _Directive:
    site: str
    key: Union[int, str]  # unit index / occurrence count, or "*"
    arg: Optional[str] = None
    fired: int = 0

    def spec(self) -> str:
        text = f"{self.site}@{self.key}"
        return f"{text}:{self.arg}" if self.arg is not None else text


def _parse_directive(text: str) -> _Directive:
    if "@" not in text:
        raise FaultPlanError(
            f"fault directive {text!r} is missing '@KEY' (expected SITE@KEY[:ARG])"
        )
    site, _, rest = text.partition("@")
    site = site.strip()
    if site not in SITES:
        raise FaultPlanError(
            f"unknown fault site {site!r} (expected one of: {', '.join(SITES)})"
        )
    key_text, sep, arg = rest.partition(":")
    key_text = key_text.strip()
    arg = arg.strip() if sep else None
    key: Union[int, str]
    if key_text == "*":
        if site in OCCURRENCE_SITES:
            raise FaultPlanError(
                f"fault site {site!r} is occurrence-counted and does not accept '*'"
            )
        key = "*"
    else:
        try:
            key = int(key_text)
        except ValueError:
            raise FaultPlanError(
                f"fault key {key_text!r} in {text!r} is not an integer or '*'"
            ) from None
        if key < 0 or (site in OCCURRENCE_SITES and key < 1):
            raise FaultPlanError(f"fault key in {text!r} is out of range")
    if site == "solve-delay":
        if arg is None:
            raise FaultPlanError("solve-delay requires ':SECONDS' (e.g. solve-delay@0:1.5)")
        try:
            if float(arg) < 0:
                raise ValueError
        except ValueError:
            raise FaultPlanError(f"solve-delay seconds {arg!r} is not a non-negative number") from None
    elif site == "solve-fail":
        if arg is not None and arg != "fatal":
            raise FaultPlanError(f"solve-fail argument must be 'fatal', got {arg!r}")
    elif arg is not None:
        raise FaultPlanError(f"fault site {site!r} does not take an argument")
    return _Directive(site=site, key=key, arg=arg)


@dataclass
class FaultPlan:
    """A parsed fault plan plus the trail of faults that fired."""

    spec: str
    directives: List[_Directive] = field(default_factory=list)
    trail: List[InjectedFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._occurrences = {site: 0 for site in OCCURRENCE_SITES}
        if not self.directives:
            parts = [part.strip() for part in self.spec.split(",")]
            self.directives = [_parse_directive(part) for part in parts if part]
        if not self.directives:
            raise FaultPlanError("fault plan is empty")

    # -- unit-keyed sites -------------------------------------------------

    def _unit_directive(self, site: str, unit_index: int) -> Optional[_Directive]:
        for directive in self.directives:
            if directive.site != site:
                continue
            if directive.key == "*" or directive.key == unit_index:
                return directive
        return None

    def _fire(self, directive: _Directive, key: str, detail: str = "") -> None:
        with self._lock:
            directive.fired += 1
            self.trail.append(InjectedFault(directive.site, key, detail))

    def kill_worker(self, unit_index: int) -> bool:
        """True if the worker solving this unit should die (``os._exit``)."""
        directive = self._unit_directive("worker-kill", unit_index)
        if directive is None:
            return False
        self._fire(directive, f"u{unit_index}", f"pid {os.getpid()}")
        return True

    def worker_fail(self, unit_index: int) -> Optional[str]:
        """``"fail"``/``"fatal"`` if this unit's worker solve should raise."""
        directive = self._unit_directive("solve-fail", unit_index)
        if directive is None:
            return None
        kind = "fatal" if directive.arg == "fatal" else "fail"
        self._fire(directive, f"u{unit_index}", kind)
        return kind

    def worker_delay(self, unit_index: int) -> Optional[float]:
        """Seconds this unit's worker solve should sleep, if any."""
        directive = self._unit_directive("solve-delay", unit_index)
        if directive is None:
            return None
        self._fire(directive, f"u{unit_index}", f"{directive.arg}s")
        return float(directive.arg or 0.0)

    # -- occurrence-counted sites -----------------------------------------

    def _occurrence(self, site: str, detail: str = "") -> bool:
        with self._lock:
            self._occurrences[site] += 1
            count = self._occurrences[site]
            for directive in self.directives:
                if directive.site == site and directive.key == count:
                    directive.fired += 1
                    self.trail.append(InjectedFault(site, str(count), detail))
                    return True
        return False

    def store_poison(self) -> bool:
        """True if this store write batch should poison its first row."""
        return self._occurrence("store-poison")

    def store_busy(self) -> bool:
        """True if this store operation attempt should raise 'database is locked'."""
        return self._occurrence("store-busy")

    def witness_corrupt(self) -> bool:
        """True if this witnessed store hit should hand back a mangled
        certificate (the validator must reject it and the hit must
        degrade to a counted re-solve)."""
        return self._occurrence("witness-corrupt")

    def drop_connection(self, frames: int) -> bool:
        """True if a connection that just produced its ``frames``-th frame
        should be dropped.  Fires at most once per directive, so client
        retries against the same server succeed."""
        with self._lock:
            for directive in self.directives:
                if directive.site == "serve-drop" and directive.key == frames and not directive.fired:
                    directive.fired += 1
                    self.trail.append(InjectedFault("serve-drop", str(frames)))
                    return True
        return False

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> List[Tuple[str, str, str]]:
        with self._lock:
            return [(f.site, f.key, f.detail) for f in self.trail]


_LOCK = threading.Lock()
_PLAN: Optional[FaultPlan] = None
_INSTALLED = False


def install(spec: Union[str, FaultPlan, None]) -> Optional[FaultPlan]:
    """Install a process-wide fault plan (or clear it with ``None``)."""
    global _PLAN, _INSTALLED
    with _LOCK:
        if spec is None:
            _PLAN = None
        elif isinstance(spec, FaultPlan):
            _PLAN = spec
        else:
            _PLAN = FaultPlan(spec)
        _INSTALLED = True
        return _PLAN


def reset() -> None:
    """Forget any installed plan and return to lazy ``REPRO_FAULTS`` reads."""
    global _PLAN, _INSTALLED
    with _LOCK:
        _PLAN = None
        _INSTALLED = False


def active() -> Optional[FaultPlan]:
    """The installed plan, reading ``REPRO_FAULTS`` once on first call."""
    global _PLAN, _INSTALLED
    if _INSTALLED:
        return _PLAN
    with _LOCK:
        if not _INSTALLED:
            spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
            _PLAN = FaultPlan(spec) if spec else None
            _INSTALLED = True
    return _PLAN
