"""Statistical cross-checks of differential privacy claims."""

from repro.empirical.estimator import (
    EmpiricalResult,
    estimate_epsilon_lower_bound,
    event_probabilities,
)

__all__ = ["EmpiricalResult", "estimate_epsilon_lower_bound", "event_probabilities"]
