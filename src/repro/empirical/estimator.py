"""Sampling-based ε lower bounds (a StatDP-flavoured counterexample hunt).

The paper's motivation cites statistical violation detectors
([12, 18] — DP-Finder, StatDP) as the bug-finding complement to
verification.  This module implements the core of that recipe:

1. run the mechanism many times on a *fixed* pair of adjacent inputs;
2. bucket the outputs into discrete events;
3. for the most discriminating event, compare the two empirical
   probabilities with Clopper–Pearson-style confidence bounds and report
   the largest ``log(p̂1_lower / p̂2_upper)`` — a statistically sound
   lower bound on the true ε of the mechanism.

A verified ε-DP mechanism must come out with a bound ≤ ε (up to
confidence error); the known-buggy SVT variants come out far above it on
the right inputs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Tuple

from scipy import stats


def _discretize(value, digits: int = 1) -> Hashable:
    """Map an output to a hashable event key (rounding reals)."""
    if isinstance(value, tuple):
        return tuple(_discretize(v, digits) for v in value)
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return round(float(value), digits)
    return value


def event_probabilities(
    mechanism: Callable,
    inputs: Dict,
    trials: int,
    rng: random.Random,
    digits: int = 1,
) -> Dict[Hashable, float]:
    """Empirical output distribution of ``mechanism`` on ``inputs``."""
    counts: Dict[Hashable, int] = {}
    for _ in range(trials):
        result = mechanism(rng, **inputs)
        key = _discretize(result, digits)
        counts[key] = counts.get(key, 0) + 1
    return {key: count / trials for key, count in counts.items()}


@dataclass
class EmpiricalResult:
    """The estimated lower bound and the witnessing event."""

    epsilon_lower_bound: float
    event: Hashable
    p1: float
    p2: float
    trials: int
    claimed_epsilon: float

    @property
    def violates(self) -> bool:
        """True when the bound statistically exceeds the claimed ε."""
        return self.epsilon_lower_bound > self.claimed_epsilon

    def describe(self) -> str:
        verdict = "VIOLATION" if self.violates else "consistent"
        return (
            f"eps_lower >= {self.epsilon_lower_bound:.3f} vs claimed "
            f"{self.claimed_epsilon:.3f} ({verdict}); event {self.event!r}: "
            f"p1={self.p1:.4f}, p2={self.p2:.4f}, trials={self.trials}"
        )


def _binomial_bounds(successes: int, trials: int, confidence: float) -> Tuple[float, float]:
    """Clopper–Pearson interval via the Beta distribution."""
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = float(stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    if successes == trials:
        upper = 1.0
    else:
        upper = float(stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    return lower, upper


def estimate_epsilon_lower_bound(
    mechanism: Callable,
    inputs1: Dict,
    inputs2: Dict,
    claimed_epsilon: float,
    trials: int = 20_000,
    seed: int = 0,
    digits: int = 1,
    confidence: float = 0.999,
) -> EmpiricalResult:
    """A statistically sound lower bound on the mechanism's true ε.

    Runs ``trials`` executions on each of the two (adjacent) input
    dicts, picks the event maximising the confidence-adjusted likelihood
    ratio, and reports ``max(log(lo1/hi2), log(lo2/hi1))``.
    """
    rng1 = random.Random(seed)
    rng2 = random.Random(seed + 1)
    counts1: Dict[Hashable, int] = {}
    counts2: Dict[Hashable, int] = {}
    for _ in range(trials):
        key1 = _discretize(mechanism(rng1, **inputs1), digits)
        counts1[key1] = counts1.get(key1, 0) + 1
        key2 = _discretize(mechanism(rng2, **inputs2), digits)
        counts2[key2] = counts2.get(key2, 0) + 1

    best = EmpiricalResult(0.0, None, 0.0, 0.0, trials, claimed_epsilon)
    for event in set(counts1) | set(counts2):
        c1 = counts1.get(event, 0)
        c2 = counts2.get(event, 0)
        if c1 + c2 < 10:
            continue
        lo1, hi1 = _binomial_bounds(c1, trials, confidence)
        lo2, hi2 = _binomial_bounds(c2, trials, confidence)
        for lo, hi, p_a, p_b in ((lo1, hi2, c1, c2), (lo2, hi1, c2, c1)):
            if lo > 0 and hi > 0:
                bound = math.log(lo / hi)
                if bound > best.epsilon_lower_bound:
                    best = EmpiricalResult(
                        bound, event, c1 / trials, c2 / trials, trials, claimed_epsilon
                    )
    return best
