"""The lazy DPLL(T) loop: CDCL SAT core + simplex theory solver.

The loop is the classic lemmas-on-demand architecture:

1. Tseitin-encode the asserted formulas to CNF.
2. Ask the SAT core for a propositional model.
3. Translate the model's theory literals into simplex bounds and check
   feasibility.
4. If infeasible, add the (negated) conflict set as a new clause and
   repeat; otherwise report SAT with a concrete rational model.

Equality atoms get a theory-split clause ``(x = y) ∨ (x < y) ∨ (x > y)``
at encoding time so that *negated* equalities never reach the simplex
(which cannot represent disequalities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.solver import formula as F
from repro.solver.cnf import TseitinEncoder
from repro.solver.delta import DeltaRat
from repro.solver.linear import LinExpr
from repro.solver.sat import CDCLSolver
from repro.solver.simplex import Infeasible, Simplex


@dataclass
class SatResult:
    """Outcome of a satisfiability check."""

    status: str  # "sat" | "unsat" | "unknown"
    arith_model: Dict[str, Fraction] = field(default_factory=dict)
    bool_model: Dict[str, bool] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class SMTSolver:
    """A one-shot SMT solver: assert formulas, then :meth:`check`."""

    def __init__(self, max_rounds: int = 100_000) -> None:
        self._encoder = TseitinEncoder()
        self._assertions: List[F.Formula] = []
        self._max_rounds = max_rounds

    def add(self, node: F.Formula) -> None:
        self._assertions.append(node)
        self._encoder.assert_formula(node)

    def check(self) -> SatResult:
        cnf = self._encoder.cnf
        self._add_equality_splits()

        sat = CDCLSolver(cnf.num_vars)
        for clause in cnf.clauses:
            sat.add_clause(clause)

        simplex = Simplex()
        slack_of: Dict[LinExpr, Tuple[str, Fraction]] = {}

        def bound_target(expr: LinExpr) -> Tuple[str, Fraction, Fraction]:
            """Map ``expr OP 0`` to a bound on a single simplex variable.

            Returns ``(var, scale, shift)`` with ``expr == scale*(var) +
            shift`` and ``scale > 0``; the bound ``expr <= 0`` becomes
            ``var <= -shift/scale``.
            """
            canon, factor = expr.normalized()
            shift = canon.const
            body = canon - shift
            terms = body.terms
            if len(terms) == 1:
                ((name, coeff),) = terms.items()
                if coeff == 1:
                    simplex.add_variable(name)
                    return name, factor, shift * factor
            if body not in slack_of:
                slack = f"%s{len(slack_of)}"
                simplex.define(slack, body)
                slack_of[body] = (slack, Fraction(1))
            slack, _ = slack_of[body]
            return slack, factor, shift * factor

        rounds = 0
        while rounds < self._max_rounds:
            rounds += 1
            if not sat.solve():
                return SatResult("unsat")
            model = sat.model()

            simplex.reset_bounds()
            conflict: Optional[set] = None
            try:
                for var, atom in cnf.atom_of_var.items():
                    value = model.get(var)
                    if value is None:
                        continue
                    literal = var if value else -var
                    if value:
                        self._assert_atom(simplex, bound_target, atom, literal)
                    else:
                        self._assert_negated_atom(simplex, bound_target, atom, literal)
                simplex.check()
            except Infeasible as err:
                conflict = {t for t in err.conflict if isinstance(t, int)}

            if conflict is None:
                arith = simplex.concrete_model()
                arith = {k: v for k, v in arith.items() if not k.startswith("%")}
                booleans = {
                    name: model[var]
                    for var, name in cnf.bool_of_var.items()
                    if var in model
                }
                return SatResult("sat", arith, booleans)

            # Learn the theory conflict and continue.
            sat.add_clause([-lit for lit in conflict])
        return SatResult("unknown")

    # -- helpers ---------------------------------------------------------------

    def _add_equality_splits(self) -> None:
        cnf = self._encoder.cnf
        for var, atom in list(cnf.atom_of_var.items()):
            if atom.op != "=":
                continue
            lt = self._encoder.literal(F.FAtom("<", atom.expr))
            gt = self._encoder.literal(F.FAtom("<", -atom.expr))
            # x=0 ∨ x<0 ∨ x>0 — lets a negated equality satisfy the theory.
            self._encoder.cnf.clauses.append((var, lt, gt))
            # Mutual exclusion speeds the search (theory would find these).
            self._encoder.cnf.clauses.append((-var, -lt))
            self._encoder.cnf.clauses.append((-var, -gt))

    @staticmethod
    def _assert_atom(simplex: Simplex, bound_target, atom: F.FAtom, tag: int) -> None:
        var, scale, shift = bound_target(atom.expr)
        # atom.expr OP 0  with  atom.expr = scale*var + shift, scale > 0.
        limit = -shift / scale
        if atom.op == "<=":
            simplex.assert_upper(var, DeltaRat(limit), tag)
        elif atom.op == "<":
            simplex.assert_upper(var, DeltaRat(limit, Fraction(-1)), tag)
        else:  # "="
            simplex.assert_upper(var, DeltaRat(limit), tag)
            simplex.assert_lower(var, DeltaRat(limit), tag)

    @staticmethod
    def _assert_negated_atom(simplex: Simplex, bound_target, atom: F.FAtom, tag: int) -> None:
        if atom.op == "=":
            # Handled by the split clause; nothing to assert.
            return
        var, scale, shift = bound_target(atom.expr)
        limit = -shift / scale
        if atom.op == "<=":
            # ¬(e <= 0) is e > 0.
            simplex.assert_lower(var, DeltaRat(limit, Fraction(1)), tag)
        else:
            # ¬(e < 0) is e >= 0.
            simplex.assert_lower(var, DeltaRat(limit), tag)


def check_formulas(*assertions: F.Formula, max_rounds: int = 100_000) -> SatResult:
    """Convenience: check the conjunction of ``assertions``."""
    solver = SMTSolver(max_rounds=max_rounds)
    for node in assertions:
        solver.add(node)
    return solver.check()
