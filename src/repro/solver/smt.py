"""The lazy DPLL(T) loop: CDCL SAT core + simplex theory solver.

The loop is the classic lemmas-on-demand architecture:

1. Tseitin-encode the asserted formulas to CNF.
2. Ask the SAT core for a propositional model.
3. Translate the model's theory literals into simplex bounds and check
   feasibility.
4. If infeasible, add the (negated) conflict set as a new clause and
   repeat; otherwise report SAT with a concrete rational model.

Equality atoms get a theory-split clause ``(x = y) ∨ (x < y) ∨ (x > y)``
at encoding time so that *negated* equalities never reach the simplex
(which cannot represent disequalities).

The solver is **incremental**: the SAT core, the Tseitin encoding and
the simplex tableau persist across :meth:`SMTSolver.check` calls, so
formulas added after a check only pay for their own clauses, and theory
lemmas learned in one query prune the search in the next.  On top of
that, :meth:`SMTSolver.push`/:meth:`SMTSolver.pop` provide retractable
assertion scopes in the MiniSat style: each scope owns a fresh
*selector* variable, scoped clauses are guarded by its negation, checks
pass the active selectors as solve-time assumptions, and popping a
scope permanently asserts the negated selector (deactivating its
clauses without disturbing anything learned from them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.solver import formula as F
from repro.solver.cnf import TseitinEncoder
from repro.solver.delta import DeltaRat
from repro.solver.linear import LinExpr
from repro.solver.profile import SolverProfile
from repro.solver.sat import CDCLSolver
from repro.solver.simplex import Infeasible, Simplex


@dataclass
class SatResult:
    """Outcome of a satisfiability check."""

    status: str  # "sat" | "unsat" | "unknown"
    arith_model: Dict[str, Fraction] = field(default_factory=dict)
    bool_model: Dict[str, bool] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class SMTSolver:
    """An incremental SMT solver: assert, :meth:`check`, assert more, …

    ``push()``/``pop()`` open and close retractable assertion scopes;
    assertions made outside any scope are permanent.  :attr:`solve_calls`
    counts the DPLL(T) checks actually executed (the currency the
    benchmark suite reports).
    """

    def __init__(self, max_rounds: int = 100_000, profile: Optional[SolverProfile] = None) -> None:
        self._encoder = TseitinEncoder()
        self._max_rounds = max_rounds
        #: Inner-loop counters, shared with both engines below.
        self.profile = profile if profile is not None else SolverProfile()
        # Persistent engines.
        self._sat = CDCLSolver(profile=self.profile)
        self._simplex = Simplex(profile=self.profile)
        self._slack_of: Dict[LinExpr, Tuple[str, Fraction]] = {}
        # SAT var -> precomputed bound plan for its atom: (simplex var,
        # upper-if-true, lower-if-true, upper-if-false, lower-if-false).
        # Computed once per atom; every DPLL(T) round replays plans
        # instead of renormalizing LinExprs and rebuilding DeltaRats.
        self._atom_plan: Dict[
            int,
            Tuple[
                str,
                Optional[DeltaRat],
                Optional[DeltaRat],
                Optional[DeltaRat],
                Optional[DeltaRat],
            ],
        ] = {}
        # Incremental bookkeeping.
        self._synced = 0  # clauses already handed to the SAT core
        self._splits_done: Set[int] = set()  # equality atoms already split
        self._scopes: List[int] = []  # active selector variables
        self.solve_calls = 0
        # Proof bookkeeping (witness mode).  ``_atom_meta`` maps each
        # theory SAT var to ``(sign, factor)`` relating the asserted
        # simplex bounds back to the atom's own expression: the bound
        # inequality equals ``(±sign/factor) · atom.expr OP 0`` (see
        # ``_farkas_entries``).  ``_proof`` is the chronological event
        # log shared with the SAT core; ``last_proof`` snapshots
        # ``(assumptions, events)`` at each unsat answer.
        self._atom_meta: Dict[int, Tuple[int, Fraction]] = {}
        self._proof: Optional[List[Tuple]] = None
        self.last_proof: Optional[Tuple[Tuple[int, ...], Tuple[Tuple, ...]]] = None

    def enable_proof(self) -> None:
        """Start recording a proof-event log for certificate emission.

        Events — ``("input", clause)``, ``("learn", clause)`` and
        ``("lemma", clause, farkas_entries)`` — are appended in exactly
        the order the SAT core receives the clauses, so a validator can
        replay them: inputs are axioms, learned clauses are RUP against
        the prefix, and theory lemmas carry their own Farkas witness.
        Must be called before the first :meth:`check`; idempotent.
        """
        if self._proof is None:
            if self._synced:
                raise RuntimeError("enable_proof must precede the first check")
            self._proof = []
            self._sat.proof = self._proof

    def atom_items(self) -> List[Tuple[int, F.FAtom]]:
        """The current SAT var -> theory atom table (for certificates)."""
        return list(self._encoder.cnf.atom_of_var.items())

    # -- assertion scopes ------------------------------------------------------

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    def push(self) -> None:
        """Open a retractable assertion scope."""
        self._scopes.append(self._encoder.new_selector())

    def pop(self) -> None:
        """Close the innermost scope, retracting its assertions."""
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        selector = self._scopes.pop()
        # Permanently false selector: every clause guarded by -selector is
        # satisfied, i.e. dead — clauses learned *from* them stay valid.
        self._encoder.cnf.clauses.append((-selector,))

    def add(self, node: F.Formula) -> None:
        """Assert ``node`` in the current scope (permanent when no scope)."""
        if not self._scopes:
            self._encoder.assert_formula(node)
        else:
            self._assert_scoped(node, self._scopes[-1])

    def _assert_scoped(self, node: F.Formula, selector: int) -> None:
        if isinstance(node, F.FTrue):
            return
        if isinstance(node, F.FFalse):
            self._encoder.cnf.clauses.append((-selector,))
            return
        # Split top-level conjunctions exactly like assert_formula does,
        # guarding each conjunct — keeps the CNF small for VC premises.
        if isinstance(node, F.FAnd):
            for arg in node.args:
                self._assert_scoped(arg, selector)
            return
        literal = self._encoder.literal(node)
        self._encoder.cnf.clauses.append((-selector, literal))

    # -- the check -------------------------------------------------------------

    def check(self) -> SatResult:
        cnf = self._encoder.cnf
        self._add_equality_splits()
        self._sat.ensure_vars(cnf.num_vars)
        proof = self._proof
        while self._synced < len(cnf.clauses):
            clause = cnf.clauses[self._synced]
            self._sat.add_clause(clause)
            if proof is not None:
                proof.append(("input", tuple(clause)))
            self._synced += 1

        assumptions = tuple(self._scopes)
        self.solve_calls += 1
        self.profile.solve_calls += 1
        rounds = 0
        while rounds < self._max_rounds:
            rounds += 1
            self.profile.rounds += 1
            if not self._sat.solve(assumptions):
                if proof is not None:
                    self.last_proof = (assumptions, tuple(proof))
                return SatResult("unsat")
            sat_values = self._sat._values  # direct view; True/False/None

            # Bracket this candidate model's bounds with the simplex
            # trail: popping restores the base (empty) bound state in
            # O(changes) instead of reset + full re-assertion.
            self._simplex.push_state()
            try:
                conflict: Optional[set] = None
                try:
                    plans = self._atom_plan
                    simplex = self._simplex
                    for var, atom in cnf.atom_of_var.items():
                        value = sat_values[var]
                        if value is None:
                            continue
                        plan = plans.get(var)
                        if plan is None:
                            plan = self._plan_atom(var, atom)
                        name, pos_upper, pos_lower, neg_upper, neg_lower = plan
                        if value:
                            if pos_upper is not None:
                                simplex.assert_upper(name, pos_upper, var)
                            if pos_lower is not None:
                                simplex.assert_lower(name, pos_lower, var)
                        else:
                            if neg_upper is not None:
                                simplex.assert_upper(name, neg_upper, -var)
                            if neg_lower is not None:
                                simplex.assert_lower(name, neg_lower, -var)
                    simplex.check()
                except Infeasible as err:
                    conflict = {t for t in err.conflict if isinstance(t, int)}
                    farkas = err.farkas

                if conflict is None:
                    arith = self._simplex.concrete_model()
                    arith = {k: v for k, v in arith.items() if not k.startswith("%")}
                    booleans = {
                        name: sat_values[var]
                        for var, name in cnf.bool_of_var.items()
                        if sat_values[var] is not None
                    }
                    return SatResult("sat", arith, booleans)
            finally:
                self._simplex.pop_state()

            # Learn the theory conflict and continue.  Theory lemmas are
            # valid independently of any scope, so they persist across
            # pops — the incremental payoff.
            lemma = [-lit for lit in conflict]
            if proof is not None:
                proof.append(("lemma", tuple(lemma), self._farkas_entries(farkas)))
            self._sat.add_clause(lemma)
        return SatResult("unknown")

    # -- helpers ---------------------------------------------------------------

    def _farkas_entries(self, farkas) -> Tuple[Tuple[int, Fraction], ...]:
        """Convert a simplex conflict's bound-level Farkas coefficients to
        atom-level ``(literal, coefficient)`` pairs.

        The simplex speaks bounds on targets (variables or slacks); the
        validator speaks inequalities over the atoms' own expressions.
        ``_atom_meta`` holds the bridge: for atom literal ``v`` with
        ``(sign, factor)``, the asserted *upper* bound inequality equals
        ``(sign/factor)·atom.expr OP 0`` and the *lower* bound inequality
        ``(-sign/factor)·atom.expr OP 0``.  For every inequality atom the
        polarity the plan asserts matches the validator's fixed literal
        denotation, so the converted coefficient is simply ``λ/factor``;
        equality atoms (both bounds, one positive literal) carry a signed
        coefficient.  ``%one`` bounds never reach a conflict (slack rows
        are constant-free) and are skipped defensively — the validator
        rejects, never accepts, if that assumption were ever violated.
        """
        atoms = self._encoder.cnf.atom_of_var
        entries: List[Tuple[int, Fraction]] = []
        for bound, coeff in farkas:
            tag = bound.tag
            if not isinstance(tag, int):
                continue
            sign, factor = self._atom_meta[abs(tag)]
            if atoms[abs(tag)].op == "=":
                mu = coeff * sign / factor
                if not bound.is_upper:
                    mu = -mu
            else:
                mu = coeff / factor
            entries.append((tag, mu))
        return tuple(entries)

    def _bound_target(self, expr: LinExpr) -> Tuple[str, int, Fraction, Fraction]:
        """Map ``expr OP 0`` to a bound on a single simplex variable.

        Returns ``(var, sign, limit, factor)`` such that ``expr <= 0`` is
        ``var <= limit`` when ``sign > 0`` and ``var >= limit`` when
        ``sign < 0`` (strictness carries over; ``expr = 0`` pins ``var``
        to ``limit`` either way); ``factor`` is the positive scale with
        ``expr == canonical_form * factor``, kept for certificate
        emission.

        Single-variable expressions bound the variable directly — in
        *both* orientations, so ``x >= c`` (normalized ``-x + c``) costs
        no tableau row.  Multi-variable bodies share one slack variable
        per sign-canonical form: ``x - y`` and ``y - x`` hit the same
        row with opposite signs.
        """
        canon, factor = expr.normalized()
        shift = canon.const
        body = canon - shift
        names = body.variables()
        if len(names) == 1:
            name = names[0]
            coeff = body.coeff(name)
            # normalized() scales by |lead coeff|, so coeff is ±1 here.
            if coeff == 1:
                self._simplex.add_variable(name)
                return name, 1, -shift, factor
            if coeff == -1:
                self._simplex.add_variable(name)
                return name, -1, shift, factor
        sign = 1
        if body.coeff(names[0]) < 0:
            body = -body
            sign = -1
        slack_entry = self._slack_of.get(body)
        if slack_entry is None:
            slack = f"%s{len(self._slack_of)}"
            self._simplex.define(slack, body)
            self._slack_of[body] = (slack, Fraction(1))
            slack_entry = self._slack_of[body]
        slack, _ = slack_entry
        # canon OP 0  ⇔  sign*body + shift OP 0  ⇔  sign*slack OP -shift.
        return slack, sign, (-shift if sign > 0 else shift), factor

    def _add_equality_splits(self) -> None:
        cnf = self._encoder.cnf
        for var, atom in list(cnf.atom_of_var.items()):
            if atom.op != "=" or var in self._splits_done:
                continue
            self._splits_done.add(var)
            lt = self._encoder.literal(F.FAtom("<", atom.expr))
            gt = self._encoder.literal(F.FAtom("<", -atom.expr))
            # x=0 ∨ x<0 ∨ x>0 — lets a negated equality satisfy the theory.
            self._encoder.cnf.clauses.append((var, lt, gt))
            # Mutual exclusion speeds the search (theory would find these).
            self._encoder.cnf.clauses.append((-var, -lt))
            self._encoder.cnf.clauses.append((-var, -gt))

    def _plan_atom(
        self, var: int, atom: F.FAtom
    ) -> Tuple[
        str,
        Optional[DeltaRat],
        Optional[DeltaRat],
        Optional[DeltaRat],
        Optional[DeltaRat],
    ]:
        """Precompute the simplex bounds the atom induces, both polarities.

        The plan is ``(target, pos_upper, pos_lower, neg_upper,
        neg_lower)``: the upper/lower bounds to assert on ``target`` when
        the atom is true (``pos_*``) or false (``neg_*``); strict bounds
        carry a ∓δ.  A negated equality asserts nothing — it is handled
        by the equality split clause.
        """
        target, sign, limit, factor = self._bound_target(atom.expr)
        self._atom_meta[var] = (sign, factor)
        weak = DeltaRat(limit)
        if atom.op == "=":
            plan = (target, weak, weak, None, None)
        elif atom.op == "<=":
            if sign > 0:  # true: target <= limit; false: target > limit
                plan = (target, weak, None, None, DeltaRat(limit, Fraction(1)))
            else:  # true: target >= limit; false: target < limit
                plan = (target, None, weak, DeltaRat(limit, Fraction(-1)), None)
        else:  # "<"
            if sign > 0:  # true: target < limit; false: target >= limit
                plan = (target, DeltaRat(limit, Fraction(-1)), None, None, weak)
            else:  # true: target > limit; false: target <= limit
                plan = (target, None, DeltaRat(limit, Fraction(1)), weak, None)
        self._atom_plan[var] = plan
        return plan


def check_formulas(*assertions: F.Formula, max_rounds: int = 100_000) -> SatResult:
    """Convenience: check the conjunction of ``assertions``."""
    solver = SMTSolver(max_rounds=max_rounds)
    for node in assertions:
        solver.add(node)
    return solver.check()
