"""The lazy DPLL(T) loop: CDCL SAT core + simplex theory solver.

The loop is the classic lemmas-on-demand architecture:

1. Tseitin-encode the asserted formulas to CNF.
2. Ask the SAT core for a propositional model.
3. Translate the model's theory literals into simplex bounds and check
   feasibility.
4. If infeasible, add the (negated) conflict set as a new clause and
   repeat; otherwise report SAT with a concrete rational model.

Equality atoms get a theory-split clause ``(x = y) ∨ (x < y) ∨ (x > y)``
at encoding time so that *negated* equalities never reach the simplex
(which cannot represent disequalities).

The solver is **incremental**: the SAT core, the Tseitin encoding and
the simplex tableau persist across :meth:`SMTSolver.check` calls, so
formulas added after a check only pay for their own clauses, and theory
lemmas learned in one query prune the search in the next.  On top of
that, :meth:`SMTSolver.push`/:meth:`SMTSolver.pop` provide retractable
assertion scopes in the MiniSat style: each scope owns a fresh
*selector* variable, scoped clauses are guarded by its negation, checks
pass the active selectors as solve-time assumptions, and popping a
scope permanently asserts the negated selector (deactivating its
clauses without disturbing anything learned from them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.solver import formula as F
from repro.solver.cnf import TseitinEncoder
from repro.solver.delta import DeltaRat
from repro.solver.linear import LinExpr
from repro.solver.sat import CDCLSolver
from repro.solver.simplex import Infeasible, Simplex


@dataclass
class SatResult:
    """Outcome of a satisfiability check."""

    status: str  # "sat" | "unsat" | "unknown"
    arith_model: Dict[str, Fraction] = field(default_factory=dict)
    bool_model: Dict[str, bool] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class SMTSolver:
    """An incremental SMT solver: assert, :meth:`check`, assert more, …

    ``push()``/``pop()`` open and close retractable assertion scopes;
    assertions made outside any scope are permanent.  :attr:`solve_calls`
    counts the DPLL(T) checks actually executed (the currency the
    benchmark suite reports).
    """

    def __init__(self, max_rounds: int = 100_000) -> None:
        self._encoder = TseitinEncoder()
        self._max_rounds = max_rounds
        # Persistent engines.
        self._sat = CDCLSolver()
        self._simplex = Simplex()
        self._slack_of: Dict[LinExpr, Tuple[str, Fraction]] = {}
        # Incremental bookkeeping.
        self._synced = 0  # clauses already handed to the SAT core
        self._splits_done: Set[int] = set()  # equality atoms already split
        self._scopes: List[int] = []  # active selector variables
        self.solve_calls = 0

    # -- assertion scopes ------------------------------------------------------

    @property
    def scope_depth(self) -> int:
        return len(self._scopes)

    def push(self) -> None:
        """Open a retractable assertion scope."""
        self._scopes.append(self._encoder.new_selector())

    def pop(self) -> None:
        """Close the innermost scope, retracting its assertions."""
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        selector = self._scopes.pop()
        # Permanently false selector: every clause guarded by -selector is
        # satisfied, i.e. dead — clauses learned *from* them stay valid.
        self._encoder.cnf.clauses.append((-selector,))

    def add(self, node: F.Formula) -> None:
        """Assert ``node`` in the current scope (permanent when no scope)."""
        if not self._scopes:
            self._encoder.assert_formula(node)
        else:
            self._assert_scoped(node, self._scopes[-1])

    def _assert_scoped(self, node: F.Formula, selector: int) -> None:
        if isinstance(node, F.FTrue):
            return
        if isinstance(node, F.FFalse):
            self._encoder.cnf.clauses.append((-selector,))
            return
        # Split top-level conjunctions exactly like assert_formula does,
        # guarding each conjunct — keeps the CNF small for VC premises.
        if isinstance(node, F.FAnd):
            for arg in node.args:
                self._assert_scoped(arg, selector)
            return
        literal = self._encoder.literal(node)
        self._encoder.cnf.clauses.append((-selector, literal))

    # -- the check -------------------------------------------------------------

    def check(self) -> SatResult:
        cnf = self._encoder.cnf
        self._add_equality_splits()
        self._sat.ensure_vars(cnf.num_vars)
        while self._synced < len(cnf.clauses):
            self._sat.add_clause(cnf.clauses[self._synced])
            self._synced += 1

        assumptions = tuple(self._scopes)
        self.solve_calls += 1
        rounds = 0
        while rounds < self._max_rounds:
            rounds += 1
            if not self._sat.solve(assumptions):
                return SatResult("unsat")
            model = self._sat.model()

            self._simplex.reset_bounds()
            conflict: Optional[set] = None
            try:
                for var, atom in cnf.atom_of_var.items():
                    value = model.get(var)
                    if value is None:
                        continue
                    literal = var if value else -var
                    if value:
                        self._assert_atom(atom, literal)
                    else:
                        self._assert_negated_atom(atom, literal)
                self._simplex.check()
            except Infeasible as err:
                conflict = {t for t in err.conflict if isinstance(t, int)}

            if conflict is None:
                arith = self._simplex.concrete_model()
                arith = {k: v for k, v in arith.items() if not k.startswith("%")}
                booleans = {
                    name: model[var]
                    for var, name in cnf.bool_of_var.items()
                    if var in model
                }
                return SatResult("sat", arith, booleans)

            # Learn the theory conflict and continue.  Theory lemmas are
            # valid independently of any scope, so they persist across
            # pops — the incremental payoff.
            self._sat.add_clause([-lit for lit in conflict])
        return SatResult("unknown")

    # -- helpers ---------------------------------------------------------------

    def _bound_target(self, expr: LinExpr) -> Tuple[str, Fraction, Fraction]:
        """Map ``expr OP 0`` to a bound on a single simplex variable.

        Returns ``(var, scale, shift)`` with ``expr == scale*(var) +
        shift`` and ``scale > 0``; the bound ``expr <= 0`` becomes
        ``var <= -shift/scale``.
        """
        canon, factor = expr.normalized()
        shift = canon.const
        body = canon - shift
        terms = body.terms
        if len(terms) == 1:
            ((name, coeff),) = terms.items()
            if coeff == 1:
                self._simplex.add_variable(name)
                return name, factor, shift * factor
        if body not in self._slack_of:
            slack = f"%s{len(self._slack_of)}"
            self._simplex.define(slack, body)
            self._slack_of[body] = (slack, Fraction(1))
        slack, _ = self._slack_of[body]
        return slack, factor, shift * factor

    def _add_equality_splits(self) -> None:
        cnf = self._encoder.cnf
        for var, atom in list(cnf.atom_of_var.items()):
            if atom.op != "=" or var in self._splits_done:
                continue
            self._splits_done.add(var)
            lt = self._encoder.literal(F.FAtom("<", atom.expr))
            gt = self._encoder.literal(F.FAtom("<", -atom.expr))
            # x=0 ∨ x<0 ∨ x>0 — lets a negated equality satisfy the theory.
            self._encoder.cnf.clauses.append((var, lt, gt))
            # Mutual exclusion speeds the search (theory would find these).
            self._encoder.cnf.clauses.append((-var, -lt))
            self._encoder.cnf.clauses.append((-var, -gt))

    def _assert_atom(self, atom: F.FAtom, tag: int) -> None:
        var, scale, shift = self._bound_target(atom.expr)
        # atom.expr OP 0  with  atom.expr = scale*var + shift, scale > 0.
        limit = -shift / scale
        if atom.op == "<=":
            self._simplex.assert_upper(var, DeltaRat(limit), tag)
        elif atom.op == "<":
            self._simplex.assert_upper(var, DeltaRat(limit, Fraction(-1)), tag)
        else:  # "="
            self._simplex.assert_upper(var, DeltaRat(limit), tag)
            self._simplex.assert_lower(var, DeltaRat(limit), tag)

    def _assert_negated_atom(self, atom: F.FAtom, tag: int) -> None:
        if atom.op == "=":
            # Handled by the split clause; nothing to assert.
            return
        var, scale, shift = self._bound_target(atom.expr)
        limit = -shift / scale
        if atom.op == "<=":
            # ¬(e <= 0) is e > 0.
            self._simplex.assert_lower(var, DeltaRat(limit, Fraction(1)), tag)
        else:
            # ¬(e < 0) is e >= 0.
            self._simplex.assert_lower(var, DeltaRat(limit), tag)


def check_formulas(*assertions: F.Formula, max_rounds: int = 100_000) -> SatResult:
    """Convenience: check the conjunction of ``assertions``."""
    solver = SMTSolver(max_rounds=max_rounds)
    for node in assertions:
        solver.add(node)
    return solver.check()
