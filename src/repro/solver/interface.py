"""High-level validity checking over ShadowDP expressions.

This is the interface the type checker and verifier actually use: they
ask whether ``premises ⊨ goal`` for boolean ShadowDP expressions.  The
check is performed by refutation: ``premises ∧ ¬goal`` is encoded and
handed to the DPLL(T) core; validity holds iff the query is unsatisfiable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.lang import ast
from repro.solver import formula as F
from repro.solver.encode import Encoder
from repro.solver.smt import SatResult, SMTSolver


class ValidityChecker:
    """Checks entailments between ShadowDP boolean expressions.

    The checker is stateless apart from its configuration, and exposes a
    simple cache: typing a single program asks many identical questions
    (e.g. the loop fixpoint re-checks the body).
    """

    def __init__(self, bool_vars: Optional[Set[str]] = None) -> None:
        self.bool_vars = set(bool_vars or ())
        self._cache: Dict[Tuple, bool] = {}
        self.queries = 0
        self.cache_hits = 0

    def is_valid(self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()) -> bool:
        """True iff ``premises ⊨ goal`` in linear real arithmetic.

        Sound but incomplete in the presence of nonlinear subterms (they
        are abstracted as opaque constants): a True answer is always
        trustworthy, a False answer may be a spurious abstraction effect.
        This matches how the pipeline uses the answer — a failed check
        makes the type checker reject (conservative direction).
        """
        premises = tuple(premises)
        key = (goal, premises, frozenset(self.bool_vars))
        self.queries += 1
        if key in self._cache:
            self.cache_hits += 1
            return self._cache[key]

        encoder = Encoder(bool_vars=self.bool_vars)
        solver = SMTSolver()
        for premise in premises:
            solver.add(encoder.boolean(premise))
        solver.add(F.mk_not(encoder.boolean(goal)))
        result = solver.check()
        answer = result.is_unsat
        self._cache[key] = answer
        return answer

    def find_model(
        self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()
    ) -> Optional[Tuple[Dict[str, Fraction], Dict[str, bool]]]:
        """A counterexample to ``premises ⊨ goal``, or None if valid.

        Returns ``(arithmetic model, boolean model)`` making all premises
        true and the goal false.
        """
        encoder = Encoder(bool_vars=self.bool_vars)
        solver = SMTSolver()
        for premise in premises:
            solver.add(encoder.boolean(premise))
        solver.add(F.mk_not(encoder.boolean(goal)))
        result = solver.check()
        if result.is_unsat:
            return None
        if result.status != "sat":
            raise RuntimeError("solver gave up (round limit)")
        return result.arith_model, result.bool_model

    def is_satisfiable(self, exprs: Iterable[ast.Expr]) -> SatResult:
        """Check satisfiability of a conjunction of boolean expressions."""
        encoder = Encoder(bool_vars=self.bool_vars)
        solver = SMTSolver()
        for expr in exprs:
            solver.add(encoder.boolean(expr))
        return solver.check()


def is_valid(goal: ast.Expr, premises: Iterable[ast.Expr] = (), bool_vars: Optional[Set[str]] = None) -> bool:
    """One-shot validity query (see :meth:`ValidityChecker.is_valid`)."""
    return ValidityChecker(bool_vars=bool_vars).is_valid(goal, premises)


def find_model(goal: ast.Expr, premises: Iterable[ast.Expr] = (), bool_vars: Optional[Set[str]] = None):
    """One-shot counterexample query (see :meth:`ValidityChecker.find_model`)."""
    return ValidityChecker(bool_vars=bool_vars).find_model(goal, premises)
