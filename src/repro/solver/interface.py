"""High-level validity checking over ShadowDP expressions.

This is the interface the type checker and verifier actually use: they
ask whether ``premises ⊨ goal`` for boolean ShadowDP expressions.  The
check is performed by refutation: ``premises ∧ ¬goal`` is encoded and
handed to the DPLL(T) core; validity holds iff the query is unsatisfiable.

Queries are memoized in a :class:`~repro.solver.context.QueryCache`
keyed on the *normalized* query (simplified goal, deduplicated and
canonically ordered premises), so alpha-trivial variants — permuted
premise lists, ``x+0`` vs ``x`` — share one entry.  Each checker owns a
private cache by default; pass a shared one to pool answers across
checkers (the pipeline does this for whole batch runs).  A refuted
query's countermodel is captured from the same solve that refuted it,
so ``is_valid`` followed by ``find_model`` costs one solver call, not
two.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.lang import ast
from repro.solver import formula as F
from repro.solver.context import Model, QueryCache, entry_from_result, normalize_query
from repro.solver.encode import Encoder
from repro.solver.profile import SolverProfile
from repro.solver.smt import SatResult, SMTSolver


class ValidityChecker:
    """Checks entailments between ShadowDP boolean expressions.

    The checker is stateless apart from its configuration and cache:
    typing a single program asks many identical questions (e.g. the loop
    fixpoint re-checks the body), and batch runs repeat whole premise
    sets across obligations.
    """

    def __init__(
        self,
        bool_vars: Optional[Set[str]] = None,
        cache: Optional[QueryCache] = None,
        witness: bool = False,
    ) -> None:
        self.bool_vars = set(bool_vars or ())
        self.cache = cache if cache is not None else QueryCache()
        self.queries = 0
        self.cache_hits = 0
        self.solve_calls = 0
        #: Emit proof certificates for valid answers (see repro.witness).
        self.witness = witness
        #: The certificate behind the most recent valid answer, or None.
        self.last_certificate = None
        #: Inner-loop counters accumulated over every solve this checker ran.
        self.profile = SolverProfile()

    # -- core entailment -------------------------------------------------------

    def entailment(
        self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()
    ) -> Tuple[bool, Optional[Model]]:
        """``(valid, countermodel)`` for ``premises ⊨ goal`` in one solve.

        Sound but incomplete in the presence of nonlinear subterms (they
        are abstracted as opaque constants): a True answer is always
        trustworthy, a False answer may be a spurious abstraction effect.
        This matches how the pipeline uses the answer — a failed check
        makes the type checker reject (conservative direction).  The
        countermodel is None when the goal is valid or the solver gave
        up (round limit).
        """
        premises = tuple(premises)
        self.queries += 1
        key = normalize_query(goal, premises, self.bool_vars)
        # Single flight (see QueryCache.acquire): a concurrent identical
        # query waits for this solve instead of duplicating it.
        entry = self.cache.acquire(key)
        if entry is not None:
            self.cache_hits += 1
            self.last_certificate = entry.certificate
            return entry.valid, entry.model

        try:
            result, solver = self._solve(goal, premises)
        except BaseException:
            self.cache.cancel(key)
            raise
        self.solve_calls += 1
        entry = entry_from_result(result)
        if self.witness and entry.valid:
            from repro.witness.emit import certificate_from_solver

            entry.certificate = certificate_from_solver(solver)
        self.last_certificate = entry.certificate
        self.cache.store(key, entry)
        return entry.valid, entry.model

    def is_valid(self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()) -> bool:
        """True iff ``premises ⊨ goal`` in linear real arithmetic."""
        valid, _ = self.entailment(goal, premises)
        return valid

    def find_model(
        self, goal: ast.Expr, premises: Iterable[ast.Expr] = ()
    ) -> Optional[Model]:
        """A counterexample to ``premises ⊨ goal``, or None if valid.

        Returns ``(arithmetic model, boolean model)`` making all premises
        true and the goal false.  After an ``is_valid`` miss on the same
        query this is a pure cache hit — the model was captured by the
        refuting solve.
        """
        valid, model = self.entailment(goal, premises)
        if valid:
            return None
        if model is None:
            raise RuntimeError("solver gave up (round limit)")
        return model

    def is_satisfiable(self, exprs: Iterable[ast.Expr]) -> SatResult:
        """Check satisfiability of a conjunction of boolean expressions."""
        encoder = Encoder(bool_vars=self.bool_vars)
        solver = SMTSolver()
        for expr in exprs:
            solver.add(encoder.boolean(expr))
        return solver.check()

    # -- internals -------------------------------------------------------------

    def _solve(
        self, goal: ast.Expr, premises: Tuple[ast.Expr, ...]
    ) -> Tuple[SatResult, SMTSolver]:
        encoder = Encoder(bool_vars=self.bool_vars)
        solver = SMTSolver(profile=self.profile)
        if self.witness:
            solver.enable_proof()
        for premise in premises:
            solver.add(encoder.boolean(premise))
        solver.add(F.mk_not(encoder.boolean(goal)))
        return solver.check(), solver


def is_valid(goal: ast.Expr, premises: Iterable[ast.Expr] = (), bool_vars: Optional[Set[str]] = None) -> bool:
    """One-shot validity query (see :meth:`ValidityChecker.is_valid`)."""
    return ValidityChecker(bool_vars=bool_vars).is_valid(goal, premises)


def find_model(goal: ast.Expr, premises: Iterable[ast.Expr] = (), bool_vars: Optional[Set[str]] = None):
    """One-shot counterexample query (see :meth:`ValidityChecker.find_model`)."""
    return ValidityChecker(bool_vars=bool_vars).find_model(goal, premises)
