"""The solver's logic IR: boolean structure over linear-arithmetic atoms.

Formulas are immutable and **hash-consed**: every constructor returns the
canonical node for its arguments (see :mod:`repro.solver.intern`), so
structural equality is pointer equality, ``hash()`` is a precomputed
integer, and the traversal results of :func:`atoms_of` /
:func:`bool_vars_of` / :func:`arith_vars_of` are cached on the node and
shared by every owner of the term.

The smart constructors (``mk_and`` etc.) also perform cheap
simplifications (flattening, constant elimination, duplicate removal).
Atoms are kept in a normal form ``lin OP 0`` with ``OP`` one of ``<=``,
``<`` or ``=``; :func:`mk_atom` handles the other comparison directions
by negation and operand swapping.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.solver import intern
from repro.solver.linear import LinExpr

# Atom comparison operators, all against zero.
ATOM_OPS = ("<=", "<", "=")

_EMPTY = frozenset()


class Formula:
    """Base class for formula nodes.

    Nodes are interned: ``==`` is identity, ``hash`` is precomputed, and
    the ``_atoms``/``_bvars``/``_avars`` slots lazily cache the leaf sets
    of the subtree (filled by :func:`atoms_of` and friends).
    """

    __slots__ = ("_hash", "_atoms", "_bvars", "_avars")

    def __hash__(self) -> int:
        return self._hash

    # Equality is object identity (inherited) — correct under interning.


def _new_node(cls, key: tuple):
    """Allocate an uncached node shell for ``key`` (caches unset)."""
    self = object.__new__(cls)
    self._hash = hash(key)
    self._atoms = None
    self._bvars = None
    self._avars = None
    return self


class FTrue(Formula):
    __slots__ = ()

    def __new__(cls) -> "FTrue":
        key = (cls,)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = _new_node(cls, key)
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __repr__(self) -> str:
        return "FTrue()"

    def __reduce__(self):
        return (FTrue, ())


class FFalse(Formula):
    __slots__ = ()

    def __new__(cls) -> "FFalse":
        key = (cls,)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = _new_node(cls, key)
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __repr__(self) -> str:
        return "FFalse()"

    def __reduce__(self):
        return (FFalse, ())


TRUE_F = FTrue()
FALSE_F = FFalse()


class BVar(Formula):
    """A propositional variable (a source-level boolean)."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "BVar":
        key = (cls, name)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = _new_node(cls, key)
        self.name = name
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __repr__(self) -> str:
        return f"BVar(name={self.name!r})"

    def __reduce__(self):
        return (BVar, (self.name,))


class FAtom(Formula):
    """The linear-arithmetic atom ``expr OP 0``."""

    __slots__ = ("op", "expr")

    def __new__(cls, op: str, expr: LinExpr) -> "FAtom":
        if op not in ATOM_OPS:
            raise ValueError(f"bad atom operator {op!r}")
        key = (cls, op, expr)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = _new_node(cls, key)
        self.op = op
        self.expr = expr
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __repr__(self) -> str:
        return f"FAtom(op={self.op!r}, expr={self.expr!r})"

    def __reduce__(self):
        return (FAtom, (self.op, self.expr))


class FNot(Formula):
    __slots__ = ("operand",)

    def __new__(cls, operand: Formula) -> "FNot":
        key = (cls, operand)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = _new_node(cls, key)
        self.operand = operand
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __repr__(self) -> str:
        return f"FNot(operand={self.operand!r})"

    def __reduce__(self):
        return (FNot, (self.operand,))


class FAnd(Formula):
    __slots__ = ("args",)

    def __new__(cls, args: Tuple[Formula, ...]) -> "FAnd":
        args = tuple(args)
        key = (cls, args)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = _new_node(cls, key)
        self.args = args
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __repr__(self) -> str:
        return f"FAnd(args={self.args!r})"

    def __reduce__(self):
        return (FAnd, (self.args,))


class FOr(Formula):
    __slots__ = ("args",)

    def __new__(cls, args: Tuple[Formula, ...]) -> "FOr":
        args = tuple(args)
        key = (cls, args)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = _new_node(cls, key)
        self.args = args
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __repr__(self) -> str:
        return f"FOr(args={self.args!r})"

    def __reduce__(self):
        return (FOr, (self.args,))


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def mk_atom(op: str, lhs: LinExpr, rhs: LinExpr = None) -> Formula:
    """Build a normalized atom ``lhs OP rhs`` (``rhs`` defaults to 0).

    Supported operators: ``<``, ``<=``, ``>``, ``>=``, ``==``, ``!=``.
    Constant atoms fold to ``TRUE_F`` / ``FALSE_F``.
    """
    if rhs is None:
        rhs = LinExpr()
    diff = lhs - rhs
    if op == ">":
        return mk_atom("<", rhs, lhs)
    if op == ">=":
        return mk_atom("<=", rhs, lhs)
    if op == "==":
        op = "="
    if op == "!=":
        return mk_not(mk_atom("=", lhs, rhs))
    if op not in ATOM_OPS:
        raise ValueError(f"bad comparison {op!r}")
    if diff.is_constant():
        value = diff.constant_value()
        holds = {"<=": value <= 0, "<": value < 0, "=": value == 0}[op]
        return TRUE_F if holds else FALSE_F
    if op == "=":
        # Canonical orientation for equalities: make the leading
        # coefficient positive so `x = y` and `y = x` coincide.
        lead = min(diff.iter_terms())[0]
        if diff.coeff(lead) < 0:
            diff = -diff
    return FAtom(op, diff)


def mk_not(operand: Formula) -> Formula:
    if operand is TRUE_F:
        return FALSE_F
    if operand is FALSE_F:
        return TRUE_F
    if isinstance(operand, FNot):
        return operand.operand
    return FNot(operand)


def _flatten(args: Iterable[Formula], cls) -> Tuple[Formula, ...]:
    flat = []
    seen = set()
    for arg in args:
        parts = arg.args if isinstance(arg, cls) else (arg,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    return tuple(flat)


def mk_and(*args: Formula) -> Formula:
    flat = _flatten(args, FAnd)
    kept = []
    for arg in flat:
        if isinstance(arg, FFalse):
            return FALSE_F
        if isinstance(arg, FTrue):
            continue
        kept.append(arg)
    negated = {mk_not(a) for a in kept}
    if negated.intersection(kept):
        return FALSE_F
    if not kept:
        return TRUE_F
    if len(kept) == 1:
        return kept[0]
    return FAnd(tuple(kept))


def mk_or(*args: Formula) -> Formula:
    flat = _flatten(args, FOr)
    kept = []
    for arg in flat:
        if isinstance(arg, FTrue):
            return TRUE_F
        if isinstance(arg, FFalse):
            continue
        kept.append(arg)
    negated = {mk_not(a) for a in kept}
    if negated.intersection(kept):
        return TRUE_F
    if not kept:
        return FALSE_F
    if len(kept) == 1:
        return kept[0]
    return FOr(tuple(kept))


def mk_implies(premise: Formula, conclusion: Formula) -> Formula:
    return mk_or(mk_not(premise), conclusion)


def mk_iff(left: Formula, right: Formula) -> Formula:
    return mk_and(mk_implies(left, right), mk_implies(right, left))


def mk_ite(cond: Formula, then: Formula, orelse: Formula) -> Formula:
    """Boolean if-then-else."""
    return mk_and(mk_implies(cond, then), mk_implies(mk_not(cond), orelse))


# ---------------------------------------------------------------------------
# Traversal helpers (results cached on the interned node)
# ---------------------------------------------------------------------------


def _children(node: Formula) -> Tuple[Formula, ...]:
    if isinstance(node, FNot):
        return (node.operand,)
    if isinstance(node, (FAnd, FOr)):
        return node.args
    return ()


def _fill_leaf_caches(root: Formula) -> None:
    """Compute and cache the atom/bvar/arith-var sets for ``root``.

    Iterative post-order (two-phase stack, safe for shared sub-DAGs):
    caches already present on shared subterms are reused, so across a
    workload each distinct node is visited once.
    """
    stack = [(root, False)]
    while stack:
        node, ready = stack.pop()
        if node._atoms is not None:
            continue
        if not ready:
            stack.append((node, True))
            for child in _children(node):
                if child._atoms is None:
                    stack.append((child, False))
            continue
        if isinstance(node, FAtom):
            node._atoms = frozenset((node,))
            node._bvars = _EMPTY
            node._avars = frozenset(node.expr.variables())
        elif isinstance(node, BVar):
            node._atoms = _EMPTY
            node._bvars = frozenset((node,))
            node._avars = _EMPTY
        elif isinstance(node, FNot):
            child = node.operand
            node._atoms = child._atoms
            node._bvars = child._bvars
            node._avars = child._avars
        elif isinstance(node, (FAnd, FOr)):
            atoms = []
            bvars = []
            avars = []
            for child in node.args:
                atoms.append(child._atoms)
                bvars.append(child._bvars)
                avars.append(child._avars)
            node._atoms = frozenset().union(*atoms) if atoms else _EMPTY
            node._bvars = frozenset().union(*bvars) if bvars else _EMPTY
            node._avars = frozenset().union(*avars) if avars else _EMPTY
        else:  # FTrue / FFalse
            node._atoms = _EMPTY
            node._bvars = _EMPTY
            node._avars = _EMPTY


def atoms_of(node: Formula) -> frozenset:
    """All ``FAtom`` leaves of a formula (cached on the node)."""
    if node._atoms is None:
        _fill_leaf_caches(node)
    return node._atoms


def bool_vars_of(node: Formula) -> frozenset:
    """All ``BVar`` leaves of a formula (cached on the node)."""
    if node._atoms is None:
        _fill_leaf_caches(node)
    return node._bvars


def arith_vars_of(node: Formula) -> frozenset:
    """All arithmetic variable names occurring in a formula's atoms
    (cached on the node)."""
    if node._atoms is None:
        _fill_leaf_caches(node)
    return node._avars


def evaluate(node: Formula, arith: dict, booleans: dict = None) -> bool:
    """Evaluate a formula under concrete rational/boolean assignments.

    Used by tests and by model validation after a SAT answer.
    """
    booleans = booleans or {}
    if isinstance(node, FTrue):
        return True
    if isinstance(node, FFalse):
        return False
    if isinstance(node, BVar):
        return bool(booleans[node.name])
    if isinstance(node, FAtom):
        value = node.expr.evaluate(arith)
        if node.op == "<=":
            return value <= 0
        if node.op == "<":
            return value < 0
        return value == 0
    if isinstance(node, FNot):
        return not evaluate(node.operand, arith, booleans)
    if isinstance(node, FAnd):
        return all(evaluate(a, arith, booleans) for a in node.args)
    if isinstance(node, FOr):
        return any(evaluate(a, arith, booleans) for a in node.args)
    raise TypeError(f"evaluate: unknown formula {node!r}")
