"""The solver's logic IR: boolean structure over linear-arithmetic atoms.

Formulas are immutable and hash-consed by construction through the smart
constructors (``mk_and`` etc.), which also perform cheap simplifications
(flattening, constant elimination, duplicate removal).  Atoms are kept in
a normal form ``lin OP 0`` with ``OP`` one of ``<=``, ``<`` or ``=``; the
smart constructor :func:`mk_atom` handles the other comparison directions
by negation and operand swapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Tuple

from repro.solver.linear import LinExpr

# Atom comparison operators, all against zero.
ATOM_OPS = ("<=", "<", "=")


class Formula:
    """Base class for formula nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class FTrue(Formula):
    pass


@dataclass(frozen=True)
class FFalse(Formula):
    pass


TRUE_F = FTrue()
FALSE_F = FFalse()


@dataclass(frozen=True)
class BVar(Formula):
    """A propositional variable (a source-level boolean)."""

    name: str


@dataclass(frozen=True)
class FAtom(Formula):
    """The linear-arithmetic atom ``expr OP 0``."""

    op: str
    expr: LinExpr

    def __post_init__(self) -> None:
        if self.op not in ATOM_OPS:
            raise ValueError(f"bad atom operator {self.op!r}")


@dataclass(frozen=True)
class FNot(Formula):
    operand: Formula


@dataclass(frozen=True)
class FAnd(Formula):
    args: Tuple[Formula, ...]


@dataclass(frozen=True)
class FOr(Formula):
    args: Tuple[Formula, ...]


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def mk_atom(op: str, lhs: LinExpr, rhs: LinExpr = None) -> Formula:
    """Build a normalized atom ``lhs OP rhs`` (``rhs`` defaults to 0).

    Supported operators: ``<``, ``<=``, ``>``, ``>=``, ``==``, ``!=``.
    Constant atoms fold to ``TRUE_F`` / ``FALSE_F``.
    """
    if rhs is None:
        rhs = LinExpr()
    diff = lhs - rhs
    if op == ">":
        return mk_atom("<", rhs, lhs)
    if op == ">=":
        return mk_atom("<=", rhs, lhs)
    if op == "==":
        op = "="
    if op == "!=":
        return mk_not(mk_atom("=", lhs, rhs))
    if op not in ATOM_OPS:
        raise ValueError(f"bad comparison {op!r}")
    if diff.is_constant():
        value = diff.constant_value()
        holds = {"<=": value <= 0, "<": value < 0, "=": value == 0}[op]
        return TRUE_F if holds else FALSE_F
    if op == "=":
        # Canonical orientation for equalities: make the leading
        # coefficient positive so `x = y` and `y = x` coincide.
        lead = min(diff.terms)
        if diff.coeff(lead) < 0:
            diff = -diff
    return FAtom(op, diff)


def mk_not(operand: Formula) -> Formula:
    if isinstance(operand, FTrue):
        return FALSE_F
    if isinstance(operand, FFalse):
        return TRUE_F
    if isinstance(operand, FNot):
        return operand.operand
    return FNot(operand)


def _flatten(args: Iterable[Formula], cls) -> Tuple[Formula, ...]:
    flat = []
    seen = set()
    for arg in args:
        parts = arg.args if isinstance(arg, cls) else (arg,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    return tuple(flat)


def mk_and(*args: Formula) -> Formula:
    flat = _flatten(args, FAnd)
    kept = []
    for arg in flat:
        if isinstance(arg, FFalse):
            return FALSE_F
        if isinstance(arg, FTrue):
            continue
        kept.append(arg)
    negated = {mk_not(a) for a in kept}
    if negated.intersection(kept):
        return FALSE_F
    if not kept:
        return TRUE_F
    if len(kept) == 1:
        return kept[0]
    return FAnd(tuple(kept))


def mk_or(*args: Formula) -> Formula:
    flat = _flatten(args, FOr)
    kept = []
    for arg in flat:
        if isinstance(arg, FTrue):
            return TRUE_F
        if isinstance(arg, FFalse):
            continue
        kept.append(arg)
    negated = {mk_not(a) for a in kept}
    if negated.intersection(kept):
        return TRUE_F
    if not kept:
        return FALSE_F
    if len(kept) == 1:
        return kept[0]
    return FOr(tuple(kept))


def mk_implies(premise: Formula, conclusion: Formula) -> Formula:
    return mk_or(mk_not(premise), conclusion)


def mk_iff(left: Formula, right: Formula) -> Formula:
    return mk_and(mk_implies(left, right), mk_implies(right, left))


def mk_ite(cond: Formula, then: Formula, orelse: Formula) -> Formula:
    """Boolean if-then-else."""
    return mk_and(mk_implies(cond, then), mk_implies(mk_not(cond), orelse))


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def atoms_of(node: Formula) -> frozenset:
    """All ``FAtom`` leaves of a formula."""
    found = set()
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, FAtom):
            found.add(item)
        elif isinstance(item, FNot):
            stack.append(item.operand)
        elif isinstance(item, (FAnd, FOr)):
            stack.extend(item.args)
    return frozenset(found)


def bool_vars_of(node: Formula) -> frozenset:
    """All ``BVar`` leaves of a formula."""
    found = set()
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, BVar):
            found.add(item)
        elif isinstance(item, FNot):
            stack.append(item.operand)
        elif isinstance(item, (FAnd, FOr)):
            stack.extend(item.args)
    return frozenset(found)


def arith_vars_of(node: Formula) -> frozenset:
    """All arithmetic variable names occurring in a formula's atoms."""
    names = set()
    for atom in atoms_of(node):
        names.update(atom.expr.variables())
    return frozenset(names)


def evaluate(node: Formula, arith: dict, booleans: dict = None) -> bool:
    """Evaluate a formula under concrete rational/boolean assignments.

    Used by tests and by model validation after a SAT answer.
    """
    booleans = booleans or {}
    if isinstance(node, FTrue):
        return True
    if isinstance(node, FFalse):
        return False
    if isinstance(node, BVar):
        return bool(booleans[node.name])
    if isinstance(node, FAtom):
        value = node.expr.evaluate(arith)
        if node.op == "<=":
            return value <= 0
        if node.op == "<":
            return value < 0
        return value == 0
    if isinstance(node, FNot):
        return not evaluate(node.operand, arith, booleans)
    if isinstance(node, FAnd):
        return all(evaluate(a, arith, booleans) for a in node.args)
    if isinstance(node, FOr):
        return any(evaluate(a, arith, booleans) for a in node.args)
    raise TypeError(f"evaluate: unknown formula {node!r}")
