"""The Dutertre–de Moura general simplex for linear real arithmetic.

This is the theory solver behind the DPLL(T) loop: it decides
satisfiability of a conjunction of bounds over variables related by fixed
linear equations (the *tableau*), and reports a small conflict set (a
subset of the asserted bounds that is already infeasible) when the
conjunction is unsatisfiable.

Strict inequalities are represented with delta-rationals
(:mod:`repro.solver.delta`), so ``x < c`` is the bound ``x <= c - δ``.

Reference: B. Dutertre and L. de Moura, "A Fast Linear-Arithmetic Solver
for DPLL(T)", CAV 2006.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.solver.delta import DeltaRat
from repro.solver.linear import LinExpr


@dataclass(frozen=True)
class Bound:
    """An asserted bound on a variable, tagged with its origin.

    ``tag`` is opaque to the simplex (the SMT layer stores SAT literals in
    it); conflict sets are reported as sets of tags.
    """

    var: str
    is_upper: bool
    value: DeltaRat
    tag: object


class Infeasible(Exception):
    """Raised by ``assert_bound``/``check`` with a conflict set of tags."""

    def __init__(self, conflict: Set[object]) -> None:
        super().__init__(f"infeasible: {conflict}")
        self.conflict = conflict


class Simplex:
    """A simplex instance over named variables.

    Usage: create, add tableau rows with :meth:`define`, then assert
    bounds and call :meth:`check`.  :meth:`push_state`/:meth:`pop_state`
    would be needed for online DPLL(T); this solver is used offline (the
    SMT loop re-asserts bounds per candidate assignment), so bounds can
    simply be reset with :meth:`reset_bounds`.
    """

    def __init__(self) -> None:
        # All variables, basic and nonbasic.
        self._vars: List[str] = []
        self._is_basic: Dict[str, bool] = {}
        # row[basic] maps nonbasic -> coefficient:  basic = Σ coeff · nonbasic
        self._rows: Dict[str, Dict[str, Fraction]] = {}
        self._assignment: Dict[str, DeltaRat] = {}
        self._lower: Dict[str, Optional[Bound]] = {}
        self._upper: Dict[str, Optional[Bound]] = {}

    # -- construction ---------------------------------------------------------

    def add_variable(self, name: str) -> None:
        if name in self._is_basic:
            return
        self._vars.append(name)
        self._is_basic[name] = False
        self._assignment[name] = DeltaRat(Fraction(0))
        self._lower[name] = None
        self._upper[name] = None

    def define(self, name: str, expr: LinExpr) -> None:
        """Introduce ``name`` as a basic variable equal to ``expr``.

        ``expr`` must be over existing (nonbasic or basic) variables; any
        basic variables it mentions are substituted out by their rows.
        The constant part of ``expr`` is folded in by introducing the
        canonical constant-one variable ``%one`` (bounded to 1).
        """
        if name in self._is_basic:
            raise ValueError(f"variable {name} already defined")
        row: Dict[str, Fraction] = {}

        def accumulate(var: str, coeff: Fraction) -> None:
            if coeff == 0:
                return
            if self._is_basic.get(var):
                for inner, inner_coeff in self._rows[var].items():
                    accumulate(inner, coeff * inner_coeff)
            else:
                row[var] = row.get(var, Fraction(0)) + coeff
                if row[var] == 0:
                    del row[var]

        for var, coeff in expr.terms.items():
            self.add_variable(var)
            accumulate(var, coeff)
        if expr.const != 0:
            one = self._constant_one()
            accumulate(one, expr.const)

        self._vars.append(name)
        self._is_basic[name] = True
        self._rows[name] = row
        self._lower[name] = None
        self._upper[name] = None
        self._assignment[name] = self._row_value(name)

    def _constant_one(self) -> str:
        name = "%one"
        if name not in self._is_basic:
            self.add_variable(name)
            one = DeltaRat(Fraction(1))
            self._lower[name] = Bound(name, False, one, "%one")
            self._upper[name] = Bound(name, True, one, "%one")
            self._update(name, one)
        return name

    def _row_value(self, basic: str) -> DeltaRat:
        total = DeltaRat(Fraction(0))
        for var, coeff in self._rows[basic].items():
            total = total + self._assignment[var].scale(coeff)
        return total

    # -- bound assertion -------------------------------------------------------

    def reset_bounds(self) -> None:
        """Retract all asserted bounds (tableau and assignment kept)."""
        for name in self._vars:
            self._lower[name] = None
            self._upper[name] = None
        if "%one" in self._is_basic:
            one = DeltaRat(Fraction(1))
            self._lower["%one"] = Bound("%one", False, one, "%one")
            self._upper["%one"] = Bound("%one", True, one, "%one")

    def assert_upper(self, var: str, value: DeltaRat, tag: object) -> None:
        self.add_variable(var)
        lower = self._lower[var]
        if lower is not None and value < lower.value:
            raise Infeasible({tag, lower.tag})
        upper = self._upper[var]
        if upper is not None and upper.value <= value:
            return
        self._upper[var] = Bound(var, True, value, tag)
        if not self._is_basic[var] and self._assignment[var] > value:
            self._update(var, value)

    def assert_lower(self, var: str, value: DeltaRat, tag: object) -> None:
        self.add_variable(var)
        upper = self._upper[var]
        if upper is not None and upper.value < value:
            raise Infeasible({tag, upper.tag})
        lower = self._lower[var]
        if lower is not None and lower.value >= value:
            return
        self._lower[var] = Bound(var, False, value, tag)
        if not self._is_basic[var] and self._assignment[var] < value:
            self._update(var, value)

    def _update(self, nonbasic: str, value: DeltaRat) -> None:
        delta = value - self._assignment[nonbasic]
        self._assignment[nonbasic] = value
        for basic, row in self._rows.items():
            coeff = row.get(nonbasic)
            if coeff:
                self._assignment[basic] = self._assignment[basic] + delta.scale(coeff)

    # -- pivoting ---------------------------------------------------------------

    def _pivot(self, basic: str, nonbasic: str) -> None:
        row = self._rows.pop(basic)
        coeff = row.pop(nonbasic)
        # basic = coeff * nonbasic + rest  =>  nonbasic = (basic - rest)/coeff
        new_row: Dict[str, Fraction] = {basic: Fraction(1) / coeff}
        for var, c in row.items():
            new_row[var] = -c / coeff
        self._is_basic[basic] = False
        self._is_basic[nonbasic] = True
        self._rows[nonbasic] = new_row
        # Substitute nonbasic out of all other rows.
        for other, other_row in self._rows.items():
            if other == nonbasic:
                continue
            factor = other_row.pop(nonbasic, None)
            if factor:
                for var, c in new_row.items():
                    other_row[var] = other_row.get(var, Fraction(0)) + factor * c
                    if other_row[var] == 0:
                        del other_row[var]

    def _pivot_and_update(self, basic: str, nonbasic: str, value: DeltaRat) -> None:
        coeff = self._rows[basic][nonbasic]
        theta = (value - self._assignment[basic]).scale(Fraction(1) / coeff)
        self._assignment[basic] = value
        self._assignment[nonbasic] = self._assignment[nonbasic] + theta
        for other, row in self._rows.items():
            if other == basic:
                continue
            c = row.get(nonbasic)
            if c:
                self._assignment[other] = self._assignment[other] + theta.scale(c)
        self._pivot(basic, nonbasic)

    # -- the check procedure -----------------------------------------------------

    def check(self) -> None:
        """Restore feasibility or raise :class:`Infeasible`.

        Uses Bland's rule (minimum variable index) for termination.
        """
        order = {name: i for i, name in enumerate(self._vars)}
        while True:
            violating = None
            below = False
            for name in sorted(self._rows, key=order.get):
                value = self._assignment[name]
                lower = self._lower[name]
                if lower is not None and value < lower.value:
                    violating, below = name, True
                    break
                upper = self._upper[name]
                if upper is not None and value > upper.value:
                    violating, below = name, False
                    break
            if violating is None:
                return
            row = self._rows[violating]
            candidate = None
            for var in sorted(row, key=order.get):
                coeff = row[var]
                if below:
                    can_help = (coeff > 0 and self._can_increase(var)) or (
                        coeff < 0 and self._can_decrease(var)
                    )
                else:
                    can_help = (coeff > 0 and self._can_decrease(var)) or (
                        coeff < 0 and self._can_increase(var)
                    )
                if can_help:
                    candidate = var
                    break
            if candidate is None:
                raise Infeasible(self._conflict_from_row(violating, below))
            target = self._lower[violating].value if below else self._upper[violating].value
            self._pivot_and_update(violating, candidate, target)

    def _can_increase(self, var: str) -> bool:
        upper = self._upper[var]
        return upper is None or self._assignment[var] < upper.value

    def _can_decrease(self, var: str) -> bool:
        lower = self._lower[var]
        return lower is None or self._assignment[var] > lower.value

    def _conflict_from_row(self, basic: str, below: bool) -> Set[object]:
        """The Farkas conflict: the violated bound on ``basic`` plus the
        binding bounds on every row variable (they jointly pin the row's
        value on the wrong side)."""
        conflict: Set[object] = set()
        own = self._lower[basic] if below else self._upper[basic]
        conflict.add(own.tag)
        for var, coeff in self._rows[basic].items():
            if (coeff > 0) == below:
                bound = self._upper[var]
            else:
                bound = self._lower[var]
            if bound is not None:
                conflict.add(bound.tag)
        conflict.discard("%one")
        return conflict

    # -- models --------------------------------------------------------------------

    def model(self) -> Dict[str, DeltaRat]:
        """The current (feasible) assignment for all variables."""
        return dict(self._assignment)

    def concrete_model(self) -> Dict[str, Fraction]:
        """A concrete rational model: substitute a small positive δ.

        δ must be small enough that every asserted bound still holds; the
        standard per-bound limits are accumulated here.
        """
        delta = Fraction(1)
        for name in self._vars:
            value = self._assignment[name]
            lower = self._lower[name]
            if lower is not None:
                gap_real = value.real - lower.value.real
                gap_delta = lower.value.delta - value.delta
                if gap_delta > 0 and gap_real > 0:
                    delta = min(delta, gap_real / gap_delta / 2)
            upper = self._upper[name]
            if upper is not None:
                gap_real = upper.value.real - value.real
                gap_delta = value.delta - upper.value.delta
                if gap_delta > 0 and gap_real > 0:
                    delta = min(delta, gap_real / gap_delta / 2)
        return {name: value.at(delta) for name, value in self._assignment.items()}
