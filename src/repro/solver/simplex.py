"""The Dutertre–de Moura general simplex for linear real arithmetic.

This is the theory solver behind the DPLL(T) loop: it decides
satisfiability of a conjunction of bounds over variables related by fixed
linear equations (the *tableau*), and reports a small conflict set (a
subset of the asserted bounds that is already infeasible) when the
conjunction is unsatisfiable.

Strict inequalities are represented with delta-rationals
(:mod:`repro.solver.delta`), so ``x < c`` is the bound ``x <= c - δ``.

The implementation is tuned for the DPLL(T) inner loop:

* Variables are **integer ids** internally (the public API still speaks
  names); rows are int-keyed coefficient maps, so no string hashing
  happens during pivoting.
* A **column occurrence index** maps each variable to the set of rows
  mentioning it, so nonbasic updates and pivots touch O(occurrences)
  rows instead of scanning the whole tableau.
* Bound assertion is **trail-based**: :meth:`push_state` marks a point,
  :meth:`pop_state` restores the exact bounds in O(changes) — no
  ``reset_bounds`` + full re-assertion per candidate model.
* :meth:`check` selects the violated *row* by Bland's rule (minimum
  index — also the better lemma producer, see its docstring) and the
  entering *column* by a Dantzig-style largest-coefficient heuristic,
  falling back to minimum index after a pivot budget, preserving
  termination.

Reference: B. Dutertre and L. de Moura, "A Fast Linear-Arithmetic Solver
for DPLL(T)", CAV 2006.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.solver.delta import DeltaRat
from repro.solver.linear import LinExpr
from repro.solver.profile import SolverProfile

_ONE = Fraction(1)


@dataclass(frozen=True)
class Bound:
    """An asserted bound on a variable, tagged with its origin.

    ``tag`` is opaque to the simplex (the SMT layer stores SAT literals in
    it); conflict sets are reported as sets of tags.
    """

    var: str
    is_upper: bool
    value: DeltaRat
    tag: object


class Infeasible(Exception):
    """Raised by ``assert_bound``/``check`` with a conflict set of tags.

    ``farkas`` is the conflict's certificate: ``(bound, coefficient)``
    pairs such that the nonnegative rational combination of the bound
    inequalities (each ``var <= value`` or ``var >= value``) cancels
    every variable and leaves a contradictory constant.  The witness
    subsystem turns it into an independently checkable Farkas lemma;
    the conflict-set semantics are unchanged.
    """

    def __init__(
        self,
        conflict: Set[object],
        farkas: Tuple[Tuple[Bound, Fraction], ...] = (),
    ) -> None:
        super().__init__(f"infeasible: {conflict}")
        self.conflict = conflict
        self.farkas = farkas


class Simplex:
    """A simplex instance over named variables.

    Usage: create, add tableau rows with :meth:`define`, then assert
    bounds and call :meth:`check`.  For the online DPLL(T) loop,
    :meth:`push_state`/:meth:`pop_state` bracket each candidate model's
    bound assertions; :meth:`reset_bounds` remains for offline use.
    """

    #: Pivots per :meth:`check` before switching from the Dantzig-style
    #: heuristic to Bland's rule (plus twice the variable count).
    bland_threshold: int = 64

    def __init__(self, profile: Optional[SolverProfile] = None) -> None:
        self.profile = profile if profile is not None else SolverProfile()
        # id <-> name maps; all per-variable state is indexed by id.
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}
        self._is_basic: List[bool] = []
        # row[basic] maps nonbasic -> coefficient:  basic = Σ coeff · nonbasic
        self._rows: Dict[int, Dict[int, Fraction]] = {}
        # column occurrence index: var id -> basic ids whose row mentions it
        self._cols: List[Set[int]] = []
        self._assignment: List[DeltaRat] = []
        self._lower: List[Optional[Bound]] = []
        self._upper: List[Optional[Bound]] = []
        # bound trail: (var id, is_upper, previous Bound) per change
        self._trail: List[Tuple[int, bool, Optional[Bound]]] = []
        self._trail_limits: List[int] = []
        self._one_id: Optional[int] = None

    # -- construction ---------------------------------------------------------

    def add_variable(self, name: str) -> int:
        vid = self._ids.get(name)
        if vid is not None:
            return vid
        vid = len(self._names)
        self._names.append(name)
        self._ids[name] = vid
        self._is_basic.append(False)
        self._cols.append(set())
        self._assignment.append(DeltaRat(Fraction(0)))
        self._lower.append(None)
        self._upper.append(None)
        return vid

    def define(self, name: str, expr: LinExpr) -> None:
        """Introduce ``name`` as a basic variable equal to ``expr``.

        ``expr`` must be over existing (nonbasic or basic) variables; any
        basic variables it mentions are substituted out by their rows.
        The constant part of ``expr`` is folded in by introducing the
        canonical constant-one variable ``%one`` (bounded to 1).
        """
        if name in self._ids:
            raise ValueError(f"variable {name} already defined")
        row: Dict[int, Fraction] = {}

        def accumulate(vid: int, coeff: Fraction) -> None:
            if coeff == 0:
                return
            if self._is_basic[vid]:
                for inner, inner_coeff in self._rows[vid].items():
                    accumulate(inner, coeff * inner_coeff)
            else:
                value = row.get(vid)
                if value is None:
                    row[vid] = coeff
                else:
                    value = value + coeff
                    if value == 0:
                        del row[vid]
                    else:
                        row[vid] = value

        for var, coeff in expr.iter_terms():
            accumulate(self.add_variable(var), coeff)
        if expr.const != 0:
            accumulate(self._constant_one(), expr.const)

        vid = self.add_variable(name)
        self._is_basic[vid] = True
        self._rows[vid] = row
        for col in row:
            self._cols[col].add(vid)
        self._assignment[vid] = self._row_value(vid)

    def _constant_one(self) -> int:
        if self._one_id is None:
            vid = self.add_variable("%one")
            self._one_id = vid
            one = DeltaRat(Fraction(1))
            self._lower[vid] = Bound("%one", False, one, "%one")
            self._upper[vid] = Bound("%one", True, one, "%one")
            self._update(vid, one)
        return self._one_id

    def _row_value(self, basic: int) -> DeltaRat:
        total = DeltaRat(Fraction(0))
        assignment = self._assignment
        for var, coeff in self._rows[basic].items():
            total = total + assignment[var].scale(coeff)
        return total

    # -- bound assertion -------------------------------------------------------

    def reset_bounds(self) -> None:
        """Retract all asserted bounds (tableau and assignment kept)."""
        for vid in range(len(self._names)):
            self._lower[vid] = None
            self._upper[vid] = None
        self._trail.clear()
        self._trail_limits.clear()
        if self._one_id is not None:
            one = DeltaRat(Fraction(1))
            self._lower[self._one_id] = Bound("%one", False, one, "%one")
            self._upper[self._one_id] = Bound("%one", True, one, "%one")

    def push_state(self) -> None:
        """Mark the current bound state; :meth:`pop_state` restores it."""
        self._trail_limits.append(len(self._trail))

    def pop_state(self) -> None:
        """Undo every bound change since the matching :meth:`push_state`.

        Only bounds are unwound (in O(changes)); the tableau and the
        current assignment always satisfy the row equations regardless of
        pivoting, and every restored bound is no tighter than the popped
        one, so the assignment stays consistent.
        """
        if not self._trail_limits:
            raise RuntimeError("pop_state without matching push_state")
        limit = self._trail_limits.pop()
        trail = self._trail
        while len(trail) > limit:
            vid, is_upper, previous = trail.pop()
            if is_upper:
                self._upper[vid] = previous
            else:
                self._lower[vid] = previous

    def assert_upper(self, var: str, value: DeltaRat, tag: object) -> None:
        vid = self.add_variable(var)
        self.profile.bound_asserts += 1
        lower = self._lower[vid]
        if lower is not None and value < lower.value:
            new = Bound(var, True, value, tag)
            raise Infeasible({tag, lower.tag}, farkas=((new, _ONE), (lower, _ONE)))
        upper = self._upper[vid]
        if upper is not None and upper.value <= value:
            return
        self._trail.append((vid, True, upper))
        self._upper[vid] = Bound(var, True, value, tag)
        if not self._is_basic[vid] and self._assignment[vid] > value:
            self._update(vid, value)

    def assert_lower(self, var: str, value: DeltaRat, tag: object) -> None:
        vid = self.add_variable(var)
        self.profile.bound_asserts += 1
        upper = self._upper[vid]
        if upper is not None and upper.value < value:
            new = Bound(var, False, value, tag)
            raise Infeasible({tag, upper.tag}, farkas=((new, _ONE), (upper, _ONE)))
        lower = self._lower[vid]
        if lower is not None and lower.value >= value:
            return
        self._trail.append((vid, False, lower))
        self._lower[vid] = Bound(var, False, value, tag)
        if not self._is_basic[vid] and self._assignment[vid] < value:
            self._update(vid, value)

    def _update(self, nonbasic: int, value: DeltaRat) -> None:
        assignment = self._assignment
        delta = value - assignment[nonbasic]
        assignment[nonbasic] = value
        rows = self._rows
        for basic in self._cols[nonbasic]:
            assignment[basic] = assignment[basic] + delta.scale(rows[basic][nonbasic])

    # -- pivoting ---------------------------------------------------------------

    def _pivot(self, basic: int, nonbasic: int) -> None:
        cols = self._cols
        rows = self._rows
        row = rows.pop(basic)
        for col in row:
            cols[col].discard(basic)
        coeff = row.pop(nonbasic)
        # basic = coeff * nonbasic + rest  =>  nonbasic = (basic - rest)/coeff
        inverse = _ONE / coeff
        new_row: Dict[int, Fraction] = {basic: inverse}
        for var, c in row.items():
            new_row[var] = -c * inverse
        self._is_basic[basic] = False
        self._is_basic[nonbasic] = True
        rows[nonbasic] = new_row
        # Substitute nonbasic out of exactly the rows that mention it.
        affected = cols[nonbasic]
        cols[nonbasic] = set()
        for other in affected:
            other_row = rows[other]
            factor = other_row.pop(nonbasic)
            for var, c in new_row.items():
                old = other_row.get(var)
                if old is None:
                    other_row[var] = factor * c
                    cols[var].add(other)
                else:
                    value = old + factor * c
                    if value == 0:
                        del other_row[var]
                        cols[var].discard(other)
                    else:
                        other_row[var] = value
        for col in new_row:
            cols[col].add(nonbasic)

    def _pivot_and_update(self, basic: int, nonbasic: int, value: DeltaRat) -> None:
        self.profile.pivots += 1
        assignment = self._assignment
        rows = self._rows
        coeff = rows[basic][nonbasic]
        theta = (value - assignment[basic]).scale(_ONE / coeff)
        assignment[basic] = value
        assignment[nonbasic] = assignment[nonbasic] + theta
        for other in self._cols[nonbasic]:
            if other == basic:
                continue
            assignment[other] = assignment[other] + theta.scale(rows[other][nonbasic])
        self._pivot(basic, nonbasic)

    # -- the check procedure -----------------------------------------------------

    def check(self) -> None:
        """Restore feasibility or raise :class:`Infeasible`.

        Row selection is always Bland's rule (the violated basic variable
        of minimum index) — besides being half of the termination
        argument, the lowest rows are the structural slack definitions,
        and the Farkas conflicts they produce prune the DPLL(T) search
        far better than "most violated" alternatives (measured ~10x
        fewer theory rounds on the registry sweep).  The *entering*
        column uses a Dantzig-style largest-coefficient heuristic until
        :attr:`bland_threshold` pivots have been spent in this check,
        then falls back to minimum index, restoring the full Bland rule
        and with it guaranteed termination.
        """
        budget = self.bland_threshold + 2 * len(self._names)
        pivots = 0
        assignment = self._assignment
        lower = self._lower
        upper = self._upper
        while True:
            violating = -1
            below = False
            for vid in self._rows:
                if violating >= 0 and vid >= violating:
                    continue
                value = assignment[vid]
                low = lower[vid]
                if low is not None and value < low.value:
                    violating, below = vid, True
                    continue
                up = upper[vid]
                if up is not None and value > up.value:
                    violating, below = vid, False
            if violating < 0:
                return
            row = self._rows[violating]
            heuristic = pivots < budget
            candidate = -1
            best_coeff: Optional[Fraction] = None
            for var in row:
                coeff = row[var]
                if below:
                    can_help = (coeff > 0 and self._can_increase(var)) or (
                        coeff < 0 and self._can_decrease(var)
                    )
                else:
                    can_help = (coeff > 0 and self._can_decrease(var)) or (
                        coeff < 0 and self._can_increase(var)
                    )
                if not can_help:
                    continue
                if heuristic:
                    magnitude = -coeff if coeff < 0 else coeff
                    if best_coeff is None or magnitude > best_coeff or (
                        magnitude == best_coeff and var < candidate
                    ):
                        candidate, best_coeff = var, magnitude
                elif candidate < 0 or var < candidate:
                    candidate = var
            if candidate < 0:
                raise self._conflict_from_row(violating, below)
            target = lower[violating].value if below else upper[violating].value
            self._pivot_and_update(violating, candidate, target)
            pivots += 1

    def _can_increase(self, vid: int) -> bool:
        upper = self._upper[vid]
        return upper is None or self._assignment[vid] < upper.value

    def _can_decrease(self, vid: int) -> bool:
        lower = self._lower[vid]
        return lower is None or self._assignment[vid] > lower.value

    def _conflict_from_row(self, basic: int, below: bool) -> Infeasible:
        """The Farkas conflict: the violated bound on ``basic`` plus the
        binding bounds on every row variable (they jointly pin the row's
        value on the wrong side).

        The attached Farkas coefficients are the textbook ones: 1 for the
        violated bound itself and ``|coeff|`` for each binding row-variable
        bound — the row equation ``basic = Σ coeff·var`` makes the variable
        parts of that combination cancel exactly, because every tableau row
        stays in the linear span of the slack definitional equations under
        pivoting.
        """
        self.profile.theory_conflicts += 1
        conflict: Set[object] = set()
        farkas: List[Tuple[Bound, Fraction]] = []
        own = self._lower[basic] if below else self._upper[basic]
        conflict.add(own.tag)
        farkas.append((own, _ONE))
        for var, coeff in self._rows[basic].items():
            if (coeff > 0) == below:
                bound = self._upper[var]
            else:
                bound = self._lower[var]
            if bound is not None:
                conflict.add(bound.tag)
                farkas.append((bound, -coeff if coeff < 0 else coeff))
        conflict.discard("%one")
        return Infeasible(conflict, farkas=tuple(farkas))

    # -- introspection (tests, debugging) -----------------------------------------

    def bounds(self) -> Dict[str, Tuple[Optional[Bound], Optional[Bound]]]:
        """The current ``name -> (lower, upper)`` bound state."""
        return {
            name: (self._lower[vid], self._upper[vid])
            for vid, name in enumerate(self._names)
        }

    def tableau(self) -> Dict[str, Dict[str, Fraction]]:
        """The current rows as ``basic name -> {nonbasic name: coeff}``."""
        return {
            self._names[basic]: {self._names[col]: c for col, c in row.items()}
            for basic, row in self._rows.items()
        }

    # -- models --------------------------------------------------------------------

    def model(self) -> Dict[str, DeltaRat]:
        """The current (feasible) assignment for all variables."""
        return {name: self._assignment[vid] for vid, name in enumerate(self._names)}

    def concrete_model(self) -> Dict[str, Fraction]:
        """A concrete rational model: substitute a small positive δ.

        δ must be small enough that every asserted bound still holds; the
        standard per-bound limits are accumulated here.
        """
        delta = Fraction(1)
        for vid in range(len(self._names)):
            value = self._assignment[vid]
            lower = self._lower[vid]
            if lower is not None:
                gap_real = value.real - lower.value.real
                gap_delta = lower.value.delta - value.delta
                if gap_delta > 0 and gap_real > 0:
                    delta = min(delta, gap_real / gap_delta / 2)
            upper = self._upper[vid]
            if upper is not None:
                gap_real = upper.value.real - value.real
                gap_delta = value.delta - upper.value.delta
                if gap_delta > 0 and gap_real > 0:
                    delta = min(delta, gap_real / gap_delta / 2)
        return {
            name: self._assignment[vid].at(delta)
            for vid, name in enumerate(self._names)
        }
