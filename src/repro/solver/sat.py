"""A CDCL SAT solver.

Implements the standard architecture: two-watched-literal propagation,
first-UIP conflict analysis with clause learning, VSIDS-style activity
ordering with exponential decay, and geometric restarts.  The solver is
incremental in the limited way DPLL(T) needs: new clauses (theory
conflicts) can be added between ``solve()`` calls.

Literals follow the DIMACS convention: nonzero ints, ``-v`` negates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Literal = int


class Unsatisfiable(Exception):
    """Raised internally when the instance is refuted at level 0."""


class CDCLSolver:
    """A self-contained CDCL solver over int literals."""

    def __init__(self, num_vars: int = 0) -> None:
        self.num_vars = 0
        # Assignment state: values[v] in (True, False, None), 1-indexed.
        self._values: List[Optional[bool]] = [None]
        self._level_of: List[int] = [0]
        self._reason: List[Optional[List[Literal]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[Literal] = []
        self._trail_limits: List[int] = []
        self._propagate_head = 0
        # Clause store: each clause is a list of literals; watches index it.
        self._clauses: List[List[Literal]] = []
        self._watches: Dict[Literal, List[int]] = {}
        self._activity_inc = 1.0
        self._activity_decay = 0.95
        self._conflicts_until_restart = 100
        self._restart_multiplier = 1.5
        self._unsat = False
        self.ensure_vars(num_vars)

    # -- variable / clause management ---------------------------------------

    def ensure_vars(self, count: int) -> None:
        while self.num_vars < count:
            self.num_vars += 1
            self._values.append(None)
            self._level_of.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)

    def new_var(self) -> int:
        self.ensure_vars(self.num_vars + 1)
        return self.num_vars

    def value(self, literal: Literal) -> Optional[bool]:
        value = self._values[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a clause; safe to call between ``solve()`` invocations."""
        clause = []
        seen = set()
        for literal in literals:
            self.ensure_vars(abs(literal))
            if -literal in seen:
                return  # tautology
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        if self._decision_level() != 0:
            self._backtrack(0)
        if not clause:
            self._unsat = True
            return
        # Drop literals already false at level 0; satisfy check.
        clause = [l for l in clause if not (self.value(l) is False and self._level_of[abs(l)] == 0)]
        if any(self.value(l) is True and self._level_of[abs(l)] == 0 for l in clause):
            return
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        self._attach(clause)

    def _attach(self, clause: List[Literal]) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    # -- trail management ----------------------------------------------------

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _enqueue(self, literal: Literal, reason: Optional[List[Literal]]) -> bool:
        current = self.value(literal)
        if current is not None:
            return current
        var = abs(literal)
        self._values[var] = literal > 0
        self._level_of[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(literal)
        return True

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_limits[level]
        for literal in reversed(self._trail[limit:]):
            var = abs(literal)
            self._phase[var] = self._values[var]
            self._values[var] = None
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> Optional[List[Literal]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._propagate_head < len(self._trail):
            literal = self._trail[self._propagate_head]
            self._propagate_head += 1
            falsified = -literal
            watch_list = self._watches.get(falsified, [])
            kept: List[int] = []
            i = 0
            while i < len(watch_list):
                index = watch_list[i]
                i += 1
                clause = self._clauses[index]
                # Normalize: watched literals are clause[0], clause[1].
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self.value(first) is True:
                    kept.append(index)
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self.value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches.setdefault(clause[1], []).append(index)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(index)
                if self.value(first) is False:
                    # Conflict: restore remaining watches and report.
                    kept.extend(watch_list[i:])
                    self._watches[falsified] = kept
                    return clause
                self._enqueue(first, clause)
            self._watches[falsified] = kept
        return None

    # -- conflict analysis ----------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_inc *= 1e-100

    def _analyze(self, conflict: List[Literal]) -> Tuple[List[Literal], int]:
        """First-UIP learning; returns (learned clause, backtrack level)."""
        level = self._decision_level()
        learned: List[Literal] = []
        seen = set()
        counter = 0
        literal: Optional[Literal] = None
        reason = conflict
        index = len(self._trail) - 1

        while True:
            for other in reason:
                # Skip the literal this reason clause implied (the trail
                # literal we are resolving on, i.e. -literal).
                if literal is not None and other == -literal:
                    continue
                var = abs(other)
                if var in seen or self._level_of[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level_of[var] == level:
                    counter += 1
                else:
                    learned.append(other)
            # Find the next trail literal to resolve on.
            while abs(self._trail[index]) not in seen:
                index -= 1
            literal = -self._trail[index]
            var = abs(literal)
            seen.discard(var)
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = self._reason[var] or []
        learned.insert(0, literal)
        if len(learned) == 1:
            return learned, 0
        back_level = max(self._level_of[abs(l)] for l in learned[1:])
        return learned, back_level

    # -- main loop --------------------------------------------------------------

    def _pick_branch(self) -> Optional[Literal]:
        best_var = None
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self._values[var] is None and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var is None:
            return None
        return best_var if self._phase[best_var] else -best_var

    def solve(self, assumptions: Sequence[Literal] = ()) -> bool:
        """Solve the current clause set; returns True iff satisfiable.

        ``assumptions`` are temporary decisions; the solver state is reset
        to level 0 afterwards either way.
        """
        if self._unsat:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        conflicts = 0
        restart_limit = self._conflicts_until_restart
        try:
            while True:
                conflict = self._propagate()
                if conflict is not None:
                    if self._decision_level() == 0:
                        raise Unsatisfiable
                    if self._decision_level() <= len(assumptions):
                        # Conflict under assumptions only.
                        return False
                    learned, back_level = self._analyze(conflict)
                    back_level = max(back_level, len(assumptions))
                    self._backtrack(back_level)
                    conflicts += 1
                    self._activity_inc /= self._activity_decay
                    if len(learned) == 1 and back_level == 0:
                        if not self._enqueue(learned[0], None):
                            raise Unsatisfiable
                    else:
                        clause = list(learned)
                        if len(clause) >= 2:
                            # Second watch must be a highest-level literal.
                            levels = [self._level_of[abs(l)] for l in clause]
                            k = max(range(1, len(clause)), key=lambda j: levels[j])
                            clause[1], clause[k] = clause[k], clause[1]
                            index = self._attach(clause)
                            self._enqueue(clause[0], self._clauses[index])
                        else:
                            self._enqueue(clause[0], None)
                    if conflicts >= restart_limit and self._decision_level() > len(assumptions):
                        conflicts = 0
                        restart_limit = int(restart_limit * self._restart_multiplier)
                        self._backtrack(len(assumptions))
                    continue

                # Apply pending assumptions as decisions.
                level = self._decision_level()
                if level < len(assumptions):
                    literal = assumptions[level]
                    if self.value(literal) is False:
                        return False
                    self._trail_limits.append(len(self._trail))
                    if self.value(literal) is None:
                        self._enqueue(literal, None)
                    continue

                branch = self._pick_branch()
                if branch is None:
                    return True
                self._trail_limits.append(len(self._trail))
                self._enqueue(branch, None)
        except Unsatisfiable:
            self._unsat = True
            return False

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment after a successful ``solve()``."""
        return {var: bool(self._values[var]) for var in range(1, self.num_vars + 1) if self._values[var] is not None}
