"""A CDCL SAT solver.

Implements the standard architecture: two-watched-literal propagation,
first-UIP conflict analysis with clause learning, heap-based VSIDS
activity ordering with exponential decay, phase saving, **Luby-sequence
restarts** and **learned-clause database reduction by LBD** (literal
block distance — the number of distinct decision levels in a learned
clause; low-LBD "glue" clauses are kept forever, high-LBD ones are
periodically dropped).  The solver is incremental in the way DPLL(T)
needs: new clauses (theory conflicts, scoped assertions) can be added
between ``solve()`` calls, and ``solve(assumptions)`` treats the
assumptions as temporary first decisions.

Clause-database reduction only ever removes clauses the solver *learned*
itself (they are implied by the rest, so removal is sound and cannot
change SAT/UNSAT answers); clauses added through :meth:`add_clause` —
problem clauses, selector-guarded scope clauses, theory lemmas — are
permanent.

Literals follow the DIMACS convention: nonzero ints, ``-v`` negates.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.solver.profile import SolverProfile

Literal = int


def luby(i: int) -> int:
    """The i-th element (1-indexed) of the Luby restart sequence
    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …"""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class Unsatisfiable(Exception):
    """Raised internally when the instance is refuted at level 0."""


class CDCLSolver:
    """A self-contained CDCL solver over int literals.

    ``restart_base`` scales the Luby sequence (conflicts until the i-th
    restart = ``restart_base * luby(i)``); ``reduce_base``/``reduce_inc``
    schedule learned-clause database reductions (first reduction after
    ``reduce_base`` conflicts, then every ``reduce_inc`` more).  Tests
    shrink these to exercise the machinery on small instances.
    """

    def __init__(
        self,
        num_vars: int = 0,
        profile: Optional[SolverProfile] = None,
        restart_base: int = 100,
        reduce_base: int = 2000,
        reduce_inc: int = 1000,
        activity_decay: float = 0.95,
    ) -> None:
        self.num_vars = 0
        self.profile = profile if profile is not None else SolverProfile()
        # Assignment state: values[v] in (True, False, None), 1-indexed.
        self._values: List[Optional[bool]] = [None]
        self._level_of: List[int] = [0]
        self._reason: List[Optional[List[Literal]]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[bool] = [False]
        self._trail: List[Literal] = []
        self._trail_limits: List[int] = []
        self._propagate_head = 0
        # Clause store: each clause is a list of literals (None = deleted);
        # watch lists hold indices and are cleaned lazily.
        self._clauses: List[Optional[List[Literal]]] = []
        self._watches: Dict[Literal, List[int]] = {}
        # Learned-clause bookkeeping for DB reduction.
        self._learned: List[int] = []
        self._lbd: Dict[int, int] = {}
        self._activity_inc = 1.0
        self._activity_decay = activity_decay
        self._restart_base = restart_base
        self._reduce_limit = reduce_base
        self._reduce_inc = reduce_inc
        self._conflicts_total = 0
        self._restarts_total = 0
        # VSIDS decision heap of (-activity, var); entries go stale when a
        # var is bumped (a fresher entry is pushed) — stale pops are skipped.
        self._heap: List[Tuple[float, int]] = []
        self._unsat = False
        #: Optional shared proof-event log (the witness subsystem's DRUP
        #: trail).  When set, every learned clause is appended as a
        #: ``("learn", clause)`` event in learn order — each is checkable
        #: by reverse unit propagation against the events before it.
        self.proof: Optional[List[Tuple]] = None
        self.ensure_vars(num_vars)

    # -- variable / clause management ---------------------------------------

    def ensure_vars(self, count: int) -> None:
        while self.num_vars < count:
            self.num_vars += 1
            self._values.append(None)
            self._level_of.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)
            heapq.heappush(self._heap, (0.0, self.num_vars))

    def new_var(self) -> int:
        self.ensure_vars(self.num_vars + 1)
        return self.num_vars

    def value(self, literal: Literal) -> Optional[bool]:
        value = self._values[abs(literal)]
        if value is None:
            return None
        return value if literal > 0 else not value

    def add_clause(self, literals: Iterable[Literal]) -> None:
        """Add a permanent clause; safe to call between ``solve()`` calls."""
        clause = []
        seen = set()
        for literal in literals:
            self.ensure_vars(abs(literal))
            if -literal in seen:
                return  # tautology
            if literal not in seen:
                seen.add(literal)
                clause.append(literal)
        if self._decision_level() != 0:
            self._backtrack(0)
        if not clause:
            self._unsat = True
            return
        # Drop literals already false at level 0; satisfy check.
        clause = [l for l in clause if not (self.value(l) is False and self._level_of[abs(l)] == 0)]
        if any(self.value(l) is True and self._level_of[abs(l)] == 0 for l in clause):
            return
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._unsat = True
            elif self._propagate() is not None:
                self._unsat = True
            return
        self._attach(clause)

    def _attach(self, clause: List[Literal], lbd: Optional[int] = None) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        if lbd is not None:
            self._learned.append(index)
            self._lbd[index] = lbd
        return index

    # -- trail management ----------------------------------------------------

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _enqueue(self, literal: Literal, reason: Optional[List[Literal]]) -> bool:
        current = self.value(literal)
        if current is not None:
            return current
        var = abs(literal)
        self._values[var] = literal > 0
        self._level_of[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(literal)
        return True

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_limits[level]
        heap = self._heap
        activity = self._activity
        for literal in reversed(self._trail[limit:]):
            var = abs(literal)
            self._phase[var] = self._values[var]
            self._values[var] = None
            self._reason[var] = None
            heapq.heappush(heap, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> Optional[List[Literal]]:
        """Unit propagation; returns a conflicting clause or None.

        The literal-value checks are inlined (``values[var] == (lit > 0)``
        instead of :meth:`value` calls) — this loop is the SAT core's
        hottest path by an order of magnitude.
        """
        clauses = self._clauses
        values = self._values
        watches = self._watches
        trail = self._trail
        propagated = 0
        try:
            while self._propagate_head < len(trail):
                literal = trail[self._propagate_head]
                self._propagate_head += 1
                falsified = -literal
                watch_list = watches.get(falsified)
                if not watch_list:
                    continue
                kept: List[int] = []
                i = 0
                n = len(watch_list)
                while i < n:
                    index = watch_list[i]
                    i += 1
                    clause = clauses[index]
                    if clause is None:
                        continue  # deleted: drop from this watch list
                    # Normalize: watched literals are clause[0], clause[1].
                    if clause[0] == falsified:
                        clause[0], clause[1] = clause[1], clause[0]
                    first = clause[0]
                    var0 = first if first > 0 else -first
                    val0 = values[var0]
                    if val0 is not None and val0 == (first > 0):
                        kept.append(index)  # satisfied by its other watch
                        continue
                    # Look for a replacement watch.
                    moved = False
                    for k in range(2, len(clause)):
                        other = clause[k]
                        val = values[other if other > 0 else -other]
                        if val is None or val == (other > 0):
                            clause[1], clause[k] = other, clause[1]
                            entry = watches.get(other)
                            if entry is None:
                                watches[other] = [index]
                            else:
                                entry.append(index)
                            moved = True
                            break
                    if moved:
                        continue
                    kept.append(index)
                    if val0 is not None:
                        # first is false: conflict.  Restore the
                        # remaining watches and report.
                        kept.extend(watch_list[i:])
                        watches[falsified] = kept
                        return clause
                    # Unit: enqueue first with this clause as reason.
                    propagated += 1
                    values[var0] = first > 0
                    self._level_of[var0] = len(self._trail_limits)
                    self._reason[var0] = clause
                    trail.append(first)
                watches[falsified] = kept
            return None
        finally:
            self.profile.propagations += propagated

    # -- conflict analysis ----------------------------------------------------

    def _bump(self, var: int) -> None:
        activity = self._activity[var] + self._activity_inc
        self._activity[var] = activity
        if activity > 1e100:
            self._rescale_activities()
        else:
            heapq.heappush(self._heap, (-activity, var))

    def _rescale_activities(self) -> None:
        for v in range(1, self.num_vars + 1):
            self._activity[v] *= 1e-100
        self._activity_inc *= 1e-100
        # Every heap entry is now stale; rebuild from current activities.
        self._heap = [(-self._activity[v], v) for v in range(1, self.num_vars + 1)]
        heapq.heapify(self._heap)

    def _analyze(self, conflict: List[Literal]) -> Tuple[List[Literal], int]:
        """First-UIP learning; returns (learned clause, backtrack level)."""
        level = self._decision_level()
        learned: List[Literal] = []
        seen = set()
        counter = 0
        literal: Optional[Literal] = None
        reason = conflict
        index = len(self._trail) - 1

        while True:
            for other in reason:
                # Skip the literal this reason clause implied (the trail
                # literal we are resolving on, i.e. -literal).
                if literal is not None and other == -literal:
                    continue
                var = abs(other)
                if var in seen or self._level_of[var] == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level_of[var] == level:
                    counter += 1
                else:
                    learned.append(other)
            # Find the next trail literal to resolve on.
            while abs(self._trail[index]) not in seen:
                index -= 1
            literal = -self._trail[index]
            var = abs(literal)
            seen.discard(var)
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = self._reason[var] or []
        learned.insert(0, literal)
        if len(learned) == 1:
            return learned, 0
        back_level = max(self._level_of[abs(l)] for l in learned[1:])
        return learned, back_level

    def _clause_lbd(self, clause: Sequence[Literal]) -> int:
        """Literal block distance: distinct decision levels in the clause."""
        return len({self._level_of[abs(l)] for l in clause})

    # -- clause database reduction ---------------------------------------------

    def _locked(self, clause: List[Literal]) -> bool:
        """Is the clause currently the reason of an implied literal?

        The implied literal of a reason clause always sits at a watched
        position (index 0 or 1), so two identity checks suffice.
        """
        if self._reason[abs(clause[0])] is clause:
            return True
        return len(clause) > 1 and self._reason[abs(clause[1])] is clause

    def _reduce_db(self) -> None:
        """Drop the worst half of the learned clauses, by LBD.

        Glue clauses (LBD <= 2), binary clauses and clauses currently
        acting as reasons are kept.  Watch lists are cleaned lazily
        during propagation.
        """
        alive = [i for i in self._learned if self._clauses[i] is not None]
        candidates = [
            i
            for i in alive
            if self._lbd[i] > 2
            and len(self._clauses[i]) > 2
            and not self._locked(self._clauses[i])
        ]
        if not candidates:
            self._learned = alive
            return
        # Highest LBD (ties: longer clause) goes first.
        candidates.sort(key=lambda i: (self._lbd[i], len(self._clauses[i])))
        doomed = candidates[len(candidates) // 2:]
        for index in doomed:
            self._clauses[index] = None
            del self._lbd[index]
        self.profile.deleted_clauses += len(doomed)
        dead = set(doomed)
        self._learned = [i for i in alive if i not in dead]

    # -- main loop --------------------------------------------------------------

    def _pick_branch(self) -> Optional[Literal]:
        heap = self._heap
        values = self._values
        activity = self._activity
        while heap:
            neg_activity, var = heapq.heappop(heap)
            if values[var] is None and -neg_activity == activity[var]:
                return var if self._phase[var] else -var
        return None

    def solve(self, assumptions: Sequence[Literal] = ()) -> bool:
        """Solve the current clause set; returns True iff satisfiable.

        ``assumptions`` are temporary decisions; the solver state is reset
        to level 0 afterwards either way.
        """
        if self._unsat:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return False
        conflicts_since_restart = 0
        restart_index = 1
        restart_limit = self._restart_base * luby(restart_index)
        try:
            while True:
                conflict = self._propagate()
                if conflict is not None:
                    if self._decision_level() == 0:
                        raise Unsatisfiable
                    if self._decision_level() <= len(assumptions):
                        # Conflict under assumptions only.
                        return False
                    learned, back_level = self._analyze(conflict)
                    if self.proof is not None:
                        self.proof.append(("learn", tuple(learned)))
                    back_level = max(back_level, len(assumptions))
                    self._backtrack(back_level)
                    conflicts_since_restart += 1
                    self._conflicts_total += 1
                    self.profile.conflicts += 1
                    self._activity_inc /= self._activity_decay
                    if len(learned) == 1 and back_level == 0:
                        if not self._enqueue(learned[0], None):
                            raise Unsatisfiable
                    else:
                        clause = list(learned)
                        if len(clause) >= 2:
                            # Second watch must be a highest-level literal.
                            levels = [self._level_of[abs(l)] for l in clause]
                            k = max(range(1, len(clause)), key=lambda j: levels[j])
                            clause[1], clause[k] = clause[k], clause[1]
                            index = self._attach(clause, lbd=self._clause_lbd(clause))
                            self.profile.learned_clauses += 1
                            self._enqueue(clause[0], self._clauses[index])
                        else:
                            self._enqueue(clause[0], None)
                    if (
                        conflicts_since_restart >= restart_limit
                        and self._decision_level() > len(assumptions)
                    ):
                        conflicts_since_restart = 0
                        restart_index += 1
                        restart_limit = self._restart_base * luby(restart_index)
                        self._restarts_total += 1
                        self.profile.restarts += 1
                        self._backtrack(len(assumptions))
                        if self._conflicts_total >= self._reduce_limit:
                            self._reduce_db()
                            self._reduce_limit += self._reduce_inc
                    continue

                # Apply pending assumptions as decisions.
                level = self._decision_level()
                if level < len(assumptions):
                    literal = assumptions[level]
                    if self.value(literal) is False:
                        return False
                    self._trail_limits.append(len(self._trail))
                    if self.value(literal) is None:
                        self._enqueue(literal, None)
                    continue

                branch = self._pick_branch()
                if branch is None:
                    return True
                self.profile.decisions += 1
                self._trail_limits.append(len(self._trail))
                self._enqueue(branch, None)
        except Unsatisfiable:
            self._unsat = True
            return False

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment after a successful ``solve()``."""
        return {var: bool(self._values[var]) for var in range(1, self.num_vars + 1) if self._values[var] is not None}
