"""Hash-consing tables for the solver's term layer.

Every :class:`~repro.solver.formula.Formula` node and every
:class:`~repro.solver.linear.LinExpr` is *interned*: constructing a node
that is structurally equal to one built before returns the original
object.  Structural equality therefore collapses to pointer equality,
``hash()`` is a precomputed integer instead of a recursive tree walk,
and per-node caches (``atoms_of``, ``normalized()``…) are computed once
per distinct term no matter how many times it is rebuilt.

The tables are process-global and grow with the set of distinct terms
the process ever builds.  That is the point — the verification pipeline
re-creates the same premises thousands of times across obligations,
Houdini rounds and batch sweeps — but long-running embedders can call
:func:`clear` between independent workloads.

Thread-safety: the constructors publish through ``_TABLE.setdefault``
(atomic under the GIL), so concurrent builders of the same key — the
verifier's ``jobs > 1`` discharge pool — always converge on one
canonical node; identity equality stays sound.  The ``hits``/``misses``
counters are deliberately unlocked (they feed the ``intern_hits``
profile field and may under-count slightly under contention).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: key -> canonical node.  Keys embed the class, so one table serves all
#: node kinds without collisions.  Insert ONLY via ``setdefault`` (see
#: the thread-safety note above).
_TABLE: Dict[tuple, object] = {}

hits = 0
misses = 0


def counters() -> Tuple[int, int]:
    """``(hits, misses)`` since process start (or the last :func:`clear`)."""
    return hits, misses


def stats() -> Dict[str, int]:
    return {"entries": len(_TABLE), "hits": hits, "misses": misses}


def clear() -> None:
    """Drop all interned nodes and reset the counters.

    Only safe when no live formula is still compared against newly built
    ones by identity — i.e. between independent workloads.  Existing
    nodes keep working (their hashes are precomputed); they just stop
    being the canonical representatives.
    """
    global hits, misses
    _TABLE.clear()
    hits = 0
    misses = 0
