"""Exact linear expressions over the rationals.

A :class:`LinExpr` is ``constant + Σ coeff_i · var_i`` with ``Fraction``
coefficients and string variable names.  Instances are immutable and
**interned** (see :mod:`repro.solver.intern`): two structurally equal
expressions are the same object, so equality is pointer equality,
hashing is a precomputed integer, and derived data — the sorted variable
tuple, the scale-canonical form — is computed once per distinct
expression.  This lets the theory layer key slack variables by the
linear form they stand for, and lets formula nodes hash in O(1).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.solver import intern

Number = Union[int, Fraction]

_ZERO = Fraction(0)


class LinExpr:
    """An immutable, interned linear expression ``constant + Σ coeffs[v] · v``."""

    __slots__ = ("_terms", "_constant", "_key", "_hash", "_vars", "_norm")

    def __new__(cls, terms: Mapping[str, Fraction] = None, constant: Number = 0) -> "LinExpr":
        clean: Dict[str, Fraction] = {}
        if terms:
            for name, coeff in terms.items():
                if not isinstance(coeff, Fraction):
                    coeff = Fraction(coeff)
                if coeff != 0:
                    clean[name] = coeff
        if not isinstance(constant, Fraction):
            constant = Fraction(constant)
        key = (tuple(sorted(clean.items())), constant)
        node = intern._TABLE.get(key)
        if node is not None:
            intern.hits += 1
            return node
        intern.misses += 1
        self = object.__new__(cls)
        self._terms = clean
        self._constant = constant
        self._key = key
        self._hash = hash(key)
        self._vars = None
        self._norm = None
        # setdefault: atomic canonicalization under concurrent builders.
        return intern._TABLE.setdefault(key, self)

    def __reduce__(self):
        return (_rebuild, (dict(self._terms), self._constant))

    # -- constructors -------------------------------------------------------

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        return LinExpr({}, value)

    @staticmethod
    def variable(name: str, coeff: Number = 1) -> "LinExpr":
        return LinExpr({name: Fraction(coeff)}, 0)

    # -- inspection ---------------------------------------------------------

    @property
    def terms(self) -> Dict[str, Fraction]:
        return dict(self._terms)

    def iter_terms(self):
        """The internal ``(name, coeff)`` items — do not mutate."""
        return self._terms.items()

    @property
    def const(self) -> Fraction:
        return self._constant

    def coeff(self, name: str) -> Fraction:
        return self._terms.get(name, _ZERO)

    def variables(self) -> Tuple[str, ...]:
        if self._vars is None:
            self._vars = tuple(sorted(self._terms))
        return self._vars

    def is_constant(self) -> bool:
        return not self._terms

    def constant_value(self) -> Fraction:
        if self._terms:
            raise ValueError(f"{self} is not constant")
        return self._constant

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self._terms, self._constant + other)
        merged = dict(self._terms)
        for name, coeff in other._terms.items():
            merged[name] = merged.get(name, _ZERO) + coeff
        return LinExpr(merged, self._constant + other._constant)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({name: -c for name, c in self._terms.items()}, -self._constant)

    def __sub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self._terms, self._constant - other)
        return self + (-other)

    def __rsub__(self, other: Number) -> "LinExpr":
        return (-self) + other

    def scale(self, factor: Number) -> "LinExpr":
        factor = Fraction(factor)
        if factor == 0:
            return LinExpr()
        return LinExpr(
            {name: c * factor for name, c in self._terms.items()},
            self._constant * factor,
        )

    def __mul__(self, factor: Number) -> "LinExpr":
        return self.scale(factor)

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "LinExpr":
        divisor = Fraction(divisor)
        if divisor == 0:
            raise ZeroDivisionError("LinExpr division by zero")
        return self.scale(1 / divisor)

    # -- evaluation and substitution ----------------------------------------

    def evaluate(self, assignment: Mapping[str, Fraction]) -> Fraction:
        """Evaluate under a total assignment of the mentioned variables."""
        total = self._constant
        for name, coeff in self._terms.items():
            total += coeff * Fraction(assignment[name])
        return total

    def substitute(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Replace variables by linear expressions."""
        result = LinExpr({}, self._constant)
        for name, coeff in self._terms.items():
            if name in mapping:
                result = result + mapping[name].scale(coeff)
            else:
                result = result + LinExpr.variable(name, coeff)
        return result

    # -- normal form --------------------------------------------------------

    def normalized(self) -> Tuple["LinExpr", Fraction]:
        """A scale-canonical form: divide by the leading coefficient's
        absolute value so that syntactically proportional expressions share
        one slack variable.  Returns ``(canonical, factor)`` with
        ``self == canonical * factor`` and ``factor > 0``.  Cached on the
        interned node.
        """
        if self._norm is None:
            if not self._terms:
                self._norm = (self, Fraction(1))
            else:
                lead = min(self._terms)
                factor = abs(self._terms[lead])
                if factor == 1:
                    self._norm = (self, Fraction(1))
                else:
                    self._norm = (self.scale(1 / factor), factor)
        return self._norm

    # -- dunder -------------------------------------------------------------

    # Equality is object identity (inherited) — correct under interning.

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for name, coeff in sorted(self._terms.items()):
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self._constant != 0 or not parts:
            parts.append(str(self._constant))
        return " + ".join(parts).replace("+ -", "- ")


def _rebuild(terms: Dict[str, Fraction], constant: Fraction) -> LinExpr:
    """Pickle helper: re-intern on load."""
    return LinExpr(terms, constant)


def lin_sum(exprs: Iterable[LinExpr]) -> LinExpr:
    """Sum an iterable of linear expressions."""
    total = LinExpr()
    for expr in exprs:
        total = total + expr
    return total
