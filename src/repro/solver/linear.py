"""Exact linear expressions over the rationals.

A :class:`LinExpr` is ``constant + Σ coeff_i · var_i`` with ``Fraction``
coefficients and string variable names.  Instances are immutable and
hashable, which lets the theory layer key slack variables by the linear
form they stand for.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, Fraction]


class LinExpr:
    """An immutable linear expression ``constant + Σ coeffs[v] · v``."""

    __slots__ = ("_terms", "_constant", "_key", "_hash")

    def __init__(self, terms: Mapping[str, Fraction] = None, constant: Number = 0) -> None:
        clean: Dict[str, Fraction] = {}
        if terms:
            for name, coeff in terms.items():
                coeff = Fraction(coeff)
                if coeff != 0:
                    clean[name] = coeff
        self._terms = clean
        self._constant = Fraction(constant)
        self._key = (tuple(sorted(self._terms.items())), self._constant)
        self._hash = hash(self._key)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def constant(value: Number) -> "LinExpr":
        return LinExpr({}, value)

    @staticmethod
    def variable(name: str, coeff: Number = 1) -> "LinExpr":
        return LinExpr({name: Fraction(coeff)}, 0)

    # -- inspection ---------------------------------------------------------

    @property
    def terms(self) -> Dict[str, Fraction]:
        return dict(self._terms)

    @property
    def const(self) -> Fraction:
        return self._constant

    def coeff(self, name: str) -> Fraction:
        return self._terms.get(name, Fraction(0))

    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._terms))

    def is_constant(self) -> bool:
        return not self._terms

    def constant_value(self) -> Fraction:
        if self._terms:
            raise ValueError(f"{self} is not constant")
        return self._constant

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self._terms, self._constant + other)
        merged = dict(self._terms)
        for name, coeff in other._terms.items():
            merged[name] = merged.get(name, Fraction(0)) + coeff
        return LinExpr(merged, self._constant + other._constant)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({name: -c for name, c in self._terms.items()}, -self._constant)

    def __sub__(self, other: Union["LinExpr", Number]) -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self._terms, self._constant - other)
        return self + (-other)

    def __rsub__(self, other: Number) -> "LinExpr":
        return (-self) + other

    def scale(self, factor: Number) -> "LinExpr":
        factor = Fraction(factor)
        if factor == 0:
            return LinExpr()
        return LinExpr(
            {name: c * factor for name, c in self._terms.items()},
            self._constant * factor,
        )

    def __mul__(self, factor: Number) -> "LinExpr":
        return self.scale(factor)

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "LinExpr":
        divisor = Fraction(divisor)
        if divisor == 0:
            raise ZeroDivisionError("LinExpr division by zero")
        return self.scale(1 / divisor)

    # -- evaluation and substitution ----------------------------------------

    def evaluate(self, assignment: Mapping[str, Fraction]) -> Fraction:
        """Evaluate under a total assignment of the mentioned variables."""
        total = self._constant
        for name, coeff in self._terms.items():
            total += coeff * Fraction(assignment[name])
        return total

    def substitute(self, mapping: Mapping[str, "LinExpr"]) -> "LinExpr":
        """Replace variables by linear expressions."""
        result = LinExpr({}, self._constant)
        for name, coeff in self._terms.items():
            if name in mapping:
                result = result + mapping[name].scale(coeff)
            else:
                result = result + LinExpr.variable(name, coeff)
        return result

    # -- normal form --------------------------------------------------------

    def normalized(self) -> Tuple["LinExpr", Fraction]:
        """A scale-canonical form: divide by the leading coefficient's
        absolute value so that syntactically proportional expressions share
        one slack variable.  Returns ``(canonical, factor)`` with
        ``self == canonical * factor`` and ``factor > 0``.
        """
        if not self._terms:
            return self, Fraction(1)
        lead = min(self._terms)
        factor = abs(self._terms[lead])
        if factor == 1:
            return self, Fraction(1)
        return self.scale(1 / factor), factor

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinExpr) and self._key == other._key

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for name, coeff in sorted(self._terms.items()):
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self._constant != 0 or not parts:
            parts.append(str(self._constant))
        return " + ".join(parts).replace("+ -", "- ")


def lin_sum(exprs: Iterable[LinExpr]) -> LinExpr:
    """Sum an iterable of linear expressions."""
    total = LinExpr()
    for expr in exprs:
        total = total + expr
    return total
