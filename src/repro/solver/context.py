"""Incremental solver contexts and the shared query cache.

Two pieces sit between the high-level validity interface and the raw
DPLL(T) core:

:class:`QueryCache`
    A process-shareable, thread-safe map from *normalized* entailment
    queries to their answers (and countermodels).  Normalization —
    simplification, premise deduplication and canonical ordering — makes
    alpha-trivial variants of a query (permuted premises, ``x+0`` vs
    ``x``) hit the same entry, which the raw-AST-keyed caches of earlier
    releases missed.  One cache instance is threaded through a whole
    :class:`repro.pipeline.Pipeline`, so batch sweeps and Houdini rounds
    share answers across programs and configurations.

:class:`SolverContext`
    A persistent :class:`~repro.solver.encode.Encoder` +
    :class:`~repro.solver.smt.SMTSolver` pair with push/pop assumption
    scopes.  Premises shared by many queries (a VC path prefix, the
    global assumptions) are asserted once at the base; each query then
    costs one pushed scope, one solve and one pop — Tseitin structure
    and learned theory lemmas carry over between queries.  A refuted
    query's countermodel comes out of the *same* solve that refuted it
    (no second solve).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.simplify import simplify
from repro.lang import ast
from repro.solver import formula as F
from repro.solver.encode import Encoder
from repro.solver.profile import SolverProfile
from repro.solver.smt import SatResult, SMTSolver

#: A counterexample: (arithmetic model, boolean model).
Model = Tuple[Dict[str, Fraction], Dict[str, bool]]


# ---------------------------------------------------------------------------
# Query normalization
# ---------------------------------------------------------------------------


def normalize_query(
    goal: ast.Expr,
    premises: Iterable[ast.Expr],
    bool_vars: Iterable[str] = (),
) -> Tuple:
    """A canonical cache key for ``premises ⊨ goal``.

    Premises are simplified, trivially-true ones dropped, duplicates
    removed, and the remainder sorted by their repr — so premise order,
    repetition and already-simplified duplicates cannot cause a miss.
    """
    kept: List[ast.Expr] = []
    seen: Set[ast.Expr] = set()
    for premise in premises:
        premise = simplify(premise)
        if premise == ast.TRUE or premise in seen:
            continue
        seen.add(premise)
        kept.append(premise)
    kept.sort(key=repr)
    return (simplify(goal), tuple(kept), frozenset(bool_vars))


def oracle_digest(key: Tuple) -> str:
    """A process-portable digest of a normalized query key.

    The structural key from :func:`normalize_query` contains a frozenset
    whose repr order follows the per-process string hash seed, so the
    digest canonicalizes it to a sorted tuple before hashing.  Worker
    processes and the parent therefore compute the same digest for the
    same query, which is what lets the process discharge backend ship
    answer maps across the pickle boundary without shipping the (much
    larger) structural keys themselves.
    """
    goal, premises, bool_vars = key
    payload = repr((goal, premises, tuple(sorted(bool_vars))))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """A memoized entailment answer.

    ``status`` is the solver verdict on ``premises ∧ ¬goal`` ("unsat" =
    valid, "sat" = refuted with ``model``, "unknown" = gave up).
    ``certificate`` is the proof witness behind a valid answer when the
    solve ran with witnesses on (plain picklable data — it crosses both
    the single-flight cache and the process-backend oracle unchanged);
    None for refuted/unknown answers and for witness-off solves.
    """

    valid: bool
    status: str
    model: Optional[Model] = None
    certificate: Optional[object] = None


class QueryCache:
    """A thread-safe, **single-flight**, **LRU** cache of normalized
    validity queries.

    ``hits``/``misses`` count lookups globally; callers that want
    per-consumer accounting (e.g. :class:`ValidityChecker`) keep their
    own tallies from the lookup results.

    The cache is bounded: once ``max_entries`` is reached the least
    recently *used* entry (lookups and stores both refresh recency) is
    evicted, so long Houdini runs and registry sweeps cannot grow it
    without limit.  ``evictions`` counts the entries dropped; the full
    counter set is available from :meth:`stats`.

    **Single-flight:** :meth:`acquire` hands the same key to exactly one
    solver at a time — a second thread asking while the first is mid
    solve *waits* for the stored answer instead of solving redundantly.
    This is what makes the threaded discharge backend's solve-call and
    cache-hit counters identical to the serial backend's for every job
    count: the number of solves equals the number of distinct normalized
    queries, regardless of scheduling.  In the uncontended (serial) case
    ``acquire``/``store`` count exactly like ``lookup``/``store`` always
    did.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: Keys currently being solved → event waiters block on.
        self._pending: Dict[Tuple, threading.Event] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Tuple) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
                self._entries.move_to_end(key)
            return entry

    def acquire(self, key: Tuple) -> Optional[CacheEntry]:
        """A cached answer, or the *right to solve* ``key``.

        Returns the entry on a hit.  On a miss the caller now owns the
        key's single flight and **must** call :meth:`store` (or
        :meth:`cancel` on error) — concurrent acquirers of the same key
        block until then and receive the stored entry as a hit.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return entry
                pending = self._pending.get(key)
                if pending is None:
                    self._pending[key] = threading.Event()
                    self.misses += 1
                    return None
            pending.wait()

    def store(self, key: Tuple, entry: CacheEntry) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            pending = self._pending.pop(key, None)
        if pending is not None:
            pending.set()

    def cancel(self, key: Tuple) -> None:
        """Give up a single flight without an answer (solver raised).

        Waiters wake, find no entry, and the first of them takes over
        the flight.
        """
        with self._lock:
            pending = self._pending.pop(key, None)
        if pending is not None:
            pending.set()

    def stats(self) -> Dict[str, int]:
        """A consistent snapshot of the cache counters.

        ``pending`` is the number of single-flight solves currently in
        progress — nonzero only while queries are actually being solved,
        so a long-lived server's ``status`` endpoint can report live
        solver pressure alongside the hit/miss history.
        """
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "pending": len(self._pending),
            }

    def clear(self) -> None:
        with self._lock:
            for pending in self._pending.values():
                pending.set()
            self._pending.clear()
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0


# ---------------------------------------------------------------------------
# The incremental context
# ---------------------------------------------------------------------------


@dataclass
class ContextStats:
    """Counters a :class:`SolverContext` accumulates."""

    queries: int = 0
    cache_hits: int = 0
    solve_calls: int = 0
    pushes: int = 0
    pops: int = 0

    def merge(self, other: "ContextStats") -> None:
        self.queries += other.queries
        self.cache_hits += other.cache_hits
        self.solve_calls += other.solve_calls
        self.pushes += other.pushes
        self.pops += other.pops

    def to_dict(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "solve_calls": self.solve_calls,
            "pushes": self.pushes,
            "pops": self.pops,
        }


class SolverContext:
    """Push/pop assumption scopes over one persistent encoder + solver.

    Usage pattern (the verifier's obligation groups)::

        ctx = SolverContext(cache=shared_cache)
        for premise in shared_premises:
            ctx.assert_expr(premise)          # base scope, asserted once
        for goal, extras in queries:
            valid, model = ctx.check_entailment(goal, extras)

    Each :meth:`check_entailment` runs in its own pushed scope, so the
    base premises are encoded exactly once and theory lemmas learned for
    one goal speed up the next.
    """

    def __init__(
        self,
        bool_vars: Optional[Set[str]] = None,
        cache: Optional[QueryCache] = None,
        max_rounds: int = 100_000,
        oracle: Optional[Dict[str, CacheEntry]] = None,
        witness: bool = False,
    ) -> None:
        self.bool_vars = set(bool_vars or ())
        self.encoder = Encoder(bool_vars=self.bool_vars)
        self.solver = SMTSolver(max_rounds=max_rounds)
        #: Emit proof certificates for valid answers (see repro.witness).
        self.witness = witness
        #: The certificate behind the most recent valid answer (solve,
        #: cache hit or oracle replay), or None.
        self.last_certificate: Optional[object] = None
        if witness:
            self.solver.enable_proof()
        self.cache = cache
        #: Pre-solved answers keyed by :func:`oracle_digest` — the
        #: process backend's replay path: a cache miss whose answer the
        #: oracle holds is accounted exactly like a solve (the solve
        #: really happened, in a worker process) and fed to the shared
        #: cache, skipping the redundant parent-side DPLL(T) run.
        self.oracle = oracle
        self.stats = ContextStats()
        #: premises per scope; index 0 is the base scope.
        self._premises: List[List[ast.Expr]] = [[]]

    @property
    def profile(self) -> SolverProfile:
        """The inner-loop counters of the underlying solver."""
        return self.solver.profile

    # -- assertions ------------------------------------------------------------

    def assert_expr(self, expr: ast.Expr) -> None:
        """Assert a boolean premise in the current scope."""
        self._premises[-1].append(expr)
        self.solver.add(self.encoder.boolean(expr))

    def push(self) -> None:
        self.solver.push()
        self._premises.append([])
        self.stats.pushes += 1

    def pop(self) -> None:
        self.solver.pop()
        self._premises.pop()
        self.stats.pops += 1

    @property
    def premises(self) -> List[ast.Expr]:
        """All premises currently in force, outermost first."""
        return [p for scope in self._premises for p in scope]

    # -- queries ---------------------------------------------------------------

    def check_entailment(
        self, goal: ast.Expr, extra_premises: Iterable[ast.Expr] = ()
    ) -> Tuple[bool, Optional[Model]]:
        """Is ``premises ∧ extra_premises ⊨ goal``?  One solve, both answers.

        Returns ``(valid, model)``: ``model`` is a counterexample when the
        entailment is refuted (None when valid or when the solver gave
        up).  Consults and feeds the shared :class:`QueryCache` under the
        full normalized premise set, so answers interchange with
        :class:`~repro.solver.interface.ValidityChecker` queries.
        """
        extra = list(extra_premises)
        self.stats.queries += 1
        key = None
        if self.cache is not None:
            key = normalize_query(goal, self.premises + extra, self.bool_vars)
            # Single flight: a concurrent identical query waits for this
            # solve instead of duplicating it (see QueryCache.acquire).
            entry = self.cache.acquire(key)
            if entry is not None:
                self.stats.cache_hits += 1
                self.last_certificate = entry.certificate
                return entry.valid, entry.model

        if self.oracle is not None and key is not None:
            entry = self.oracle.get(oracle_digest(key))
            if entry is not None:
                # A worker already ran this solve; book it with the
                # canonical serial accounting (one pushed scope, one
                # solve, one pop) so merged counters stay byte-identical
                # to a serial run, and publish the answer so later
                # queries hit the shared cache exactly as they would
                # have serially.
                self.stats.pushes += 1
                self.stats.pops += 1
                self.stats.solve_calls += 1
                self.cache.store(key, entry)
                self.last_certificate = entry.certificate
                return entry.valid, entry.model

        try:
            self.push()
            try:
                for premise in extra:
                    self.assert_expr(premise)
                self.solver.add(F.mk_not(self.encoder.boolean(goal)))
                result = self.solver.check()
            finally:
                self.pop()
        except BaseException:
            if self.cache is not None and key is not None:
                self.cache.cancel(key)
            raise
        self.stats.solve_calls += 1

        entry = entry_from_result(result)
        if self.witness and entry.valid:
            from repro.witness.emit import certificate_from_solver

            entry.certificate = certificate_from_solver(self.solver)
        self.last_certificate = entry.certificate
        if self.cache is not None and key is not None:
            self.cache.store(key, entry)
        return entry.valid, entry.model


def entry_from_result(result: SatResult) -> CacheEntry:
    """Fold a raw solver verdict into a cacheable entailment answer."""
    if result.is_unsat:
        return CacheEntry(valid=True, status="unsat")
    if result.status == "sat":
        return CacheEntry(
            valid=False, status="sat", model=(result.arith_model, result.bool_model)
        )
    return CacheEntry(valid=False, status="unknown")
