"""Inner-loop performance counters for the DPLL(T) stack.

A single :class:`SolverProfile` instance is shared by an
:class:`~repro.solver.smt.SMTSolver`, its CDCL core and its simplex
theory solver, so one object accumulates every interesting event of a
solve: SAT-level work (decisions, propagations, conflicts, restarts,
learned/deleted clauses), theory-level work (pivots, bound assertions,
theory conflicts) and DPLL(T) rounds.  The verification layer merges
the per-context profiles into one per-run profile and surfaces it
through :class:`~repro.verify.verifier.VerificationOutcome` and the CLI
``--profile`` flag.

Counters are plain attribute increments on the hot paths — cheap enough
to stay always-on — and deterministic for a given input, which is what
lets CI guard on them instead of wall-clock seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class SolverProfile:
    """Counter bundle for the solver inner loops."""

    #: DPLL(T) checks executed (one per SMTSolver.check()).
    solve_calls: int = 0
    #: candidate-model rounds inside those checks (SAT solve → theory check).
    rounds: int = 0
    # -- SAT core ----------------------------------------------------------
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    # -- simplex theory solver --------------------------------------------
    pivots: int = 0
    bound_asserts: int = 0
    theory_conflicts: int = 0
    # -- term layer --------------------------------------------------------
    intern_hits: int = 0
    intern_misses: int = 0

    def merge(self, other: "SolverProfile") -> None:
        for field in fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))

    def to_dict(self) -> Dict[str, int]:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @staticmethod
    def from_dict(data: Dict[str, int]) -> "SolverProfile":
        names = {field.name for field in fields(SolverProfile)}
        return SolverProfile(**{k: v for k, v in data.items() if k in names})

    def describe(self) -> str:
        """A compact one-line rendering for CLI output."""
        d = self.to_dict()
        return ", ".join(f"{name}={value}" for name, value in d.items() if value)
