"""A from-scratch SMT solver for quantifier-free linear real arithmetic.

The original ShadowDP prototype discharges its typing constraints with Z3
and verifies transformed programs with CPAChecker.  Neither tool is
available in this offline environment, so this package implements the
decision procedure the pipeline needs:

``repro.solver.intern``
    Hash-consing tables: every formula and linear expression is interned,
    so structural equality is pointer equality and per-node caches are
    shared process-wide.

``repro.solver.linear``
    Exact linear expressions over :class:`fractions.Fraction`, interned
    with cached variable tuples and scale-canonical forms.

``repro.solver.delta``
    Delta-rationals ``a + b·δ`` (Dutertre & de Moura), which let the
    simplex core handle strict inequalities exactly.

``repro.solver.formula``
    A small logic IR: boolean structure over linear-arithmetic atoms,
    hash-consed, with leaf sets (atoms, boolean/arithmetic variables)
    cached on the node.

``repro.solver.cnf``
    Tseitin transformation to CNF with structural sharing.

``repro.solver.sat``
    A CDCL SAT solver (two-watched literals, 1UIP learning, heap-based
    VSIDS with exponential decay, phase saving, Luby restarts,
    LBD-based clause-database reduction).

``repro.solver.simplex``
    The Dutertre–de Moura general simplex for conjunctions of linear
    constraints, producing minimal-ish conflict sets: integer-indexed
    rows with column occurrence lists, a trail-based bound stack
    (``push_state``/``pop_state``) and Dantzig/Bland pivot selection.

``repro.solver.profile``
    The ``SolverProfile`` counter bundle (pivots, propagations,
    conflicts, restarts, interned-node hits…) threaded through the whole
    stack and surfaced by the CLI ``--profile`` flag.

``repro.solver.smt``
    The lazy DPLL(T) loop tying the SAT core to the simplex, with model
    extraction (concrete rational witnesses for satisfiable queries).

``repro.solver.encode``
    Translation from ShadowDP expressions (:mod:`repro.lang.ast`) into the
    logic IR, eliminating ternaries and absolute values by case analysis
    and abstracting nonlinear terms as opaque variables.

``repro.solver.context``
    Incremental solving: push/pop assumption scopes over one persistent
    encoder + solver (:class:`SolverContext`) and the shared,
    normalized-query :class:`QueryCache` behind every validity check.
"""

from repro.solver.linear import LinExpr
from repro.solver.delta import DeltaRat
from repro.solver import formula
from repro.solver.formula import (
    Formula,
    FTrue,
    FFalse,
    TRUE_F,
    FALSE_F,
    BVar,
    FAtom,
    FNot,
    FAnd,
    FOr,
    mk_and,
    mk_or,
    mk_not,
    mk_implies,
    mk_iff,
)
from repro.solver.smt import SMTSolver, SatResult
from repro.solver.encode import Encoder, EncodeError
from repro.solver.context import QueryCache, SolverContext, ContextStats
from repro.solver.interface import ValidityChecker, is_valid, find_model
from repro.solver.profile import SolverProfile

__all__ = [
    "LinExpr",
    "DeltaRat",
    "formula",
    "Formula",
    "FTrue",
    "FFalse",
    "TRUE_F",
    "FALSE_F",
    "BVar",
    "FAtom",
    "FNot",
    "FAnd",
    "FOr",
    "mk_and",
    "mk_or",
    "mk_not",
    "mk_implies",
    "mk_iff",
    "SMTSolver",
    "SatResult",
    "Encoder",
    "EncodeError",
    "QueryCache",
    "SolverContext",
    "ContextStats",
    "ValidityChecker",
    "is_valid",
    "find_model",
    "SolverProfile",
]
