"""Monomial normal form for nonlinear terms.

The target programs contain a restricted form of nonlinearity: privacy
costs like ``2·eps/(4·N)`` and invariants like ``count·(eps/(2·N))``.
Rather than treating every syntactically distinct nonlinear term as its
own opaque constant (which would make ``2·eps/(4·N)`` and ``eps/(2·N)``
unrelated), products and quotients of *atoms* are normalised to

    coefficient · Π numerator_atoms / Π denominator_atoms

with cancellation.  Each distinct normalised monomial gets a single
solver variable, so proportional terms automatically share it and linear
reasoning over monomials goes a long way.  The remaining genuinely
nonlinear steps (e.g. ``count ≤ N ⇒ count·eps/N ≤ eps``) are covered by
the instantiation lemmas in :mod:`repro.verify.lemmas`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Monomial:
    """``Π numerator / Π denominator`` over atom names, both sorted.

    An *atom* here is the solver-variable name of a program variable or
    an opaque term (e.g. ``q[i]`` reads).  The empty monomial is the
    constant 1.
    """

    numerator: Tuple[str, ...] = ()
    denominator: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "numerator", tuple(sorted(self.numerator)))
        object.__setattr__(self, "denominator", tuple(sorted(self.denominator)))

    @staticmethod
    def unit() -> "Monomial":
        return Monomial()

    @staticmethod
    def of_atom(name: str) -> "Monomial":
        return Monomial((name,), ())

    def is_unit(self) -> bool:
        return not self.numerator and not self.denominator

    def is_single_atom(self) -> Optional[str]:
        if len(self.numerator) == 1 and not self.denominator:
            return self.numerator[0]
        return None

    def __mul__(self, other: "Monomial") -> "Monomial":
        return _cancel(
            self.numerator + other.numerator,
            self.denominator + other.denominator,
        )

    def inverse(self) -> "Monomial":
        return Monomial(self.denominator, self.numerator)

    def __truediv__(self, other: "Monomial") -> "Monomial":
        return self * other.inverse()

    def divides_out(self, atom: str) -> Optional["Monomial"]:
        """The monomial with one occurrence of ``atom`` removed from the
        numerator, or None if absent."""
        if atom not in self.numerator:
            return None
        remaining = list(self.numerator)
        remaining.remove(atom)
        return Monomial(tuple(remaining), self.denominator)

    def replace_factor(self, old: str, new: str) -> Optional["Monomial"]:
        """Substitute one numerator occurrence of ``old`` by ``new``."""
        without = self.divides_out(old)
        if without is None:
            return None
        return without * Monomial.of_atom(new)

    def name(self) -> str:
        """The canonical solver-variable name of this monomial."""
        if self.is_unit():
            return "%unit"
        single = self.is_single_atom()
        if single is not None:
            return single
        num = "*".join(self.numerator) if self.numerator else "1"
        if self.denominator:
            return f"mon:{num}/{'*'.join(self.denominator)}"
        return f"mon:{num}"

    def __repr__(self) -> str:
        return self.name()


def _cancel(numerator: Tuple[str, ...], denominator: Tuple[str, ...]) -> Monomial:
    num = list(numerator)
    den = []
    for atom in denominator:
        if atom in num:
            num.remove(atom)
        else:
            den.append(atom)
    return Monomial(tuple(num), tuple(den))


class Polynomial:
    """A linear combination of monomials with rational coefficients.

    This is the intermediate form the encoder multiplies and divides;
    it converts to a :class:`~repro.solver.linear.LinExpr` over monomial
    names at atom-creation time.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[Monomial, Fraction]] = None) -> None:
        self.terms: Dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff != 0:
                    self.terms[mono] = coeff

    @staticmethod
    def constant(value: Fraction) -> "Polynomial":
        return Polynomial({Monomial.unit(): Fraction(value)})

    @staticmethod
    def atom(name: str) -> "Polynomial":
        return Polynomial({Monomial.of_atom(name): Fraction(1)})

    def __add__(self, other: "Polynomial") -> "Polynomial":
        merged = dict(self.terms)
        for mono, coeff in other.terms.items():
            merged[mono] = merged.get(mono, Fraction(0)) + coeff
        return Polynomial(merged)

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        result: Dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = m1 * m2
                result[mono] = result.get(mono, Fraction(0)) + c1 * c2
        return Polynomial(result)

    def scale(self, factor: Fraction) -> "Polynomial":
        return Polynomial({m: c * factor for m, c in self.terms.items()})

    def as_constant(self) -> Optional[Fraction]:
        if not self.terms:
            return Fraction(0)
        if len(self.terms) == 1:
            ((mono, coeff),) = self.terms.items()
            if mono.is_unit():
                return coeff
        return None

    def as_single_monomial(self) -> Optional[Tuple[Monomial, Fraction]]:
        if len(self.terms) == 1:
            ((mono, coeff),) = self.terms.items()
            return mono, coeff
        return None

    def divide(self, divisor: "Polynomial") -> Optional["Polynomial"]:
        """Exact division when the divisor is a single monomial term."""
        const = divisor.as_constant()
        if const is not None:
            if const == 0:
                return None
            return self.scale(Fraction(1) / const)
        single = divisor.as_single_monomial()
        if single is None:
            return None
        mono, coeff = single
        inverse = mono.inverse()
        return Polynomial(
            {m * inverse: c / coeff for m, c in self.terms.items()}
        )

    def monomials(self):
        return self.terms.items()

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        return " + ".join(f"{c}*{m}" for m, c in sorted(self.terms.items(), key=lambda kv: kv[0].name()))
