"""Tseitin transformation from the logic IR to CNF.

Every distinct subformula gets one propositional variable (structural
sharing comes for free because formula nodes are hashable).  Theory atoms
and source-level booleans map to *root* variables; the mapping back is
recorded so the DPLL(T) loop can translate SAT assignments into theory
literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.solver import formula as F

#: A literal is a nonzero int: +v for variable v, -v for its negation.
Literal = int
Clause = Tuple[Literal, ...]


@dataclass
class CNF:
    """A CNF instance plus the maps tying SAT variables to atoms."""

    clauses: List[Clause] = field(default_factory=list)
    num_vars: int = 0
    #: SAT variable -> theory atom (only for atom roots)
    atom_of_var: Dict[int, F.FAtom] = field(default_factory=dict)
    #: SAT variable -> source boolean name (only for BVar roots)
    bool_of_var: Dict[int, str] = field(default_factory=dict)


class TseitinEncoder:
    """Accumulates constraints from several formulas into one CNF."""

    def __init__(self) -> None:
        self.cnf = CNF()
        self._var_of: Dict[F.Formula, int] = {}

    def _fresh(self) -> int:
        self.cnf.num_vars += 1
        return self.cnf.num_vars

    def new_selector(self) -> int:
        """A fresh SAT variable not tied to any formula.

        The incremental SMT layer uses these as *activation literals*:
        clauses guarded by ``-selector`` are active only while the scope's
        selector is passed as a solve-time assumption.
        """
        return self._fresh()

    def _add(self, *literals: Literal) -> None:
        self.cnf.clauses.append(tuple(literals))

    def literal(self, node: F.Formula) -> Literal:
        """The literal representing ``node``, adding definition clauses."""
        if isinstance(node, F.FTrue):
            return self._true_literal()
        if isinstance(node, F.FFalse):
            return -self._true_literal()
        if isinstance(node, F.FNot):
            return -self.literal(node.operand)
        if node in self._var_of:
            return self._var_of[node]

        if isinstance(node, F.BVar):
            var = self._fresh()
            self.cnf.bool_of_var[var] = node.name
            self._var_of[node] = var
            return var
        if isinstance(node, F.FAtom):
            var = self._fresh()
            self.cnf.atom_of_var[var] = node
            self._var_of[node] = var
            return var
        if isinstance(node, F.FAnd):
            parts = [self.literal(arg) for arg in node.args]
            var = self._fresh()
            self._var_of[node] = var
            # var -> part_i ;  (parts) -> var
            for part in parts:
                self._add(-var, part)
            self._add(var, *[-p for p in parts])
            return var
        if isinstance(node, F.FOr):
            parts = [self.literal(arg) for arg in node.args]
            var = self._fresh()
            self._var_of[node] = var
            # part_i -> var ;  var -> (parts)
            for part in parts:
                self._add(-part, var)
            self._add(-var, *parts)
            return var
        raise TypeError(f"tseitin: unknown formula {node!r}")

    def _true_literal(self) -> Literal:
        node = F.TRUE_F
        if node not in self._var_of:
            var = self._fresh()
            self._var_of[node] = var
            self._add(var)
        return self._var_of[node]

    def assert_formula(self, node: F.Formula) -> None:
        """Require ``node`` to hold (adds a unit clause on its literal)."""
        if isinstance(node, F.FTrue):
            return
        if isinstance(node, F.FFalse):
            self._add()  # the empty clause: unsatisfiable
            return
        # Top-level conjunctions assert each conjunct directly; this keeps
        # the CNF small for the large conjunctions the VC generator emits.
        if isinstance(node, F.FAnd):
            for arg in node.args:
                self.assert_formula(arg)
            return
        self._add(self.literal(node))


def encode(*assertions: F.Formula) -> CNF:
    """Encode a conjunction of formulas into a single CNF instance."""
    encoder = TseitinEncoder()
    for node in assertions:
        encoder.assert_formula(node)
    return encoder.cnf
