"""Translation from ShadowDP expressions to the solver's logic IR.

The translation performs three normalizations:

* **Case analysis** for ``?:`` and ``abs``: a numeric expression becomes
  a list of ``(guard, LinExpr)`` cases whose guards are exhaustive and
  mutually exclusive; comparisons then distribute over the cases.
* **Linear-only arithmetic**: products and quotients with one constant
  side fold into the linear expression; genuinely nonlinear subterms are
  abstracted as fresh *opaque* variables (recorded in
  :attr:`Encoder.opaque`) — callers such as the verifier may add
  instantiation lemmas about them, mirroring how the paper rewrites
  nonlinear code for CPAChecker (Section 6.1).
* **Indexed access naming**: ``q[3]`` (a constant index) becomes the
  scalar variable ``q[3]``; symbolic indices are delegated to the
  ``atom_namer`` callback, which the VC generator uses to apply
  Ackermann-style congruence instantiation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.lang import ast
from repro.lang.pretty import pretty_expr
from repro.solver import formula as F
from repro.solver.linear import LinExpr
from repro.solver.monomials import Monomial, Polynomial


class EncodeError(ValueError):
    """Raised for expressions outside the encodable fragment."""


#: One arm of a numeric case split.
Case = Tuple[F.Formula, LinExpr]


def default_atom_namer(expr: ast.Expr) -> str:
    """Name an opaque term canonically by its pretty-printed syntax."""
    return f"<{pretty_expr(expr)}>"


class Encoder:
    """Translates :mod:`repro.lang.ast` expressions into formulas.

    Parameters
    ----------
    bool_vars:
        Names of source variables with boolean type (they become
        propositional variables rather than arithmetic ones).
    atom_namer:
        Callback assigning a solver variable name to non-linear or
        symbolically-indexed subterms.  Defaults to canonical pretty
        printing, which is adequate when no congruence reasoning is
        needed.
    """

    def __init__(
        self,
        bool_vars: Optional[Set[str]] = None,
        atom_namer: Callable[[ast.Expr], str] = default_atom_namer,
    ) -> None:
        self.bool_vars = set(bool_vars or ())
        self.atom_namer = atom_namer
        #: opaque solver variable name -> the AST term it stands for
        self.opaque: Dict[str, ast.Expr] = {}
        #: composite monomial name -> its factor structure (for lemmas)
        self.monomials: Dict[str, Monomial] = {}

    # -- entry points --------------------------------------------------------

    def boolean(self, expr: ast.Expr) -> F.Formula:
        """Encode a boolean expression as a formula."""
        if isinstance(expr, ast.BoolLit):
            return F.TRUE_F if expr.value else F.FALSE_F
        if isinstance(expr, ast.Var):
            if expr.name in self.bool_vars:
                return F.BVar(expr.name)
            raise EncodeError(f"variable {expr.name} used as boolean but not declared bool")
        if isinstance(expr, ast.Not):
            return F.mk_not(self.boolean(expr.operand))
        if isinstance(expr, ast.BinOp):
            if expr.op == "&&":
                return F.mk_and(self.boolean(expr.left), self.boolean(expr.right))
            if expr.op == "||":
                return F.mk_or(self.boolean(expr.left), self.boolean(expr.right))
            if expr.op in ast.COMPARATORS:
                if self._is_boolean(expr.left) or self._is_boolean(expr.right):
                    return self._boolean_comparison(expr)
                return self._numeric_comparison(expr.op, expr.left, expr.right)
            raise EncodeError(f"operator {expr.op} is not boolean")
        if isinstance(expr, ast.Ternary):
            cond = self.boolean(expr.cond)
            return F.mk_ite(cond, self.boolean(expr.then), self.boolean(expr.orelse))
        if isinstance(expr, ast.ForAll):
            raise EncodeError("quantifiers must be instantiated before encoding")
        raise EncodeError(f"cannot encode {expr!r} as a boolean")

    def cases(self, expr: ast.Expr) -> List[Case]:
        """Encode a numeric expression as exhaustive guarded linear cases.

        Nonlinear sub-terms are normalised to monomials (see
        :mod:`repro.solver.monomials`), so proportional costs like
        ``2·eps/(4·N)`` and ``eps/(2·N)`` share a solver variable and
        products distribute over sums exactly.
        """
        return [(guard, self._poly_to_lin(poly)) for guard, poly in self._poly_cases(expr)]

    def _poly_cases(self, expr: ast.Expr) -> List[Tuple[F.Formula, Polynomial]]:
        if isinstance(expr, ast.Real):
            return [(F.TRUE_F, Polynomial.constant(expr.value))]
        if isinstance(expr, ast.Var):
            if expr.name in self.bool_vars:
                raise EncodeError(f"boolean variable {expr.name} used as number")
            return [(F.TRUE_F, Polynomial.atom(expr.name))]
        if isinstance(expr, ast.Hat):
            return [(F.TRUE_F, Polynomial.atom(f"{expr.base}^{expr.version}"))]
        if isinstance(expr, ast.Index):
            return [(F.TRUE_F, Polynomial.atom(self._index_name(expr)))]
        if isinstance(expr, ast.Neg):
            return [(g, -poly) for g, poly in self._poly_cases(expr.operand)]
        if isinstance(expr, ast.Abs):
            result: List[Tuple[F.Formula, Polynomial]] = []
            for guard, poly in self._poly_cases(expr.operand):
                lin = self._poly_to_lin(poly)
                nonneg = F.mk_atom("<=", -lin)  # poly >= 0
                result.append((F.mk_and(guard, nonneg), poly))
                result.append((F.mk_and(guard, F.mk_not(nonneg)), -poly))
            return _prune(result)
        if isinstance(expr, ast.Ternary):
            cond = self.boolean(expr.cond)
            result = []
            for guard, poly in self._poly_cases(expr.then):
                result.append((F.mk_and(cond, guard), poly))
            for guard, poly in self._poly_cases(expr.orelse):
                result.append((F.mk_and(F.mk_not(cond), guard), poly))
            return _prune(result)
        if isinstance(expr, ast.BinOp):
            if expr.op in ("+", "-", "*"):
                result = []
                for g1, p1 in self._poly_cases(expr.left):
                    for g2, p2 in self._poly_cases(expr.right):
                        guard = F.mk_and(g1, g2)
                        if isinstance(guard, F.FFalse):
                            continue
                        if expr.op == "+":
                            poly = p1 + p2
                        elif expr.op == "-":
                            poly = p1 - p2
                        else:
                            poly = p1 * p2
                        result.append((guard, poly))
                return _prune(result)
            if expr.op == "/":
                return self._divide(expr)
            raise EncodeError(f"operator {expr.op} is not numeric")
        raise EncodeError(f"cannot encode {expr!r} as a number")

    def _poly_to_lin(self, poly: Polynomial) -> LinExpr:
        """Lower a polynomial to a LinExpr over monomial variable names."""
        terms: Dict[str, Fraction] = {}
        constant = Fraction(0)
        for mono, coeff in poly.monomials():
            if mono.is_unit():
                constant += coeff
                continue
            name = mono.name()
            if mono.is_single_atom() is None:
                self.monomials[name] = mono
            terms[name] = terms.get(name, Fraction(0)) + coeff
        return LinExpr(terms, constant)

    # -- internals ------------------------------------------------------------

    def _is_boolean(self, expr: ast.Expr) -> bool:
        if isinstance(expr, (ast.BoolLit, ast.Not)):
            return True
        if isinstance(expr, ast.Var):
            return expr.name in self.bool_vars
        if isinstance(expr, ast.BinOp):
            return expr.op in ast.BOOL_OPS or expr.op in ast.COMPARATORS
        if isinstance(expr, ast.Ternary):
            return self._is_boolean(expr.then) and self._is_boolean(expr.orelse)
        return False

    def _boolean_comparison(self, expr: ast.BinOp) -> F.Formula:
        if expr.op not in ("==", "!="):
            raise EncodeError(f"booleans cannot be compared with {expr.op}")
        iff = F.mk_iff(self.boolean(expr.left), self.boolean(expr.right))
        return iff if expr.op == "==" else F.mk_not(iff)

    def _numeric_comparison(self, op: str, left: ast.Expr, right: ast.Expr) -> F.Formula:
        arms = []
        for g1, p1 in self._poly_cases(left):
            for g2, p2 in self._poly_cases(right):
                guard = F.mk_and(g1, g2)
                if isinstance(guard, F.FFalse):
                    continue
                l1, l2 = self._poly_to_lin(p1), self._poly_to_lin(p2)
                arms.append(F.mk_and(guard, F.mk_atom(op, l1, l2)))
        return F.mk_or(*arms)

    def _divide(self, expr: ast.BinOp) -> List[Tuple[F.Formula, Polynomial]]:
        result: List[Tuple[F.Formula, Polynomial]] = []
        for g1, p1 in self._poly_cases(expr.left):
            for g2, p2 in self._poly_cases(expr.right):
                guard = F.mk_and(g1, g2)
                if isinstance(guard, F.FFalse):
                    continue
                if p2.as_constant() == 0:
                    raise EncodeError(f"division by the constant zero in {pretty_expr(expr)}")
                quotient = p1.divide(p2)
                if quotient is None:
                    # Division by a sum: abstract the whole quotient.
                    result.append((guard, Polynomial.atom(self._opaque(expr))))
                else:
                    result.append((guard, quotient))
        return _prune(result)

    def _opaque(self, expr: ast.Expr) -> str:
        name = self.atom_namer(expr)
        self.opaque[name] = expr
        return name

    def _index_name(self, expr: ast.Index) -> str:
        if isinstance(expr.base, ast.Var):
            base = expr.base.name
        elif isinstance(expr.base, ast.Hat):
            base = f"{expr.base.base}^{expr.base.version}"
        else:
            return self._opaque(expr)
        index_cases = self.cases(expr.index)
        if len(index_cases) == 1 and index_cases[0][1].is_constant():
            value = index_cases[0][1].constant_value()
            if value.denominator == 1:
                return f"{base}[{value.numerator}]"
        return self._opaque(expr)


def _prune(cases):
    """Drop statically-false arms and merge equal payloads."""
    kept = []
    for guard, payload in cases:
        if isinstance(guard, F.FFalse):
            continue
        kept.append((guard, payload))
    if not kept:
        raise EncodeError("numeric expression has no feasible cases")
    # Merge identical payloads to curb exponential growth.
    merged: Dict[object, F.Formula] = {}
    order: List[object] = []
    for guard, payload in kept:
        key = _payload_key(payload)
        if key in merged:
            merged[key] = (F.mk_or(merged[key][0], guard), payload)
        else:
            merged[key] = (guard, payload)
            order.append(key)
    return [merged[key] for key in order]


def _payload_key(payload) -> object:
    if isinstance(payload, Polynomial):
        return tuple(sorted(((m.name(), c) for m, c in payload.monomials())))
    return payload
