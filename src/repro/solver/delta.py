"""Delta-rationals: exact arithmetic with an infinitesimal.

A :class:`DeltaRat` represents ``a + b·δ`` where ``δ`` is a positive
infinitesimal.  Following Dutertre & de Moura ("A fast linear-arithmetic
solver for DPLL(T)", CAV 2006), strict bounds like ``x < c`` become weak
bounds ``x <= c - δ`` over delta-rationals, so the simplex core needs no
special cases for strictness.  When a model is extracted, a concrete
positive rational value for ``δ`` small enough to satisfy every strict
constraint is computed (see :func:`concretize`).

The class is deliberately bare-metal — ``__slots__``, constructor-bypass
allocation in the arithmetic operators, field-by-field comparisons — as
delta-rational sums and scalings sit on the simplex pivot/update path,
the hottest loop of the whole solver.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Tuple, Union

Number = Union[int, Fraction]

_ZERO = Fraction(0)


class DeltaRat:
    """The value ``real + delta * infinitesimal``."""

    __slots__ = ("real", "delta")

    def __init__(self, real: Number, delta: Number = _ZERO) -> None:
        if not isinstance(real, Fraction):
            real = Fraction(real)
        if not isinstance(delta, Fraction):
            delta = Fraction(delta)
        self.real = real
        self.delta = delta

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Union["DeltaRat", Number]) -> "DeltaRat":
        if not isinstance(other, DeltaRat):
            other = _coerce(other)
        result = object.__new__(DeltaRat)
        result.real = self.real + other.real
        result.delta = self.delta + other.delta
        return result

    __radd__ = __add__

    def __neg__(self) -> "DeltaRat":
        result = object.__new__(DeltaRat)
        result.real = -self.real
        result.delta = -self.delta
        return result

    def __sub__(self, other: Union["DeltaRat", Number]) -> "DeltaRat":
        if not isinstance(other, DeltaRat):
            other = _coerce(other)
        result = object.__new__(DeltaRat)
        result.real = self.real - other.real
        result.delta = self.delta - other.delta
        return result

    def __rsub__(self, other: Number) -> "DeltaRat":
        return _coerce(other) + (-self)

    def scale(self, factor: Number) -> "DeltaRat":
        if not isinstance(factor, Fraction):
            factor = Fraction(factor)
        result = object.__new__(DeltaRat)
        result.real = self.real * factor
        result.delta = self.delta * factor
        return result

    def __mul__(self, factor: Number) -> "DeltaRat":
        return self.scale(factor)

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "DeltaRat":
        return self.scale(Fraction(1) / Fraction(divisor))

    # -- ordering (lexicographic: δ is positive but smaller than any
    #    positive rational) -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DeltaRat):
            return self.real == other.real and self.delta == other.delta
        if isinstance(other, (int, Fraction)):
            return self.delta == 0 and self.real == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.real, self.delta))

    def __lt__(self, other: Union["DeltaRat", Number]) -> bool:
        if not isinstance(other, DeltaRat):
            other = _coerce(other)
        if self.real != other.real:
            return self.real < other.real
        return self.delta < other.delta

    def __le__(self, other: Union["DeltaRat", Number]) -> bool:
        if not isinstance(other, DeltaRat):
            other = _coerce(other)
        if self.real != other.real:
            return self.real < other.real
        return self.delta <= other.delta

    def __gt__(self, other: Union["DeltaRat", Number]) -> bool:
        if not isinstance(other, DeltaRat):
            other = _coerce(other)
        if self.real != other.real:
            return self.real > other.real
        return self.delta > other.delta

    def __ge__(self, other: Union["DeltaRat", Number]) -> bool:
        if not isinstance(other, DeltaRat):
            other = _coerce(other)
        if self.real != other.real:
            return self.real > other.real
        return self.delta >= other.delta

    def __repr__(self) -> str:
        if self.delta == 0:
            return f"{self.real}"
        sign = "+" if self.delta > 0 else "-"
        return f"{self.real} {sign} {abs(self.delta)}d"

    # -- conversion ---------------------------------------------------------

    def at(self, delta_value: Fraction) -> Fraction:
        """The concrete rational once ``δ`` is fixed."""
        return self.real + self.delta * delta_value


def _coerce(value: Union[DeltaRat, Number]) -> DeltaRat:
    if isinstance(value, DeltaRat):
        return value
    return DeltaRat(Fraction(value))


ZERO_D = DeltaRat(Fraction(0))


def concretize(values: Mapping[str, DeltaRat], strict_gaps: Iterable[Tuple[DeltaRat, DeltaRat]]) -> Tuple[Fraction, dict]:
    """Pick a concrete positive ``δ`` and evaluate a delta-rational model.

    ``strict_gaps`` is a sequence of ``(lo, hi)`` pairs with ``lo < hi`` in
    delta-rational order that must remain strictly ordered after ``δ`` is
    substituted.  The classic bound is used: for each pair with
    ``lo.real < hi.real`` and ``lo.delta > hi.delta``, δ must stay below
    ``(hi.real - lo.real) / (lo.delta - hi.delta)``.

    Returns ``(delta, {name: Fraction})``.
    """
    delta = Fraction(1)
    for lo, hi in strict_gaps:
        if lo >= hi:
            raise ValueError(f"strict gap is not ordered: {lo} >= {hi}")
        if lo.real < hi.real and lo.delta > hi.delta:
            limit = (hi.real - lo.real) / (lo.delta - hi.delta)
            # Stay strictly inside the open interval.
            delta = min(delta, limit / 2)
    if delta <= 0:
        raise ValueError("could not find a positive delta")
    model = {name: value.at(delta) for name, value in values.items()}
    return delta, model
