"""Delta-rationals: exact arithmetic with an infinitesimal.

A :class:`DeltaRat` represents ``a + b·δ`` where ``δ`` is a positive
infinitesimal.  Following Dutertre & de Moura ("A fast linear-arithmetic
solver for DPLL(T)", CAV 2006), strict bounds like ``x < c`` become weak
bounds ``x <= c - δ`` over delta-rationals, so the simplex core needs no
special cases for strictness.  When a model is extracted, a concrete
positive rational value for ``δ`` small enough to satisfy every strict
constraint is computed (see :func:`concretize`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Tuple, Union

Number = Union[int, Fraction]


@dataclass(frozen=True)
class DeltaRat:
    """The value ``real + delta * infinitesimal``."""

    real: Fraction
    delta: Fraction = Fraction(0)

    def __post_init__(self) -> None:
        if not isinstance(self.real, Fraction):
            object.__setattr__(self, "real", Fraction(self.real))
        if not isinstance(self.delta, Fraction):
            object.__setattr__(self, "delta", Fraction(self.delta))

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: Union["DeltaRat", Number]) -> "DeltaRat":
        other = _coerce(other)
        return DeltaRat(self.real + other.real, self.delta + other.delta)

    __radd__ = __add__

    def __neg__(self) -> "DeltaRat":
        return DeltaRat(-self.real, -self.delta)

    def __sub__(self, other: Union["DeltaRat", Number]) -> "DeltaRat":
        return self + (-_coerce(other))

    def __rsub__(self, other: Number) -> "DeltaRat":
        return _coerce(other) + (-self)

    def scale(self, factor: Number) -> "DeltaRat":
        factor = Fraction(factor)
        return DeltaRat(self.real * factor, self.delta * factor)

    def __mul__(self, factor: Number) -> "DeltaRat":
        return self.scale(factor)

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "DeltaRat":
        return self.scale(Fraction(1) / Fraction(divisor))

    # -- ordering (lexicographic: δ is positive but smaller than any
    #    positive rational) -------------------------------------------------

    def _pair(self) -> Tuple[Fraction, Fraction]:
        return (self.real, self.delta)

    def __lt__(self, other: Union["DeltaRat", Number]) -> bool:
        return self._pair() < _coerce(other)._pair()

    def __le__(self, other: Union["DeltaRat", Number]) -> bool:
        return self._pair() <= _coerce(other)._pair()

    def __gt__(self, other: Union["DeltaRat", Number]) -> bool:
        return self._pair() > _coerce(other)._pair()

    def __ge__(self, other: Union["DeltaRat", Number]) -> bool:
        return self._pair() >= _coerce(other)._pair()

    def __repr__(self) -> str:
        if self.delta == 0:
            return f"{self.real}"
        sign = "+" if self.delta > 0 else "-"
        return f"{self.real} {sign} {abs(self.delta)}d"

    # -- conversion ---------------------------------------------------------

    def at(self, delta_value: Fraction) -> Fraction:
        """The concrete rational once ``δ`` is fixed."""
        return self.real + self.delta * delta_value


def _coerce(value: Union[DeltaRat, Number]) -> DeltaRat:
    if isinstance(value, DeltaRat):
        return value
    return DeltaRat(Fraction(value))


ZERO_D = DeltaRat(Fraction(0))


def concretize(values: Mapping[str, DeltaRat], strict_gaps: Iterable[Tuple[DeltaRat, DeltaRat]]) -> Tuple[Fraction, dict]:
    """Pick a concrete positive ``δ`` and evaluate a delta-rational model.

    ``strict_gaps`` is a sequence of ``(lo, hi)`` pairs with ``lo < hi`` in
    delta-rational order that must remain strictly ordered after ``δ`` is
    substituted.  The classic bound is used: for each pair with
    ``lo.real < hi.real`` and ``lo.delta > hi.delta``, δ must stay below
    ``(hi.real - lo.real) / (lo.delta - hi.delta)``.

    Returns ``(delta, {name: Fraction})``.
    """
    delta = Fraction(1)
    for lo, hi in strict_gaps:
        if lo >= hi:
            raise ValueError(f"strict gap is not ordered: {lo} >= {hi}")
        if lo.real < hi.real and lo.delta > hi.delta:
            limit = (hi.real - lo.real) / (lo.delta - hi.delta)
            # Stay strictly inside the open interval.
            delta = min(delta, limit / 2)
    if delta <= 0:
        raise ValueError("could not find a positive delta")
    model = {name: value.at(delta) for name, value in values.items()}
    return delta, model
