"""Certificate assembly from the solver's recorded proof state.

The emission side of the witness subsystem: after an UNSAT
:meth:`~repro.solver.smt.SMTSolver.check` (with proof recording enabled
via ``enable_proof()``), :func:`certificate_from_solver` snapshots the
solver's proof log — assumptions, chronological clause events, Farkas
entries — together with the theory atom table into a self-contained,
picklable :class:`~repro.witness.certificate.Certificate`.

This module is *untrusted* emission code: a bug here yields a
certificate the trusted kernel rejects, never one it wrongly accepts.
"""

from __future__ import annotations

from typing import Optional

from repro.witness.certificate import Certificate


def certificate_from_solver(solver) -> Optional[Certificate]:
    """Build a certificate from ``solver``'s last UNSAT proof snapshot.

    ``solver`` is an :class:`~repro.solver.smt.SMTSolver` with proof
    recording on; returns ``None`` when no snapshot exists (proof mode
    off, or no UNSAT answer yet).  The snapshot covers the solver's full
    incremental history, so certificates from later queries of one
    context are supersets of earlier ones — each remains independently
    checkable.
    """
    proof = solver.last_proof
    if proof is None:
        return None
    assumptions, events = proof
    atoms = {}
    for var, atom in solver.atom_items():
        expr = atom.expr
        coeffs = tuple(sorted(expr.iter_terms()))
        atoms[var] = (atom.op, coeffs, expr.const)
    return Certificate(atoms=atoms, assumptions=tuple(assumptions), events=events)
