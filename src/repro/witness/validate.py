"""The trusted witness-validation kernel.

This module is the *entire* trusted computing base of the proof-witness
subsystem: it re-checks a :class:`~repro.witness.certificate.Certificate`
using only exact rational arithmetic (:mod:`fractions`) and unit
propagation — no CDCL search, no simplex pivoting, no imports from the
solver packages.  A certificate that passes :func:`validate` proves that
the conjunction of its input clauses (under its assumption literals) is
unsatisfiable *relative to the atom table's theory semantics*; what the
kernel deliberately does **not** re-check (the Tseitin encoding of the
obligation, the atom table's faithfulness to the source formulas) is
documented in ``docs/witness.md``.

Two kinds of proof step are replayed, in certificate event order:

``("lemma", clause, entries)``
    A theory lemma.  The negated clause literals denote a conjunction of
    linear inequalities (via the atom table); ``entries`` supplies Farkas
    coefficients whose combination must cancel every variable and leave
    a contradictory constant.  The fixed literal denotation is::

        +v, op "<=" : e <= 0        -v, op "<=" : -e < 0
        +v, op "<"  : e <  0        -v, op "<"  : -e <= 0
        +v, op "="  : e  = 0        -v, op "="  : rejected

    (negated equalities are never asserted by the emitter — the equality
    split clauses stand in for them — so the kernel refuses them).

``("learn", clause)``
    A clause the SAT core learned; checked by **reverse unit
    propagation** (RUP): assuming the clause false, propagation over
    every earlier clause must derive a conflict.

``("input", clause)`` events are axioms (the problem clauses exactly as
the SAT core received them).  The final, implicit step checks that the
assumption literals themselves propagate to a conflict — i.e. the
recorded UNSAT answer really follows.

Every failure raises a typed :class:`WitnessError` naming the failing
step; the kernel fails closed (anything unexpected is a rejection).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

_ZERO = Fraction(0)


class WitnessError(Exception):
    """A certificate failed validation.

    ``step`` names the failing proof step (``"lemma[4]"``, ``"rup[7]"``,
    ``"goal"``, ``"decode"``, …) so callers — and tests mutating
    certificates on purpose — can assert *where* validation failed.
    """

    def __init__(self, step: str, message: str) -> None:
        super().__init__(f"{step}: {message}")
        self.step = step
        self.detail = message


def _rup_check(clauses: List[Tuple[int, ...]], clause: Sequence[int], step: str) -> None:
    """Check ``clause`` by reverse unit propagation over ``clauses``.

    Assume every literal of ``clause`` false, then run unit propagation
    to fixpoint; the check succeeds iff a conflict (falsified clause)
    appears.  Quadratic and simple on purpose — this is trusted code.
    """
    assigned = set()
    for lit in clause:
        if lit in assigned:
            return  # clause contains complementary literals: trivially RUP
        assigned.add(-lit)
    while True:
        progressed = False
        for body in clauses:
            unit = 0
            open_count = 0
            satisfied = False
            for lit in body:
                if lit in assigned:
                    satisfied = True
                    break
                if -lit in assigned:
                    continue
                unit = lit
                open_count += 1
                if open_count > 1:
                    break
            if satisfied or open_count > 1:
                continue
            if open_count == 0:
                return  # conflict reached: the clause is RUP
            assigned.add(unit)
            progressed = True
        if not progressed:
            raise WitnessError(step, "unit propagation does not refute the clause")


def _check_farkas(
    atoms: Dict[int, Tuple[str, Tuple[Tuple[str, Fraction], ...], Fraction]],
    clause: Sequence[int],
    entries: Sequence[Tuple[int, Fraction]],
    step: str,
) -> None:
    """Check one theory lemma's Farkas witness.

    The lemma clause is valid iff the conjunction of the *negations* of
    its literals is infeasible; ``entries`` names (a subset of) those
    negations with rational coefficients whose combination must have a
    zero variable part and a contradictory constant: ``> 0``, or ``= 0``
    with at least one strict inequality carrying a positive coefficient.
    """
    if not entries:
        raise WitnessError(step, "empty Farkas combination")
    negated = {-lit for lit in clause}
    combo: Dict[str, Fraction] = {}
    const = _ZERO
    any_strict = False
    for lit, mu in entries:
        if lit not in negated:
            raise WitnessError(step, f"literal {lit} is not a premise of the lemma")
        atom = atoms.get(abs(lit))
        if atom is None:
            raise WitnessError(step, f"literal {lit} has no atom table entry")
        op, coeffs, atom_const = atom
        if op == "=":
            if lit < 0:
                raise WitnessError(step, "negated equality literal in a Farkas witness")
            eps, strict = 1, False  # mu may carry either sign
        elif op == "<=":
            eps, strict = (1, False) if lit > 0 else (-1, True)
            if mu < 0:
                raise WitnessError(step, f"negative coefficient {mu} on literal {lit}")
        elif op == "<":
            eps, strict = (1, True) if lit > 0 else (-1, False)
            if mu < 0:
                raise WitnessError(step, f"negative coefficient {mu} on literal {lit}")
        else:
            raise WitnessError(step, f"unknown atom operator {op!r}")
        if mu == 0:
            continue
        scale = mu * eps
        for name, c in coeffs:
            value = combo.get(name, _ZERO) + scale * c
            if value == 0:
                combo.pop(name, None)
            else:
                combo[name] = value
        const += scale * atom_const
        if strict:
            any_strict = True
    if combo:
        name = sorted(combo)[0]
        raise WitnessError(step, f"nonzero variable part ({name}: {combo[name]})")
    if not (const > 0 or (const == 0 and any_strict)):
        raise WitnessError(step, f"combination is not contradictory (constant {const})")


def validate(cert) -> Dict[str, int]:
    """Re-check ``cert``; returns step counts, raises :class:`WitnessError`.

    ``cert`` is any object with ``atoms``, ``assumptions`` and ``events``
    attributes in :class:`~repro.witness.certificate.Certificate` shape.
    """
    clauses: List[Tuple[int, ...]] = []
    counts = {"inputs": 0, "lemmas": 0, "rup_steps": 0}
    for index, event in enumerate(cert.events):
        kind = event[0]
        if kind == "input":
            counts["inputs"] += 1
        elif kind == "lemma":
            if len(event) != 3:
                raise WitnessError(f"lemma[{index}]", "malformed lemma event")
            _check_farkas(cert.atoms, event[1], event[2], f"lemma[{index}]")
            counts["lemmas"] += 1
        elif kind == "learn":
            _rup_check(clauses, event[1], f"rup[{index}]")
            counts["rup_steps"] += 1
        else:
            raise WitnessError(f"events[{index}]", f"unknown event kind {kind!r}")
        clauses.append(tuple(event[1]))
    _rup_check(clauses, tuple(-lit for lit in cert.assumptions), "goal")
    counts["rup_steps"] += 1
    return counts
