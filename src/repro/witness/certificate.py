"""The proof-witness certificate and its canonical JSON form.

A :class:`Certificate` is the auditable artifact behind one ``valid``
verdict: the boolean problem exactly as the SAT core saw it (input
clauses in arrival order), the theory atom table (SAT variable → linear
inequality over the obligation's variables), the solve-time assumption
literals, and the chronological proof-event trail — theory lemmas with
Farkas coefficients and DRUP-style learned clauses.  The trusted kernel
(:mod:`repro.witness.validate`) replays exactly this data; nothing else
is needed.

Serialization is **canonical JSON**: sorted keys, no whitespace, exact
rationals as ``"p/q"`` strings, and a schema version — so a certificate
stored in the obligation store (or shipped over the serve protocol)
round-trips byte-identically and is safe to fingerprint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.witness.validate import WitnessError

#: Bump when the certificate JSON shape changes; validators reject
#: certificates from other schema versions.
SCHEMA_VERSION = 1

#: ``(op, ((name, coeff), ...), const)`` — one atom's linear form.
Atom = Tuple[str, Tuple[Tuple[str, Fraction], ...], Fraction]


@dataclass
class Certificate:
    """A machine-checkable proof for one ``valid`` verdict.

    ``oid``/``fingerprint`` tie the certificate to an obligation and its
    premise fingerprint once it is attached by the discharge layer; the
    proof core (atoms, assumptions, events) is obligation-agnostic and
    may be shared by every member of a conjoined batch.
    """

    atoms: Dict[int, Atom] = field(default_factory=dict)
    assumptions: Tuple[int, ...] = ()
    events: Tuple[Tuple, ...] = ()
    oid: Optional[str] = None
    fingerprint: Optional[str] = None

    # -- introspection ---------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        counts = {"inputs": 0, "lemmas": 0, "learned": 0}
        for event in self.events:
            if event[0] == "input":
                counts["inputs"] += 1
            elif event[0] == "lemma":
                counts["lemmas"] += 1
            elif event[0] == "learn":
                counts["learned"] += 1
        counts["atoms"] = len(self.atoms)
        counts["assumptions"] = len(self.assumptions)
        return counts

    # -- canonical JSON --------------------------------------------------------

    def to_json(self) -> str:
        """The canonical serialized form (sorted keys, exact fractions)."""
        events = []
        for event in self.events:
            kind = event[0]
            wire = [kind, [int(l) for l in event[1]]]
            if kind == "lemma":
                wire.append([[int(lit), str(mu)] for lit, mu in event[2]])
            events.append(wire)
        payload = {
            "schema": SCHEMA_VERSION,
            "oid": self.oid,
            "fingerprint": self.fingerprint,
            "assumptions": [int(l) for l in self.assumptions],
            "atoms": {
                str(var): {
                    "op": op,
                    "coeffs": {name: str(c) for name, c in coeffs},
                    "const": str(const),
                }
                for var, (op, coeffs, const) in self.atoms.items()
            },
            "events": events,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        """Parse a serialized certificate; malformed input raises
        :class:`~repro.witness.validate.WitnessError` (step ``decode``)."""
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("certificate is not a JSON object")
            schema = payload.get("schema")
            if schema != SCHEMA_VERSION:
                raise ValueError(f"unsupported schema version {schema!r}")
            atoms: Dict[int, Atom] = {}
            for key, atom in payload["atoms"].items():
                coeffs = tuple(
                    sorted((name, Fraction(c)) for name, c in atom["coeffs"].items())
                )
                atoms[int(key)] = (atom["op"], coeffs, Fraction(atom["const"]))
            events = []
            for wire in payload["events"]:
                kind = wire[0]
                clause = tuple(int(l) for l in wire[1])
                if kind == "lemma":
                    entries = tuple((int(lit), Fraction(mu)) for lit, mu in wire[2])
                    events.append((kind, clause, entries))
                elif kind in ("input", "learn"):
                    events.append((kind, clause))
                else:
                    raise ValueError(f"unknown event kind {kind!r}")
            return cls(
                atoms=atoms,
                assumptions=tuple(int(l) for l in payload["assumptions"]),
                events=tuple(events),
                oid=payload.get("oid"),
                fingerprint=payload.get("fingerprint"),
            )
        except WitnessError:
            raise
        except (KeyError, IndexError, TypeError, ValueError, ZeroDivisionError) as err:
            raise WitnessError("decode", f"malformed certificate: {err}")
