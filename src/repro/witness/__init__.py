"""Proof witnesses: certificates for ``valid`` verdicts and the small
trusted kernel that re-checks them without re-running the solver.

See ``docs/witness.md`` for the certificate schema, the trusted-kernel
scope, and the validation cost model.
"""

from repro.witness.certificate import SCHEMA_VERSION, Certificate
from repro.witness.emit import certificate_from_solver
from repro.witness.validate import WitnessError, validate

__all__ = [
    "SCHEMA_VERSION",
    "Certificate",
    "WitnessError",
    "certificate_from_solver",
    "validate",
]
